"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.tracing.storage import load_captures, read_access_log_jsonl


@pytest.fixture(scope="module")
def rubis_trace(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "rubis.jsonl"
    code = main([
        "simulate-rubis", "-o", str(path),
        "--duration", "65", "--seed", "7", "--rate", "10",
    ])
    assert code == 0
    return path


@pytest.fixture(scope="module")
def delta_log(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "delta.jsonl"
    code = main([
        "simulate-delta", "-o", str(path),
        "--duration", "1900", "--queues", "3",
        "--events-per-hour", "10800", "--seed", "3",
    ])
    assert code == 0
    return path


class TestSimulate:
    def test_rubis_trace_loadable(self, rubis_trace):
        records = load_captures(rubis_trace)
        assert len(records) > 1000
        assert {r.observer for r in records} >= {"WS", "DS"}

    def test_delta_log_loadable(self, delta_log):
        records = list(read_access_log_jsonl(delta_log))
        assert len(records) > 1000
        assert {r.event for r in records} == {"recv", "send"}


class TestAnalyze:
    def test_ascii_output(self, rubis_trace, capsys):
        code = main([
            "analyze", str(rubis_trace), "--clients", "C1,C2",
            "--window", "60",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "C1" in out and "TS1" in out and "EJB1" in out
        assert "*EJB1*" in out  # bottleneck marking

    def test_dot_output(self, rubis_trace, capsys):
        code = main([
            "analyze", str(rubis_trace), "--clients", "C1,C2",
            "--window", "60", "--format", "dot",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "digraph" in out
        assert '"WS" -> "TS1"' in out

    def test_json_output(self, rubis_trace, capsys):
        code = main([
            "analyze", str(rubis_trace), "--clients", "C1,C2",
            "--window", "60", "--format", "json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "C1@WS" in payload
        edges = {(e["src"], e["dst"]) for e in payload["C1@WS"]["edges"]}
        assert ("WS", "TS1") in edges

    def test_report_output(self, rubis_trace, capsys):
        code = main([
            "analyze", str(rubis_trace), "--clients", "C1,C2",
            "--window", "60", "--format", "report",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "E2EProf diagnosis report" in out
        assert "bottleneck: EJB1" in out

    def test_summary_output(self, rubis_trace, capsys):
        code = main([
            "analyze", str(rubis_trace), "--clients", "C1,C2",
            "--window", "60", "--format", "summary",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "EJB1" in payload["classes"]["C1@WS"]["bottlenecks"]

    def test_access_log_analysis(self, delta_log, capsys):
        code = main([
            "analyze", str(delta_log), "--access-log",
            "--window", "1800", "--quantum", "1.0",
            "--sampling-window", "50", "--max-delay", "1200",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "VAL" in out and "RDB" in out

    def test_missing_clients_is_an_error(self, rubis_trace, capsys):
        code = main(["analyze", str(rubis_trace), "--window", "60"])
        assert code == 2
        assert "client" in capsys.readouterr().err

    def test_explicit_end_time(self, rubis_trace, capsys):
        code = main([
            "analyze", str(rubis_trace), "--clients", "C1,C2",
            "--window", "30", "--end", "40",
        ])
        assert code == 0


class TestDiff:
    def test_steady_trace_diffs_clean(self, rubis_trace, capsys):
        code = main([
            "diff", str(rubis_trace), "--clients", "C1,C2",
            "--window", "30", "--before-end", "31", "--after-end", "62",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "diff for service class of C1" in out
        assert "diff for service class of C2" in out


class TestRender:
    def test_svg_files_written(self, rubis_trace, tmp_path, capsys):
        outdir = tmp_path / "svgs"
        code = main([
            "render", str(rubis_trace), "-o", str(outdir),
            "--clients", "C1,C2", "--window", "60",
        ])
        assert code == 0
        files = sorted(p.name for p in outdir.glob("*.svg"))
        assert files == ["C1_WS.svg", "C2_WS.svg"]
        content = (outdir / "C1_WS.svg").read_text()
        assert content.startswith("<svg")
        assert "EJB1" in content


@pytest.mark.slow
class TestStats:
    def test_demo_mode_json(self, capsys):
        code = main(["stats", "--duration", "65", "--window", "60"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        metrics = doc["metrics"]
        for family in (
            "engine_refresh_seconds",
            "engine_correlator_cache_hits_total",
            "engine_correlator_cache_misses_total",
            "wire_blocks_decoded_total",
            "pathmap_spikes_total",
        ):
            assert family in metrics, family
        assert metrics["engine_refresh_seconds"][""]["count"] >= 1
        assert doc["latest_sample"]["blocks_ingested"] > 0

    def test_demo_mode_both_to_file(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        code = main([
            "stats", "--duration", "65", "--window", "60",
            "--format", "both", "-o", str(out),
        ])
        assert code == 0
        assert "wrote metrics" in capsys.readouterr().err
        doc = json.loads(out.read_text())
        assert "repro_engine_refresh_seconds_bucket" in doc["prometheus"]
        assert doc["prometheus"].rstrip().splitlines()[-1].startswith("repro_")

    def test_trace_mode_prometheus(self, rubis_trace, capsys):
        code = main([
            "stats", str(rubis_trace), "--clients", "C1,C2",
            "--window", "60", "--format", "prometheus",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_pathmap_analysis_seconds histogram" in out
        assert "repro_collector_records_ingested_total" in out
        assert "repro_replay_refresh_seconds_count" in out

    def test_too_short_duration_is_an_error(self, capsys):
        code = main(["stats", "--duration", "5", "--window", "60"])
        assert code == 2
        assert "no refresh fired" in capsys.readouterr().err


class TestTimeline:
    def test_replay_mode_ascii(self, rubis_trace, capsys):
        code = main([
            "timeline", str(rubis_trace), "--clients", "C1,C2",
            "--window", "60",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "refresh 0" in out
        assert "replay.refresh" in out
        assert "pathmap.class" in out

    def test_replay_mode_chrome_to_file(self, rubis_trace, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main([
            "timeline", str(rubis_trace), "--clients", "C1,C2",
            "--window", "60", "--format", "chrome", "-o", str(out),
        ])
        assert code == 0
        assert "wrote chrome timeline" in capsys.readouterr().err
        doc = json.loads(out.read_text())
        names = {e.get("name") for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "replay.refresh" in names
        assert "pathmap.class" in names

    def test_replay_mode_svg(self, rubis_trace, capsys):
        code = main([
            "timeline", str(rubis_trace), "--clients", "C1,C2",
            "--window", "60", "--format", "svg",
        ])
        assert code == 0
        assert capsys.readouterr().out.startswith("<svg")

    def test_window_too_long_is_an_error(self, rubis_trace, capsys):
        code = main([
            "timeline", str(rubis_trace), "--clients", "C1,C2",
            "--window", "600",
        ])
        assert code == 2


@pytest.mark.slow
class TestTimelineDemo:
    def test_demo_mode_chrome_has_nested_engine_spans(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main([
            "timeline", "--demo", "--duration", "65", "--window", "60",
            "--format", "chrome", "-o", str(out),
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in complete}
        assert {
            "engine.refresh",
            "engine.correlators",
            "correlator.append",
            "engine.pathmap",
            "pathmap.class",
        } <= names
        # Diagnostic events ride along as instants.
        assert any(e["ph"] == "i" for e in doc["traceEvents"])

    def test_demo_mode_json_dump(self, capsys):
        code = main(["timeline", "--demo", "--duration", "65",
                     "--window", "60", "--format", "json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["frames"]
        assert doc["frames"][0]["spans"]


class TestSkew:
    def test_skew_report(self, rubis_trace, capsys):
        code = main([
            "skew", str(rubis_trace), "--edge", "WS:TS1",
            "--clients", "C1,C2", "--window", "60",
            "--network-delay", "0.0002",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "WS->TS1" in out and "skew" in out

    def test_bad_edge_spec(self, rubis_trace, capsys):
        code = main([
            "skew", str(rubis_trace), "--edge", "WSTS1",
            "--clients", "C1,C2",
        ])
        assert code == 2


class TestScenariosCli:
    def test_list_names_every_scenario(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("steady_state", "flash_crowd", "retry_storm",
                     "cache_stampede", "canary_shift", "traffic_trough",
                     "diurnal_cycle", "fanout_mesh"):
            assert name in out

    def test_run_text_mode(self, capsys):
        assert main(["scenarios", "run", "cache_stampede",
                     "--mode", "adaptive"]) == 0
        out = capsys.readouterr().out
        assert "cache_stampede" in out
        assert "f1" in out

    def test_run_json_with_cells(self, capsys):
        assert main(["scenarios", "run", "cache_stampede",
                     "--mode", "fast", "--format", "json", "--cells"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["scenario"] == "cache_stampede"
        assert doc["mode"] == "fast"
        assert doc["cell_scores"]
        assert 0.0 <= doc["aggregate_f1"] <= 1.0

    def test_score_writes_scorecard(self, tmp_path, capsys):
        out = tmp_path / "scorecard.json"
        assert main(["scenarios", "score",
                     "--scenarios", "cache_stampede,traffic_trough",
                     "--modes", "adaptive,fast", "-o", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["scenarios"] == ["cache_stampede", "traffic_trough"]
        assert len(doc["scores"]) == 4
        assert set(doc["aggregate_f1_by_mode"]) == {"adaptive", "fast"}

    def test_unknown_scenario_is_an_error(self, capsys):
        assert main(["scenarios", "run", "nope"]) == 2
        assert "nope" in capsys.readouterr().err

    def test_unknown_mode_is_an_error(self, capsys):
        assert main(["scenarios", "score", "--modes", "adaptive,warp"]) == 2
        assert "warp" in capsys.readouterr().err


class TestTopCli:
    def test_once_renders_single_frame(self, capsys):
        assert main(["top", "--once", "--duration", "125"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        for name in ("ingest", "correlate", "dfs", "publish",
                     "sparse_batch", "rle", "legacy_pair"):
            assert name in out
        assert "quiet skips" in out
        assert "\x1b[2J" not in out  # non-tty stdout: no ANSI clears

    def test_too_short_duration_is_an_error(self, capsys):
        assert main(["top", "--once", "--duration", "5"]) == 2
        assert "no refresh fired" in capsys.readouterr().err


class TestProfileCli:
    def test_text_mode(self, capsys):
        assert main(["profile", "--duration", "125"]) == 0
        out = capsys.readouterr().out
        assert "repro profile" in out
        assert "kernel cost model" in out

    def test_json_round_trips_ledgers(self, tmp_path, capsys):
        from repro.obs import RefreshLedger

        path = tmp_path / "ledger.json"
        assert main(["profile", "--json", "--duration", "125",
                     "-o", str(path)]) == 0
        assert "wrote profile" in capsys.readouterr().err
        doc = json.loads(path.read_text())
        assert sorted(doc) == ["ewma", "kernel_density", "ledgers", "workload"]
        assert doc["workload"]["app"] == "rubis"
        assert doc["workload"]["fft_dispatch"] == "auto"
        assert doc["ledgers"]
        for entry in doc["ledgers"]:
            ledger = RefreshLedger.from_dict(entry)
            assert ledger.to_dict() == entry
        assert set(doc["ewma"]) == {
            "sparse_batch", "rle", "fft_batch", "legacy_pair"
        }
        density = doc["kernel_density"]
        assert set(density) == set(doc["ewma"])
        routed = [k for k, d in density.items() if d["rows"] > 0]
        assert routed
        for kernel in routed:
            assert density[kernel]["units_per_row"] is None or (
                density[kernel]["units_per_row"] >= 0.0
            )
            assert density[kernel]["bytes_per_row"] >= 0.0

    def test_json_keys_deterministically_ordered(self, capsys):
        assert main(["profile", "--json", "--duration", "125",
                     "--last", "1"]) == 0
        text = capsys.readouterr().out
        doc = json.loads(text)
        assert len(doc["ledgers"]) == 1
        # sort_keys=True output is byte-stable across runs of the same doc
        assert text.strip() == json.dumps(doc, indent=2, sort_keys=True)

    def test_measured_dispatch_flag_recorded(self, capsys):
        assert main(["profile", "--json", "--duration", "125",
                     "--measured-dispatch"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["workload"]["measured_dispatch"] is True
