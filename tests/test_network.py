"""Tests for the network fabric (links, latency, capture hooks)."""

import numpy as np
import pytest

from repro.errors import SimulationError, TopologyError
from repro.simulation.des import Simulator
from repro.simulation.distributions import Constant
from repro.simulation.network import Fabric, PACKET_GAP
from repro.simulation.nodes import ClientNode, Message, ServiceNode
from repro.tracing.tracer import Tracer


def make_fabric(**kwargs):
    sim = Simulator()
    fabric = Fabric(sim, np.random.default_rng(0), default_latency=Constant(0.001), **kwargs)
    return sim, fabric


class TestRegistration:
    def test_duplicate_node_rejected(self):
        sim, fabric = make_fabric()
        ServiceNode(sim, fabric, "A", Constant(0.01))
        with pytest.raises(TopologyError):
            ServiceNode(sim, fabric, "A", Constant(0.01))

    def test_unknown_node_lookup(self):
        sim, fabric = make_fabric()
        with pytest.raises(TopologyError):
            fabric.node("ghost")

    def test_has_node(self):
        sim, fabric = make_fabric()
        ServiceNode(sim, fabric, "A", Constant(0.01))
        assert fabric.has_node("A")
        assert not fabric.has_node("B")

    def test_duplicate_tracer_rejected(self):
        sim, fabric = make_fabric()
        fabric.attach_tracer(Tracer("A"))
        with pytest.raises(TopologyError):
            fabric.attach_tracer(Tracer("A"))

    def test_send_to_unknown_node(self):
        sim, fabric = make_fabric()
        ServiceNode(sim, fabric, "A", Constant(0.01))
        msg = Message(1, "c", "request", "A", "ghost", ("A",), 0.0)
        with pytest.raises(TopologyError):
            fabric.send(msg)

    def test_packets_per_message_validation(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Fabric(sim, np.random.default_rng(0), packets_per_message=0)


class TestLatency:
    def test_default_latency_applies(self):
        sim, fabric = make_fabric()
        ServiceNode(sim, fabric, "S", Constant(0.0))
        client = ClientNode(sim, fabric, "C", "cls", "S")
        client.issue_request()
        sim.run_until(1.0)
        assert client.latencies()[0] == pytest.approx(0.002, abs=1e-9)

    def test_per_link_override(self):
        sim, fabric = make_fabric()
        ServiceNode(sim, fabric, "S", Constant(0.0))
        client = ClientNode(sim, fabric, "C", "cls", "S")
        fabric.set_latency("C", "S", Constant(0.020))
        client.issue_request()
        sim.run_until(1.0)
        # 20ms out, default 1ms back.
        assert client.latencies()[0] == pytest.approx(0.021, abs=1e-9)

    def test_link_latency_lookup(self):
        sim, fabric = make_fabric()
        fabric.set_latency("A", "B", Constant(0.5))
        assert fabric.link_latency("A", "B").mean() == 0.5
        assert fabric.link_latency("B", "A").mean() == 0.001


class TestCapture:
    def test_tracer_sees_both_directions(self):
        sim, fabric = make_fabric()
        ServiceNode(sim, fabric, "S", Constant(0.01))
        tracer = Tracer("S")
        fabric.attach_tracer(tracer)
        client = ClientNode(sim, fabric, "C", "cls", "S")
        client.issue_request()
        sim.run_until(1.0)
        assert set(tracer.edges()) == {("C", "S"), ("S", "C")}
        assert tracer.packet_count == 2

    def test_capture_hook_fires_at_both_ends(self):
        sim, fabric = make_fabric()
        ServiceNode(sim, fabric, "S", Constant(0.01))
        captures = []
        fabric.add_capture_hook(lambda ts, s, d, obs, m: captures.append((ts, s, d, obs)))
        client = ClientNode(sim, fabric, "C", "cls", "S")
        client.issue_request()
        sim.run_until(1.0)
        # 2 messages (request + response), each captured at src and dst.
        assert len(captures) == 4
        observers = [obs for (_, _, _, obs) in captures]
        assert observers.count("C") == 2 and observers.count("S") == 2

    def test_receive_capture_is_after_send_capture(self):
        sim, fabric = make_fabric()
        ServiceNode(sim, fabric, "S", Constant(0.01))
        captures = []
        fabric.add_capture_hook(lambda ts, s, d, obs, m: captures.append((ts, obs)))
        ClientNode(sim, fabric, "C", "cls", "S").issue_request()
        sim.run_until(1.0)
        request = captures[:2]
        assert request[0] == (0.0, "C")
        assert request[1] == (pytest.approx(0.001), "S")

    def test_multi_packet_messages(self):
        sim, fabric = make_fabric(packets_per_message=3)
        ServiceNode(sim, fabric, "S", Constant(0.01))
        tracer = Tracer("S")
        fabric.attach_tracer(tracer)
        ClientNode(sim, fabric, "C", "cls", "S").issue_request()
        sim.run_until(1.0)
        stamps = tracer.timestamps("C", "S")
        assert len(stamps) == 3
        assert stamps[1] - stamps[0] == pytest.approx(PACKET_GAP)

    def test_messages_sent_counter(self):
        sim, fabric = make_fabric()
        ServiceNode(sim, fabric, "S", Constant(0.01))
        ClientNode(sim, fabric, "C", "cls", "S").issue_request()
        sim.run_until(1.0)
        assert fabric.messages_sent == 2

    def test_request_ids_unique_and_deterministic(self):
        sim, fabric = make_fabric()
        ids = [fabric.next_request_id() for _ in range(5)]
        assert ids == [1, 2, 3, 4, 5]
