"""Unit and property tests for density time series (paper Section 3.5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timeseries import (
    DensityTimeSeries,
    aligned_windows,
    build_density_series,
    quantize_timestamps,
)
from repro.errors import SeriesError


def series_from(dense, start=0, quantum=1e-3):
    return DensityTimeSeries.from_dense(dense, start, quantum)


class TestConstruction:
    def test_from_dense_drops_zeros(self):
        s = series_from([0.0, 2.0, 0.0, 1.0])
        assert s.nnz == 2
        assert list(s.indices) == [1, 3]
        assert list(s.values) == [2.0, 1.0]
        assert s.length == 4

    def test_from_dense_rejects_negative(self):
        with pytest.raises(SeriesError):
            series_from([1.0, -0.5])

    def test_from_pairs_sorts_and_drops_zeros(self):
        s = DensityTimeSeries.from_pairs([(5, 1.0), (2, 3.0), (7, 0.0)], 0, 10, 1e-3)
        assert list(s.indices) == [2, 5]
        assert list(s.values) == [3.0, 1.0]

    def test_rejects_unsorted_indices(self):
        with pytest.raises(SeriesError):
            DensityTimeSeries([3, 2], [1.0, 1.0], 0, 10, 1e-3)

    def test_rejects_duplicate_indices(self):
        with pytest.raises(SeriesError):
            DensityTimeSeries([2, 2], [1.0, 1.0], 0, 10, 1e-3)

    def test_rejects_indices_outside_window(self):
        with pytest.raises(SeriesError):
            DensityTimeSeries([10], [1.0], 0, 10, 1e-3)
        with pytest.raises(SeriesError):
            DensityTimeSeries([-1], [1.0], 0, 10, 1e-3)

    def test_rejects_non_positive_values(self):
        with pytest.raises(SeriesError):
            DensityTimeSeries([1], [0.0], 0, 10, 1e-3)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(SeriesError):
            DensityTimeSeries([1, 2], [1.0], 0, 10, 1e-3)

    def test_rejects_bad_quantum(self):
        with pytest.raises(SeriesError):
            DensityTimeSeries.empty(0, 10, 0.0)

    def test_empty(self):
        s = DensityTimeSeries.empty(5, 10, 1e-3)
        assert s.nnz == 0
        assert len(s) == 10
        assert s.total() == 0.0


class TestStatistics:
    def test_mean_includes_zeros(self):
        s = series_from([0.0, 4.0, 0.0, 0.0])
        assert s.mean() == 1.0

    def test_variance_matches_numpy(self):
        dense = np.array([0.0, 1.0, 3.0, 0.0, 2.0])
        s = series_from(dense)
        assert s.variance() == pytest.approx(dense.var())
        assert s.std() == pytest.approx(dense.std())

    def test_energy(self):
        s = series_from([0.0, 2.0, 3.0])
        assert s.energy() == 13.0

    def test_compression_factor(self):
        s = series_from([0.0] * 9 + [1.0])
        assert s.compression_factor() == 10.0

    def test_compression_factor_empty(self):
        assert DensityTimeSeries.empty(0, 10, 1e-3).compression_factor() == 10.0


class TestTransformations:
    def test_dense_roundtrip(self):
        dense = np.array([0.0, 1.5, 0.0, 2.0, 0.0])
        s = series_from(dense)
        assert np.array_equal(s.to_dense(), dense)

    def test_shifted(self):
        s = series_from([1.0, 0.0, 2.0], start=10)
        t = s.shifted(5)
        assert t.start == 15
        assert list(t.indices) == [15, 17]
        assert np.array_equal(t.to_dense(), s.to_dense())

    def test_restricted_interior(self):
        s = series_from([1.0, 2.0, 3.0, 4.0], start=0)
        r = s.restricted(1, 2)
        assert np.array_equal(r.to_dense(), [2.0, 3.0])

    def test_restricted_beyond_window(self):
        s = series_from([1.0, 2.0], start=0)
        r = s.restricted(1, 5)
        assert r.length == 5
        assert np.array_equal(r.to_dense(), [2.0, 0, 0, 0, 0])

    def test_concatenated(self):
        a = series_from([1.0, 0.0], start=0)
        b = series_from([0.0, 2.0], start=2)
        c = a.concatenated(b)
        assert np.array_equal(c.to_dense(), [1.0, 0.0, 0.0, 2.0])

    def test_concatenated_rejects_gap(self):
        a = series_from([1.0], start=0)
        b = series_from([1.0], start=5)
        with pytest.raises(SeriesError):
            a.concatenated(b)

    def test_concatenated_rejects_quantum_mismatch(self):
        a = series_from([1.0], start=0, quantum=1e-3)
        b = series_from([1.0], start=1, quantum=2e-3)
        with pytest.raises(SeriesError):
            a.concatenated(b)

    def test_scaled(self):
        s = series_from([2.0, 0.0, 4.0])
        t = s.scaled(0.5)
        assert np.array_equal(t.to_dense(), [1.0, 0.0, 2.0])

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(SeriesError):
            series_from([1.0]).scaled(0.0)

    def test_equality(self):
        a = series_from([1.0, 0.0, 2.0])
        b = series_from([1.0, 0.0, 2.0])
        c = series_from([1.0, 0.0, 3.0])
        assert a == b
        assert a != c


class TestQuantize:
    def test_basic(self):
        idx = quantize_timestamps([0.0, 0.0015, 0.0029], 1e-3)
        assert list(idx) == [0, 1, 2]

    def test_origin_shift(self):
        idx = quantize_timestamps([1.0015], 1e-3, origin=1.0)
        assert list(idx) == [1]

    def test_negative_before_origin(self):
        idx = quantize_timestamps([0.5], 1e-3, origin=1.0)
        assert idx[0] < 0

    def test_rejects_bad_quantum(self):
        with pytest.raises(SeriesError):
            quantize_timestamps([1.0], 0.0)


class TestDensityFunction:
    def test_point_burst_sqrt_and_width(self):
        # 9 messages at one instant: sqrt(9)=3 over one sampling window.
        s = build_density_series([1.0] * 9, 1e-3, 50, 0, 2000)
        dense = s.to_dense()
        assert dense.max() == 3.0
        assert (dense > 0).sum() == 50

    def test_no_sampling_window(self):
        s = build_density_series([0.0105], 1e-3, 1, 0, 20)
        dense = s.to_dense()
        assert dense[10] == 1.0
        assert (dense > 0).sum() == 1

    def test_messages_outside_window_near_boundary_contribute(self):
        # A message just before the window start still falls inside the
        # boxcar of the first quanta.
        s = build_density_series([0.999], 1e-3, 50, 1000, 100)
        assert s.nnz > 0

    def test_messages_far_outside_window_ignored(self):
        s = build_density_series([0.5], 1e-3, 50, 1000, 100)
        assert s.nnz == 0

    def test_empty_window(self):
        s = build_density_series([1.0], 1e-3, 50, 0, 0)
        assert len(s) == 0

    def test_rejects_bad_sampling(self):
        with pytest.raises(SeriesError):
            build_density_series([1.0], 1e-3, 0, 0, 10)

    def test_rejects_negative_length(self):
        with pytest.raises(SeriesError):
            build_density_series([1.0], 1e-3, 1, 0, -1)

    def test_mass_conservation_interior(self):
        # Away from boundaries, sum of squared densities == count * omega.
        rng = np.random.default_rng(0)
        stamps = rng.uniform(0.5, 1.5, 200)
        s = build_density_series(stamps, 1e-3, 50, 0, 2000)
        assert s.energy() == pytest.approx(200 * 50)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=40),
        st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_definition(self, stamps, omega_quanta):
        """d(i) == sqrt(#messages within the centred boxcar), always."""
        tau = 0.01
        length = 110
        s = build_density_series(stamps, tau, omega_quanta, 0, length)
        dense = s.to_dense()
        idx = np.floor(np.array(stamps) / tau).astype(int) if stamps else np.array([], int)
        half_lo = omega_quanta // 2
        half_hi = omega_quanta - half_lo - 1
        for i in range(length):
            count = int(((idx >= i - half_lo) & (idx <= i + half_hi)).sum())
            assert dense[i] == pytest.approx(np.sqrt(count))


class TestAlignedWindows:
    def test_overlap(self):
        a = series_from([1.0] * 5, start=0)
        b = series_from([1.0] * 5, start=3)
        ra, rb = aligned_windows(a, b)
        assert ra.start == rb.start == 3
        assert ra.length == rb.length == 2

    def test_no_overlap_raises(self):
        a = series_from([1.0], start=0)
        b = series_from([1.0], start=10)
        with pytest.raises(SeriesError):
            aligned_windows(a, b)

    def test_quantum_mismatch_raises(self):
        a = series_from([1.0], start=0, quantum=1e-3)
        b = series_from([1.0], start=0, quantum=1.0)
        with pytest.raises(SeriesError):
            aligned_windows(a, b)
