"""Tests for the central trace collector and its analysis windows."""

import pytest

from repro.config import PathmapConfig
from repro.errors import TraceError
from repro.tracing.collector import TraceCollector
from repro.tracing.records import CaptureRecord

CFG = PathmapConfig(
    window=10.0, refresh_interval=5.0, quantum=1e-2, sampling_window=5e-2,
    max_transaction_delay=2.0,
)


def rec(ts, src, dst, obs):
    return CaptureRecord(ts, src, dst, obs)


def populated_collector():
    collector = TraceCollector(client_nodes=["C"])
    for t in (1.0, 2.0, 3.0):
        collector.ingest(rec(t, "C", "WS", "WS"))          # client edge at dst
        collector.ingest(rec(t + 0.01, "WS", "DB", "WS"))  # src side
        collector.ingest(rec(t + 0.02, "WS", "DB", "DB"))  # dst side
        collector.ingest(rec(t + 0.05, "WS", "C", "WS"))   # response to client
    return collector


class TestIngestion:
    def test_record_count(self):
        assert populated_collector().record_count() == 12

    def test_edges(self):
        assert populated_collector().edges() == [("C", "WS"), ("WS", "C"), ("WS", "DB")]

    def test_ingest_many(self):
        collector = TraceCollector()
        n = collector.ingest_many(rec(float(i), "A", "B", "A") for i in range(5))
        assert n == 5

    def test_clients(self):
        collector = TraceCollector(["C1"])
        collector.add_client("C2")
        assert collector.clients == {"C1", "C2"}


class TestEdgeTimestamps:
    def test_prefers_destination_side(self):
        collector = populated_collector()
        stamps = collector.edge_timestamps("WS", "DB")
        assert stamps[0] == pytest.approx(1.02)  # dst-side capture

    def test_source_side_on_request(self):
        collector = populated_collector()
        stamps = collector.edge_timestamps("WS", "DB", prefer_destination=False)
        assert stamps[0] == pytest.approx(1.01)

    def test_client_destination_falls_back_to_source(self):
        collector = populated_collector()
        stamps = collector.edge_timestamps("WS", "C")
        assert stamps[0] == pytest.approx(1.05)  # WS-side; C is untraced

    def test_unknown_edge_yields_empty_array(self):
        # Regression: an edge never captured from either side used to
        # raise; the contract is now an empty array, consistent with an
        # empty-time-range window having no active edges.
        assert len(populated_collector().edge_timestamps("DB", "WS")) == 0

    def test_timestamps_sorted_even_if_ingested_out_of_order(self):
        collector = TraceCollector()
        collector.ingest(rec(2.0, "A", "B", "B"))
        collector.ingest(rec(1.0, "A", "B", "B"))
        assert collector.edge_timestamps("A", "B").tolist() == [1.0, 2.0]


class TestExport:
    def test_export_roundtrip(self):
        original = populated_collector()
        records = original.export_records()
        clone = TraceCollector(client_nodes=["C"])
        clone.ingest_many(records)
        assert clone.record_count() == original.record_count()
        assert clone.edges() == original.edges()
        for src, dst in original.edges():
            assert (
                clone.edge_timestamps(src, dst).tolist()
                == original.edge_timestamps(src, dst).tolist()
            )

    def test_export_is_sorted(self):
        records = populated_collector().export_records()
        assert all(a.timestamp <= b.timestamp for a, b in zip(records, records[1:]))


class TestWindow:
    def test_window_bounds(self):
        collector = populated_collector()
        window = collector.window(CFG, end_time=10.0)
        assert window.start_time == 0.0
        assert window.end_time == 10.0

    def test_empty_window_has_no_active_edges(self):
        # Regression: start == end used to raise; it now yields a window
        # with no active edges (consistent with edge_timestamps on an
        # unseen edge yielding an empty list).
        window = populated_collector().window(CFG, end_time=5.0, start_time=5.0)
        assert window.active_edges() == []
        assert window.front_end_nodes() == []

    def test_inverted_window_rejected(self):
        with pytest.raises(TraceError):
            populated_collector().window(CFG, end_time=5.0, start_time=6.0)

    def test_front_end_discovery(self):
        window = populated_collector().window(CFG, end_time=10.0)
        assert window.front_end_nodes() == ["WS"]
        assert window.clients_of("WS") == ["C"]

    def test_destinations(self):
        window = populated_collector().window(CFG, end_time=10.0)
        assert window.destinations_of("WS") == ["C", "DB"]
        assert window.destinations_of("DB") == []

    def test_is_client(self):
        window = populated_collector().window(CFG, end_time=10.0)
        assert window.is_client("C")
        assert not window.is_client("WS")

    def test_inactive_edges_excluded(self):
        collector = populated_collector()
        # A window covering only t >= 10 sees no traffic at all.
        window = collector.window(CFG, end_time=20.0, start_time=10.0)
        assert window.front_end_nodes() == []
        assert window.active_edges() == []

    def test_edge_series_rle_and_cached(self):
        from repro.core.rle import RunLengthSeries

        window = populated_collector().window(CFG, end_time=10.0)
        series = window.edge_series("C", "WS")
        assert isinstance(series, RunLengthSeries)
        assert window.edge_series("C", "WS") is series  # cached

    def test_edge_series_sparse_mode(self):
        from repro.core.timeseries import DensityTimeSeries

        window = populated_collector().window(CFG, end_time=10.0, use_rle=False)
        assert isinstance(window.edge_series("C", "WS"), DensityTimeSeries)

    def test_series_window_alignment(self):
        window = populated_collector().window(CFG, end_time=10.0)
        series = window.edge_series("C", "WS")
        assert series.start == 0
        assert series.length == 1000  # 10 s / 10 ms
