"""Fuzz and round-trip tests for the columnar ingest codecs.

Two codecs carry packed float64 timestamp arrays: the transport's
:class:`~repro.tracing.wire.TimestampFrame` and the binary columnar
capture file format (``.rtb``). Both share the corruption contract of the
RLE wire codec -- decode returns the exact payload or raises
:class:`~repro.errors.TraceError`, never any other exception -- and both
are hammered here with hypothesis round-trips, truncation sweeps and
byte flips, mirroring ``test_wire_fuzz.py``.
"""

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

import os
import struct
import tempfile
import zlib

from repro.errors import TraceError
from repro.tracing.records import TimestampBatch
from repro.tracing.storage import (
    BINARY_MAGIC,
    read_capture_binary,
    write_capture_binary,
)
from repro.tracing.wire import (
    FRAME_FLAG_TIMESTAMPS,
    FRAME_MAGIC,
    FRAME_VERSION,
    TimestampFrame,
    decode_frame,
    encode_frame,
)

#: Finite float64 payloads round-trip bit-exactly through the packed
#: little-endian representation, so equality below is exact.
timestamp_arrays = st.lists(
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    min_size=0,
    max_size=40,
).map(lambda values: np.asarray(values, dtype=np.float64))

frame_names = st.text(min_size=0, max_size=12)

timestamp_frames = st.builds(
    TimestampFrame,
    node=frame_names,
    epoch=st.integers(0, 2**40),
    seq=st.integers(0, 2**40),
    src=frame_names,
    dst=frame_names,
    timestamps=timestamp_arrays,
    observed_at_destination=st.booleans(),
)

node_names = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), min_size=1, max_size=8
)

capture_batches = st.builds(
    lambda src, dst, side, stamps: TimestampBatch(src, dst + "'", side, stamps),
    src=node_names,
    dst=node_names,
    side=st.booleans(),
    stamps=timestamp_arrays,
)


def reference_frame():
    return TimestampFrame("WS", 3, 7, "C1", "WS", np.array([1.0, 2.5, -3.25, 1e9]))


class TestTimestampFrameRoundTrip:
    @given(frame=timestamp_frames)
    def test_roundtrip_reproduces_frame(self, frame):
        decoded = decode_frame(encode_frame(frame))
        assert isinstance(decoded, TimestampFrame)
        assert decoded == frame

    @given(frame=timestamp_frames)
    def test_reencode_is_byte_identical(self, frame):
        payload = encode_frame(frame)
        assert encode_frame(decode_frame(payload)) == payload

    def test_empty_batch_roundtrips(self):
        frame = TimestampFrame("N", 0, 0, "A", "B", np.empty(0))
        decoded = decode_frame(encode_frame(frame))
        assert len(decoded) == 0
        assert decoded == frame


class TestTimestampFrameCorruption:
    @given(frame=timestamp_frames, data=st.data())
    def test_any_truncation_raises_trace_error(self, frame, data):
        payload = encode_frame(frame)
        cut = data.draw(st.integers(0, len(payload) - 1))
        with pytest.raises(TraceError):
            decode_frame(payload[:cut])

    @given(frame=timestamp_frames, data=st.data())
    def test_any_single_byte_flip_raises_trace_error(self, frame, data):
        payload = bytearray(encode_frame(frame))
        pos = data.draw(st.integers(0, len(payload) - 1))
        payload[pos] ^= data.draw(st.integers(1, 255))
        with pytest.raises(TraceError):
            decode_frame(bytes(payload))

    def test_every_single_byte_flip_of_one_frame(self):
        payload = bytearray(encode_frame(reference_frame()))
        for pos in range(len(payload)):
            mutated = bytearray(payload)
            mutated[pos] ^= 0x55
            with pytest.raises(TraceError):
                decode_frame(bytes(mutated))

    def _frame_with_body(self, body: bytes) -> bytes:
        return struct.pack(
            "<2sBI", FRAME_MAGIC, FRAME_VERSION, zlib.crc32(body)
        ) + body

    def _body_prefix(self) -> bytearray:
        body = bytearray([FRAME_FLAG_TIMESTAMPS])
        body += bytes([0x00, 0x00])  # epoch 0, seq 0
        body += bytes([0x01]) + b"N"  # node
        body += bytes([0x01]) + b"A"  # src
        body += bytes([0x01]) + b"B"  # dst
        return body

    def test_bad_side_byte_with_valid_crc(self):
        body = self._body_prefix() + bytes([7, 0x00])
        with pytest.raises(TraceError):
            decode_frame(self._frame_with_body(bytes(body)))

    def test_count_overrun_with_valid_crc(self):
        # Claims 100 timestamps with no payload behind them.
        body = self._body_prefix() + bytes([1, 100])
        with pytest.raises(TraceError):
            decode_frame(self._frame_with_body(bytes(body)))

    def test_non_finite_payload_with_valid_crc(self):
        body = self._body_prefix() + bytes([1, 1])
        body += struct.pack("<d", float("nan"))
        with pytest.raises(TraceError):
            decode_frame(self._frame_with_body(bytes(body)))

    def test_trailing_bytes_with_valid_crc(self):
        body = self._body_prefix() + bytes([1, 0]) + b"\x00"
        with pytest.raises(TraceError):
            decode_frame(self._frame_with_body(bytes(body)))


class TestBinaryStorageRoundTrip:
    @given(batches=st.lists(capture_batches, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_reproduces_batches(self, batches):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "trace.rtb")
            written = write_capture_binary(path, batches)
            assert written == sum(len(b) for b in batches)
            assert list(read_capture_binary(path)) == batches

    def test_empty_file_has_only_magic(self, tmp_path):
        path = tmp_path / "empty.rtb"
        assert write_capture_binary(path, []) == 0
        assert path.read_bytes() == BINARY_MAGIC
        assert list(read_capture_binary(path)) == []


class TestBinaryStorageMmap:
    """The zero-copy ``.rtb`` replay path (``mmap=True``)."""

    @given(batches=st.lists(capture_batches, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_mmap_is_bit_identical_to_copying_read(self, batches):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "trace.rtb")
            write_capture_binary(path, batches)
            assert list(read_capture_binary(path, mmap=True)) == list(
                read_capture_binary(path)
            )

    def test_timestamp_arrays_are_zero_copy_views(self, tmp_path):
        path = tmp_path / "trace.rtb"
        stamps = np.array([1.0, 2.5, 3.25, 1e9])
        write_capture_binary(path, [TimestampBatch("WS", "DB", True, stamps)])
        (batch,) = read_capture_binary(path, mmap=True)
        array = batch.timestamps
        # A view into the mapping, not a heap copy: numpy marks borrowed
        # buffers as non-owning and the read-only mapping as immutable.
        assert not array.flags.owndata
        assert not array.flags.writeable
        base = array.base
        while getattr(base, "base", None) is not None:
            base = base.base
        assert isinstance(base, memoryview) or type(base).__name__ == "mmap"
        np.testing.assert_array_equal(array, stamps)

    def test_arrays_outlive_the_reader(self, tmp_path):
        # Lifetime is by refcount: array -> memoryview -> mapping, so
        # consuming the generator and dropping every other reference
        # must leave the data readable.
        import gc

        path = tmp_path / "trace.rtb"
        write_capture_binary(
            path,
            [
                TimestampBatch("WS", "DB", True, [1.0, 2.0]),
                TimestampBatch("C1", "WS", False, [0.5]),
            ],
        )
        arrays = [b.timestamps for b in read_capture_binary(path, mmap=True)]
        gc.collect()
        assert [a.sum() for a in arrays] == [3.0, 0.5]

    def test_empty_and_magic_only_files(self, tmp_path):
        empty = tmp_path / "empty.rtb"
        empty.write_bytes(b"")
        with pytest.raises(TraceError):
            list(read_capture_binary(empty, mmap=True))
        magic_only = tmp_path / "magic.rtb"
        write_capture_binary(magic_only, [])
        assert list(read_capture_binary(magic_only, mmap=True)) == []

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rtb"
        path.write_bytes(b"XXXX")
        with pytest.raises(TraceError):
            list(read_capture_binary(path, mmap=True))


class TestBinaryStorageCorruption:
    def _payload(self, tmp_path):
        path = tmp_path / "trace.rtb"
        write_capture_binary(
            path,
            [
                TimestampBatch("WS", "DB", True, [1.0, 2.5, 3.25]),
                TimestampBatch("C1", "WS", False, [0.5]),
            ],
        )
        return path, bytearray(path.read_bytes())

    def test_every_truncation_raises_or_yields_strict_prefix(self, tmp_path):
        # Cuts at a section boundary leave a valid, shorter file (sections
        # are self-delimiting); every other cut must raise. Either way a
        # truncated file can never yield the full batch list.
        path, payload = self._payload(tmp_path)
        full = list(read_capture_binary(path))
        boundary_cuts = 0
        for cut in range(len(payload)):
            path.write_bytes(bytes(payload[:cut]))
            try:
                decoded = list(read_capture_binary(path))
            except TraceError:
                continue
            boundary_cuts += 1
            assert decoded == full[: len(decoded)]
            assert len(decoded) < len(full)
        assert boundary_cuts == 2  # bare magic + first-section boundary

    def test_every_single_byte_flip_raises(self, tmp_path):
        path, payload = self._payload(tmp_path)
        for pos in range(len(payload)):
            mutated = bytearray(payload)
            mutated[pos] ^= 0x55
            path.write_bytes(bytes(mutated))
            with pytest.raises(TraceError):
                list(read_capture_binary(path))

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rtb"
        path.write_bytes(b"XXXX")
        with pytest.raises(TraceError):
            list(read_capture_binary(path))

    def test_every_single_byte_flip_raises_under_mmap(self, tmp_path):
        # The zero-copy reader shares the copy path's corruption
        # contract: decode the exact payload or raise TraceError.
        path, payload = self._payload(tmp_path)
        for pos in range(len(payload)):
            mutated = bytearray(payload)
            mutated[pos] ^= 0x55
            path.write_bytes(bytes(mutated))
            with pytest.raises(TraceError):
                list(read_capture_binary(path, mmap=True))

    def test_payload_length_mismatch_with_valid_crc(self, tmp_path):
        # A section whose declared count disagrees with its body length
        # passes the CRC (computed over the bad body) but must still fail.
        body = bytearray()
        body += struct.pack("<H", 1) + b"A"
        body += struct.pack("<H", 1) + b"B"
        body.append(1)
        body += struct.pack("<Q", 5)  # claims 5 stamps, carries none
        path = tmp_path / "short.rtb"
        path.write_bytes(
            BINARY_MAGIC + struct.pack("<II", zlib.crc32(bytes(body)), len(body)) + bytes(body)
        )
        with pytest.raises(TraceError):
            list(read_capture_binary(path))
