"""Integration tests: the Delta Revenue Pipeline case study (Section 4.3).

Asserts the paper's qualitative findings on the synthetic pipeline:
service paths are recovered from application-level access logs; the 4 AM
batch breaks the steady-state assumption (delays inaccurate, huge queues);
and a slow database connection is diagnosed as the bottleneck.
"""

import pytest

from repro.apps.delta import build_delta, inject_batch
from repro.config import PathmapConfig
from repro.core.bottleneck import find_bottlenecks
from repro.core.pathmap import compute_service_graphs
from repro.tracing.access_log import access_log_to_captures
from repro.tracing.collector import TraceCollector

pytestmark = pytest.mark.slow

#: Scaled-down analysis window for test speed (same tau/omega ratios as
#: the paper's Delta configuration).
CFG = PathmapConfig(
    window=3600.0,
    refresh_interval=600.0,
    quantum=1.0,
    sampling_window=50.0,
    max_transaction_delay=1200.0,
)


def analyzed_deployment(slow_db_factor=1.0, batch=False, seed=3, horizon=3700.0):
    deployment = build_delta(
        seed=seed,
        num_queues=5,
        events_per_hour=18000.0,  # ~1 ev/s per queue
        slow_db_factor=slow_db_factor,
        config=CFG,
    )
    if batch:
        inject_batch(deployment, at=1200.0, events=1500, over_seconds=60.0)
    deployment.run_until(horizon)
    collector = TraceCollector(client_nodes=["external"])
    collector.ingest_many(
        access_log_to_captures(deployment.sorted_access_log())
    )
    window = collector.window(CFG, end_time=horizon - 50.0)
    return deployment, compute_service_graphs(window, CFG)


@pytest.fixture(scope="module")
def steady():
    return analyzed_deployment()


@pytest.fixture(scope="module")
def slow_db():
    return analyzed_deployment(slow_db_factor=2.5)


class TestPathRecovery:
    def test_one_graph_per_queue(self, steady):
        _, result = steady
        roots = {root for (_, root) in result.graphs}
        assert len(roots) == 5
        assert all(root.startswith("Q") for root in roots)

    def test_pipeline_stages_recovered(self, steady):
        _, result = steady
        for (client, root), graph in result.graphs.items():
            assert graph.has_edge(root, "VAL"), root
            assert graph.has_edge("VAL", "RDB"), root
            assert graph.has_edge("RDB", "ACCT"), root

    def test_delays_roughly_match_stage_times(self, steady):
        _, result = steady
        for graph in result.graphs.values():
            # Cumulative arrival at VAL ~ 2s (queue hand-off), at RDB ~ 7s
            # (+VAL), at ACCT ~ 15s (+RDB); generous bounds for queueing.
            assert 0 <= graph.edge(graph.root, "VAL").min_delay <= 6
            assert 4 <= graph.edge("VAL", "RDB").min_delay <= 14
            assert 10 <= graph.edge("RDB", "ACCT").min_delay <= 30

    def test_pipeline_is_unidirectional(self, steady):
        _, result = steady
        for graph in result.graphs.values():
            assert not graph.has_edge("ACCT", "RDB")
            assert not graph.has_edge("VAL", graph.root)


@pytest.fixture(scope="module")
def with_batch():
    """Deployment with the 4 AM batch at t=1200, plus two analyses: one
    window covering the surge, one entirely after it has drained."""
    deployment = build_delta(
        seed=3, num_queues=5, events_per_hour=18000.0, config=CFG
    )
    inject_batch(deployment, at=1200.0, events=1500, over_seconds=60.0)
    deployment.run_until(3700.0)
    collector = TraceCollector(client_nodes=["external"])
    collector.ingest_many(access_log_to_captures(deployment.sorted_access_log()))
    surge = compute_service_graphs(
        collector.window(CFG, end_time=2400.0, start_time=400.0), CFG
    )
    recovered = compute_service_graphs(
        collector.window(CFG, end_time=3650.0, start_time=1700.0), CFG
    )
    return deployment, surge, recovered


def _full_paths(result):
    return sum(
        1
        for graph in result.graphs.values()
        if graph.has_edge(graph.root, "VAL")
        and graph.has_edge("VAL", "RDB")
        and graph.has_edge("RDB", "ACCT")
    )


class TestBatchSurge:
    """Section 4.3: the batch 'breaks the steady state assumption made by
    the algorithm' -- analysis degrades during the surge and the error
    'could not be eliminated'; once traffic settles, analysis recovers."""

    def test_batch_floods_front_end_queues(self, with_batch):
        deployment, _, _ = with_batch
        # The paper reports queue lengths up to 4000 during the 4 AM batch;
        # scaled down, the surge must still swamp the front-end queues.
        worst = max(q.mean_queue_delay() for q in deployment.queues.values())
        assert worst > 1.0

    def test_analysis_degrades_during_surge(self, with_batch):
        _, surge, recovered = with_batch
        surge_edges = sum(len(g.edges) for g in surge.graphs.values())
        recovered_edges = sum(len(g.edges) for g in recovered.graphs.values())
        assert surge_edges < recovered_edges

    def test_paths_recovered_after_surge_drains(self, with_batch):
        _, _, recovered = with_batch
        assert _full_paths(recovered) >= 4  # out of 5 queues


class TestSlowDatabaseDiagnosis:
    def test_rdb_flagged_as_bottleneck(self, slow_db):
        """The paper: 'E2EProf was able to successfully diagnose a slow
        database server connection'."""
        _, result = slow_db
        dominant = [
            find_bottlenecks(graph).dominant()
            for graph in result.graphs.values()
            if graph.node_delays()
        ]
        assert dominant, "no graphs with node delays"
        assert max(set(dominant), key=dominant.count) == "RDB"

    def test_rdb_delay_scales_with_fault(self, steady, slow_db):
        _, healthy_result = steady
        _, slow_result = slow_db

        def rdb_delay(result):
            delays = [
                g.node_delay("RDB")
                for g in result.graphs.values()
                if g.node_delay("RDB") is not None
            ]
            assert delays, "RDB node delay not measurable"
            return sum(delays) / len(delays)

        assert rdb_delay(slow_result) > 1.8 * rdb_delay(healthy_result)


class TestAccessLogFidelity:
    def test_access_log_volume(self, steady):
        deployment, _ = steady
        log = deployment.sorted_access_log()
        # recv at queue + send at queue + recv VAL + send VAL + recv RDB +
        # send RDB + recv ACCT = 7 records per event.
        assert len(log) >= 7 * 500

    def test_log_is_sorted(self, steady):
        deployment, _ = steady
        log = deployment.sorted_access_log()
        assert all(a.timestamp <= b.timestamp for a, b in zip(log, log[1:]))
