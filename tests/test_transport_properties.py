"""Property tests for the transport reorder buffer (tracing.transport).

Two invariants drive the design:

* **Resequencing**: any permutation of a frame stream whose maximum
  displacement is ``D`` is delivered exactly in order -- no gaps, no
  drops -- by a :class:`ReorderBuffer` with lateness ``2 * D``, even
  with arbitrary duplication mixed in.
* **Epoch monotonicity**: delivered epochs never decrease, and once a
  newer epoch has been observed, no frame from an older epoch is ever
  delivered again (pre-restart blocks cannot be resurrected).
"""

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st

from repro.tracing.transport import ReorderBuffer
from repro.tracing.wire import BlockFrame

STREAM = ("N", "A", "N")


def frame(seq, epoch=0):
    # Heartbeat-shaped frames (block=None) are fine for buffer-order
    # properties: the buffer keys purely on (epoch, seq).
    return BlockFrame("N", epoch, seq, "A", "N", None)


@st.composite
def displaced_streams(draw):
    """A stream of seqs 0..n-1 permuted with bounded displacement, plus
    duplicate injections; returns (arrival_order, max_displacement)."""
    n = draw(st.integers(min_value=1, max_value=40))
    offsets = draw(
        st.lists(
            st.integers(min_value=-8, max_value=8), min_size=n, max_size=n
        )
    )
    order = sorted(range(n), key=lambda i: (i + offsets[i], i))
    displacement = max(abs(pos - seq) for pos, seq in enumerate(order))
    # Sprinkle duplicates of already-scheduled frames into the tail.
    dup_positions = draw(
        st.lists(st.integers(0, n - 1), min_size=0, max_size=5)
    )
    arrivals = list(order)
    for seq in dup_positions:
        arrivals.insert(
            draw(st.integers(order.index(seq) + 1, len(arrivals))), seq
        )
    return arrivals, displacement


class TestResequencing:
    @given(stream=displaced_streams())
    def test_bounded_displacement_resequences_exactly(self, stream):
        arrivals, displacement = stream
        buf = ReorderBuffer(STREAM, lateness=2 * displacement)
        delivered = []
        for seq in arrivals:
            delivered.extend(f.seq for f in buf.push(frame(seq)))
        delivered.extend(f.seq for f in buf.flush())
        n = max(arrivals) + 1
        assert delivered == list(range(n))
        assert buf.gaps == 0
        assert buf.duplicates == len(arrivals) - n

    @given(
        order=st.permutations(list(range(20))),
        lateness=st.integers(min_value=20, max_value=40),
    )
    def test_full_shuffle_with_ample_lateness(self, order, lateness):
        """Any shuffle of n frames resequences exactly when the lateness
        tolerance is at least n."""
        buf = ReorderBuffer(STREAM, lateness=lateness)
        delivered = []
        for seq in order:
            delivered.extend(f.seq for f in buf.push(frame(seq)))
        delivered.extend(f.seq for f in buf.flush())
        assert delivered == list(range(20))
        assert buf.gaps == 0

    @given(order=st.permutations(list(range(15))))
    def test_no_seq_ever_delivered_twice(self, order):
        """Whatever the lateness (here: a tight 1), every sequence number
        is delivered at most once -- late recoveries included."""
        buf = ReorderBuffer(STREAM, lateness=1)
        delivered = []
        for seq in order:
            delivered.extend(f.seq for f in buf.push(frame(seq)))
            # Replay each frame immediately: must never re-deliver.
            assert buf.push(frame(seq)) == []
        delivered.extend(f.seq for f in buf.flush())
        assert sorted(delivered) == list(range(15))
        assert len(set(delivered)) == len(delivered)


class TestEpochs:
    @st.composite
    def epoch_mixes(draw):
        """An arbitrary interleaving of epoch-0 and epoch-1 frames."""
        old = [(0, seq) for seq in range(draw(st.integers(1, 10)))]
        new = [(1, seq) for seq in range(draw(st.integers(1, 10)))]
        mixed = draw(st.permutations(old + new))
        return list(mixed)

    @given(mix=epoch_mixes())
    def test_delivered_epochs_never_decrease(self, mix):
        buf = ReorderBuffer(STREAM, lateness=30)
        delivered = []
        for epoch, seq in mix:
            delivered.extend(
                (f.epoch, f.seq) for f in buf.push(frame(seq, epoch))
            )
        delivered.extend((f.epoch, f.seq) for f in buf.flush())
        epochs = [e for e, _ in delivered]
        assert epochs == sorted(epochs)

    @given(mix=epoch_mixes())
    def test_old_epoch_never_resurrected_after_switch(self, mix):
        """Once any epoch-1 frame has been pushed, no epoch-0 frame is
        ever delivered again."""
        buf = ReorderBuffer(STREAM, lateness=30)
        switched = False
        for epoch, seq in mix:
            out = buf.push(frame(seq, epoch))
            if switched:
                assert all(f.epoch >= 1 for f in out)
            if epoch == 1:
                switched = True
        for f in buf.flush():
            assert f.epoch >= 1 or not switched

    def test_epoch_regression_counted(self):
        buf = ReorderBuffer(STREAM, lateness=2)
        buf.push(frame(0, epoch=3))
        assert buf.push(frame(7, epoch=2)) == []
        assert buf.push(frame(1, epoch=0)) == []
        assert buf.stale_epoch_drops == 2
