"""Tests for service-graph rendering."""

import pytest

from repro.analysis.render import render_ascii, render_comparison_table, render_dot
from repro.core.service_graph import ServiceGraph


def tiered_graph():
    g = ServiceGraph("C", "WS")
    g.add_edge("WS", "TS", [0.003])
    g.add_edge("TS", "EJB", [0.011])
    g.add_edge("EJB", "DB", [0.031])
    return g


class TestAscii:
    def test_contains_path_chain(self):
        text = render_ascii(tiered_graph())
        assert "C" in text
        assert "-[3.0ms]-> TS" in text
        assert "node delays:" in text

    def test_bottleneck_marked(self):
        text = render_ascii(tiered_graph(), mark_bottlenecks=True)
        assert "*EJB*" in text

    def test_no_marking_when_disabled(self):
        text = render_ascii(tiered_graph(), mark_bottlenecks=False)
        assert "*EJB*" not in text

    def test_seconds_formatting(self):
        g = ServiceGraph("C", "Q")
        g.add_edge("Q", "VAL", [2.0])
        text = render_ascii(g, mark_bottlenecks=False)
        assert "2.00s" in text


class TestDot:
    def test_valid_structure(self):
        dot = render_dot(tiered_graph())
        assert dot.startswith("digraph")
        assert dot.endswith("}")
        assert '"WS" -> "TS" [label="3.0ms"];' in dot

    def test_bottleneck_grey(self):
        dot = render_dot(tiered_graph())
        assert 'fillcolor=grey' in dot
        grey_line = [l for l in dot.splitlines() if "grey" in l]
        assert any("EJB" in l for l in grey_line)

    def test_client_is_ellipse(self):
        dot = render_dot(tiered_graph())
        client_line = [l for l in dot.splitlines() if '"C" [' in l][0]
        assert "ellipse" in client_line

    def test_multi_delay_labels(self):
        g = ServiceGraph("C", "WS")
        g.add_edge("WS", "TS", [0.003, 0.009])
        dot = render_dot(g, mark_bottlenecks=False)
        assert '3.0ms, 9.0ms' in dot


class TestTable:
    def test_alignment_and_title(self):
        text = render_comparison_table(
            ["name", "value"],
            [["a", 1], ["long-name", 22]],
            title="Table 1",
        )
        lines = text.splitlines()
        assert lines[0] == "Table 1"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_no_title(self):
        text = render_comparison_table(["h"], [["x"]])
        assert text.splitlines()[0] == "h"
