"""Tests for the RLE wire format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rle import RunLengthSeries, rle_encode
from repro.core.timeseries import DensityTimeSeries
from repro.errors import TraceError
from repro.tracing.wire import decode_block, encode_block, wire_sizes


def rle_from_dense(dense, start=0):
    return rle_encode(DensityTimeSeries.from_dense(dense, start, 1e-3))


dense_arrays = st.lists(
    st.sampled_from([0.0, 0.0, 1.0, 1.0, 2.0, 3.0]), min_size=0, max_size=80
)


class TestRoundTrip:
    @given(dense_arrays, st.integers(min_value=-1000, max_value=1000))
    @settings(max_examples=80, deadline=None)
    def test_exact_roundtrip(self, dense, start):
        original = rle_from_dense(dense, start)
        decoded = decode_block(encode_block(original))
        assert decoded.start == original.start
        assert decoded.length == original.length
        assert decoded.quantum == original.quantum
        assert np.array_equal(decoded.starts, original.starts)
        assert np.array_equal(decoded.counts, original.counts)
        # Values pass through float32.
        np.testing.assert_allclose(decoded.values, original.values, rtol=1e-6)

    def test_empty_block(self):
        original = RunLengthSeries.empty(500, 1000, 1e-3)
        decoded = decode_block(encode_block(original))
        assert decoded == original

    def test_long_quiet_gap_is_cheap(self):
        # One run, then a million-quantum gap, then another run.
        series = RunLengthSeries(
            np.array([0, 1_000_000]), np.array([3, 3]),
            np.array([1.0, 2.0]), 0, 1_000_100, 1e-3,
        )
        encoded = encode_block(series)
        assert len(encoded) < 60  # varint gap, not dense padding
        assert decode_block(encoded) == series


class TestValidation:
    def test_bad_magic(self):
        data = bytearray(encode_block(rle_from_dense([1.0])))
        data[0:2] = b"XX"
        with pytest.raises(TraceError):
            decode_block(bytes(data))

    def test_bad_version(self):
        data = bytearray(encode_block(rle_from_dense([1.0])))
        data[2] = 99
        with pytest.raises(TraceError):
            decode_block(bytes(data))

    def test_truncated(self):
        data = encode_block(rle_from_dense([1.0, 1.0, 0.0, 2.0]))
        with pytest.raises(TraceError):
            decode_block(data[:-2])

    def test_trailing_garbage(self):
        data = encode_block(rle_from_dense([1.0]))
        with pytest.raises(TraceError):
            decode_block(data + b"\x00")

    def test_too_short_for_header(self):
        with pytest.raises(TraceError):
            decode_block(b"RL")


class TestSizes:
    def test_rle_wire_beats_alternatives_on_bursty_traffic(self):
        # 60 s of quanta, short bursts: the paper's transmission claim.
        rng = np.random.default_rng(0)
        dense = np.zeros(60_000)
        for start in rng.integers(0, 59_000, 40):
            dense[start : start + 50] = 2.0
        series = rle_encode(DensityTimeSeries.from_dense(dense, 0, 1e-3))
        sizes = wire_sizes(series, message_count=40 * 4)
        assert sizes["rle_wire"] < sizes["sparse"]
        assert sizes["rle_wire"] < sizes["dense"] / 50
        assert sizes["rle_wire"] < sizes["raw_timestamps"]

    def test_sizes_fields(self):
        series = rle_from_dense([1.0, 1.0, 0.0, 2.0])
        sizes = wire_sizes(series, message_count=5)
        assert set(sizes) == {"raw_timestamps", "dense", "sparse", "rle_wire"}
        assert sizes["raw_timestamps"] == 40
        assert sizes["dense"] == 16
        assert sizes["sparse"] == 36
