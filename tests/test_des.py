"""Tests for the discrete-event simulation engine."""

import pytest

from repro.errors import SimulationError
from repro.simulation.des import PeriodicTask, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(2.0, lambda: fired.append("b"))
        sim.schedule_at(1.0, lambda: fired.append("a"))
        sim.schedule_at(3.0, lambda: fired.append("c"))
        sim.run_until(5.0)
        assert fired == ["a", "b", "c"]

    def test_equal_times_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for name in "abcde":
            sim.schedule_at(1.0, lambda n=name: fired.append(n))
        sim.run_until(1.0)
        assert fired == list("abcde")

    def test_relative_schedule(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.5, lambda: seen.append(sim.now))
        sim.run_until(1.0)
        assert seen == [0.5]

    def test_now_advances_to_end_time(self):
        sim = Simulator()
        sim.run_until(10.0)
        assert sim.now == 10.0

    def test_events_beyond_end_remain_pending(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, lambda: fired.append(1))
        sim.run_until(2.0)
        assert fired == []
        assert sim.pending == 1
        sim.run_until(5.0)
        assert fired == [1]

    def test_events_scheduled_during_events(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(1.0, chain)

        sim.schedule_at(1.0, chain)
        sim.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_cannot_schedule_into_past(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(4.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_run_until_backwards_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(4.0)

    def test_run_drains_queue(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule_at(float(i), lambda: None)
        ran = sim.run()
        assert ran == 5
        assert sim.pending == 0

    def test_run_max_events(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule_at(float(i), lambda: None)
        assert sim.run(max_events=2) == 2
        assert sim.pending == 3

    def test_events_run_counter(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run_until(2.0)
        assert sim.events_run == 1

    def test_reentrant_run_rejected(self):
        sim = Simulator()
        errors = []

        def evil():
            try:
                sim.run_until(10.0)
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule_at(1.0, evil)
        sim.run_until(2.0)
        assert len(errors) == 1


class TestPeriodicTask:
    def test_fires_every_interval(self):
        sim = Simulator()
        times = []
        PeriodicTask(sim, 1.0, lambda now: times.append(now))
        sim.run_until(3.5)
        assert times == [1.0, 2.0, 3.0]

    def test_custom_start(self):
        sim = Simulator()
        times = []
        PeriodicTask(sim, 1.0, lambda now: times.append(now), start_at=0.5)
        sim.run_until(2.6)
        assert times == [0.5, 1.5, 2.5]

    def test_cancel_stops_firing(self):
        sim = Simulator()
        times = []
        task = PeriodicTask(sim, 1.0, lambda now: times.append(now))
        sim.run_until(2.0)
        task.cancel()
        sim.run_until(5.0)
        assert times == [1.0, 2.0]

    def test_cancel_from_callback(self):
        sim = Simulator()
        times = []

        def cb(now):
            times.append(now)
            if len(times) == 2:
                task.cancel()

        task = PeriodicTask(sim, 1.0, cb)
        sim.run_until(10.0)
        assert times == [1.0, 2.0]

    def test_bad_interval(self):
        with pytest.raises(SimulationError):
            PeriodicTask(Simulator(), 0.0, lambda now: None)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        import numpy as np

        def run(seed):
            sim = Simulator()
            rng = np.random.default_rng(seed)
            log = []

            def arrival():
                log.append(round(sim.now, 9))
                sim.schedule(float(rng.exponential(0.1)), arrival)

            sim.schedule_at(0.0, arrival)
            sim.run_until(10.0)
            return log

        assert run(42) == run(42)
        assert run(42) != run(43)
