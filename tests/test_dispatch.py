"""Tests for the front-end dispatch policies."""

import numpy as np
import pytest

from repro.apps.dispatch import AffinityRouter, LatencyAwareRouter, RoundRobinRouter
from repro.errors import TopologyError
from repro.simulation.nodes import Forward, Message


def msg(service_class, rid=1):
    return Message(rid, service_class, "request", "C", "WS", ("C",), 0.0)


class TestAffinity:
    def test_routes_by_class(self):
        router = AffinityRouter({"bid": "TS1", "comment": "TS2"})
        assert router.route(None, msg("bid")).targets == ("TS1",)
        assert router.route(None, msg("comment")).targets == ("TS2",)

    def test_unknown_class_rejected(self):
        router = AffinityRouter({"bid": "TS1"})
        with pytest.raises(TopologyError):
            router.route(None, msg("other"))

    def test_empty_map_rejected(self):
        with pytest.raises(TopologyError):
            AffinityRouter({})


class TestRoundRobin:
    def test_alternates_regardless_of_class(self):
        router = RoundRobinRouter(["TS1", "TS2"])
        seen = [router.route(None, msg(c, i)).targets[0]
                for i, c in enumerate(["a", "b", "a", "b"])]
        assert seen == ["TS1", "TS2", "TS1", "TS2"]

    def test_single_target(self):
        router = RoundRobinRouter(["TS1"])
        assert router.route(None, msg("a")).targets == ("TS1",)

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            RoundRobinRouter([])


class TestLatencyAware:
    def test_falls_back_to_round_robin(self):
        router = LatencyAwareRouter(["TS1", "TS2"])
        first = router.route(None, msg("a", 1)).targets[0]
        second = router.route(None, msg("a", 2)).targets[0]
        assert {first, second} == {"TS1", "TS2"}

    def test_assignment_pins_class(self):
        router = LatencyAwareRouter(["TS1", "TS2"])
        router.assign("bid", "TS2")
        for i in range(3):
            assert router.route(None, msg("bid", i)).targets == ("TS2",)
        assert router.assignment("bid") == "TS2"
        assert router.assignment("other") is None

    def test_reassignment_counter(self):
        router = LatencyAwareRouter(["TS1", "TS2"])
        router.assign("bid", "TS1")
        router.assign("bid", "TS1")  # no change
        router.assign("bid", "TS2")
        assert router.reassignments == 2

    def test_assign_unknown_target(self):
        router = LatencyAwareRouter(["TS1", "TS2"])
        with pytest.raises(TopologyError):
            router.assign("bid", "TS9")

    def test_needs_two_targets(self):
        with pytest.raises(TopologyError):
            LatencyAwareRouter(["TS1"])
