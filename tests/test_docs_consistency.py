"""Documentation consistency: DESIGN.md, README.md and EXPERIMENTS.md
must stay in sync with the code they describe."""

import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent
DESIGN = (ROOT / "DESIGN.md").read_text()
README = (ROOT / "README.md").read_text()
EXPERIMENTS = (ROOT / "EXPERIMENTS.md").read_text()


def module_files():
    for path in sorted((ROOT / "src" / "repro").rglob("*.py")):
        if path.name != "__init__.py" and path.name != "__main__.py":
            yield path


class TestDesignInventory:
    def test_every_module_named_in_design(self):
        missing = [
            str(path.relative_to(ROOT / "src" / "repro"))
            for path in module_files()
            if path.name not in DESIGN
        ]
        assert not missing, f"DESIGN.md inventory is missing: {missing}"

    def test_every_benchmark_indexed(self):
        benches = sorted(
            p.name for p in (ROOT / "benchmarks").glob("test_*.py")
        )
        missing = [b for b in benches if b not in DESIGN]
        assert not missing, f"DESIGN.md experiment index is missing: {missing}"

    def test_paper_check_is_present(self):
        assert "Paper-text check" in DESIGN


class TestReadme:
    def test_every_example_listed(self):
        examples = sorted(p.name for p in (ROOT / "examples").glob("*.py"))
        missing = [e for e in examples if e not in README]
        assert not missing, f"README example table is missing: {missing}"

    def test_docs_linked(self):
        for doc in ("ALGORITHM.md", "TRACES.md", "API.md"):
            assert doc in README, doc
            assert (ROOT / "docs" / doc).exists(), doc

    def test_quickstart_snippet_matches_api(self):
        # The names used in the README snippet must exist in the package.
        import repro

        for name in ("PathmapConfig", "build_rubis", "compute_service_graphs"):
            assert hasattr(repro, name)


class TestExperiments:
    def test_every_paper_artifact_covered(self):
        for exp in ("FIG5", "FIG6", "FIG7", "FIG9", "FIG10", "TAB1",
                    "DELTA", "SKEW", "CPLX", "ACC"):
            assert f"## {exp}" in EXPERIMENTS, exp

    def test_every_result_artifact_referenced_by_a_bench(self):
        # Each EXPERIMENTS results/<name>.txt reference must have a bench
        # that writes it.
        import re

        bench_sources = "\n".join(
            p.read_text() for p in (ROOT / "benchmarks").glob("test_*.py")
        )
        for name in re.findall(r"results/([a-z0-9_]+\.txt)", EXPERIMENTS):
            assert f'"{name}"' in bench_sources, name

    def test_honest_deviations_section_exists(self):
        assert "Honest-deviation summary" in EXPERIMENTS
