"""Tests for network-vs-processing delay decomposition."""

import pytest

from repro.config import PathmapConfig
from repro.core.link_latency import (
    decompose_node_delays,
    estimate_link_latency,
    measure_link_latencies,
)
from repro.core.pathmap import compute_service_graphs
from repro.errors import AnalysisError
from repro.simulation.distributions import Constant, Erlang
from repro.simulation.nodes import StaticRouter
from repro.simulation.topology import Topology

CFG = PathmapConfig(
    window=40.0,
    refresh_interval=40.0,
    quantum=1e-3,
    sampling_window=5e-3,
    max_transaction_delay=1.0,
)

SLOW_LINK = 0.006  # the WAN hop between AP and DB


@pytest.fixture(scope="module")
def wan_system():
    """WS -- AP ==(6 ms WAN)== DB; all other links 0.2 ms."""
    topo = Topology(seed=14)
    topo.add_service_node("DB", Erlang(0.010, k=8), workers=8)
    topo.add_service_node("AP", Erlang(0.008, k=8), workers=8,
                          router=StaticRouter({}, default="DB"))
    topo.add_service_node("WS", Erlang(0.003, k=8), workers=8,
                          router=StaticRouter({}, default="AP"))
    topo.set_link_latency("AP", "DB", Constant(SLOW_LINK))
    topo.set_link_latency("DB", "AP", Constant(SLOW_LINK))
    client = topo.add_client("C", "cls", front_end="WS")
    topo.open_workload(client, rate=25.0)
    topo.run_until(42.0)
    result = compute_service_graphs(topo.collector.window(CFG, end_time=41.0), CFG)
    return topo, result.graph_for("C")


class TestLinkLatency:
    def test_wan_hop_measured(self, wan_system):
        topo, _ = wan_system
        latency = estimate_link_latency(topo.collector, "AP", "DB", CFG, end_time=41.0)
        assert latency == pytest.approx(SLOW_LINK, abs=0.002)

    def test_lan_hop_measured_near_zero(self, wan_system):
        topo, _ = wan_system
        latency = estimate_link_latency(topo.collector, "WS", "AP", CFG, end_time=41.0)
        assert latency == pytest.approx(0.0002, abs=0.002)

    def test_client_edge_not_measurable(self, wan_system):
        topo, _ = wan_system
        with pytest.raises(AnalysisError):
            estimate_link_latency(topo.collector, "C", "WS", CFG, end_time=41.0)

    def test_measure_all_graph_links(self, wan_system):
        topo, graph = wan_system
        latencies = measure_link_latencies(topo.collector, graph, CFG, end_time=41.0)
        assert ("AP", "DB") in latencies
        assert ("C", "WS") not in latencies  # client edge skipped
        assert latencies[("AP", "DB")] == pytest.approx(SLOW_LINK, abs=0.002)


class TestDecomposition:
    def test_processing_isolated_from_network(self, wan_system):
        topo, graph = wan_system
        latencies = measure_link_latencies(topo.collector, graph, CFG, end_time=41.0)
        decomposition = decompose_node_delays(graph, latencies)
        ap = decomposition["AP"]
        # AP's raw node delay includes the 6 ms WAN hop; processing is 8 ms.
        assert ap["total"] == pytest.approx(0.008 + SLOW_LINK, abs=0.003)
        assert ap["network"] == pytest.approx(SLOW_LINK, abs=0.002)
        assert ap["processing"] == pytest.approx(0.008, abs=0.003)

    def test_lan_node_mostly_processing(self, wan_system):
        topo, graph = wan_system
        latencies = measure_link_latencies(topo.collector, graph, CFG, end_time=41.0)
        decomposition = decompose_node_delays(graph, latencies)
        ws = decomposition["WS"]
        assert ws["network"] < 0.002
        assert ws["processing"] == pytest.approx(0.003, abs=0.002)

    def test_unmeasured_links_skipped(self, wan_system):
        _, graph = wan_system
        decomposition = decompose_node_delays(graph, {})
        assert decomposition == {}
