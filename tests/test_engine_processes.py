"""Differential determinism of the process-sharded refresh.

The ``parallel="processes"`` engine partitions correlator groups across
worker processes by service class, ships block history through shared
memory, and merges per-shard partial pathmaps. None of that machinery
may change a single bit of output: graphs, stats, per-refresh samples
and exact metrics counters must match the serial engine for every
workload, every shard count, and across a mid-run reshard.

The suite extends ``tests/test_engine_parallel.py`` (which pins the
thread-pool mode to the same contract) with:

* a three-way serial == threads == processes comparison,
* a shard-count sweep (1..8) against one serial baseline,
* hypothesis-driven workloads (topology shape and shard count drawn),
* mid-run ``engine.reshard()`` equivalence,
* a sweep over every scenario in :mod:`repro.scenarios`,
* worker crash faults (degrade, publish ``shard_lost``, respawn), and
* resource lifecycle: ``engine.close()`` releases every process and
  shared-memory segment.
"""

import os
import signal
import warnings

import pytest

from repro.apps.manyclass import build_many_class
from repro.config import PathmapConfig
from repro.core.engine import E2EProfEngine
from repro.errors import AnalysisError
from repro.obs.events import EVENT_SHARD_LOST
from repro.obs.registry import MetricsRegistry
from repro.tracing.transport import QUALITY_DEGRADED

from tests.test_engine_parallel import (
    CFG,
    EXACT_COUNTERS,
    counter_values,
    run_engine,
)

#: Sample fields that must agree refresh-for-refresh between modes
#: (all the exact work counts; elapsed-time fields excluded).
SAMPLE_FIELDS = (
    "time",
    "blocks_ingested",
    "correlators",
    "cache_hits",
    "cache_misses",
    "correlations",
    "spikes",
    "nodes_visited",
    "correlator_skips",
    "correlation_cache_hits",
)


def assert_equivalent(serial, other, serial_samples=None, other_samples=None,
                      counters=True):
    """Bit-identical refresh output: graphs, stats, samples, counters."""
    s_result = serial.latest_result
    o_result = other.latest_result
    assert list(s_result.graphs) == list(o_result.graphs)
    for key, graph in s_result.graphs.items():
        assert o_result.graphs[key].to_dict() == graph.to_dict(), key
    for field in ("correlations", "spikes", "edges_discovered", "graphs",
                  "nodes_visited"):
        assert getattr(s_result.stats, field) == getattr(o_result.stats, field), field
    if serial_samples is not None:
        assert len(serial_samples) == len(other_samples)
        for s, o in zip(serial_samples, other_samples):
            for field in SAMPLE_FIELDS:
                assert getattr(s, field) == getattr(o, field), field
    if counters:
        assert counter_values(serial.metrics) == counter_values(other.metrics)


class TestProcessDeterminism:
    def test_serial_threads_processes_agree(self):
        serial, s_samples = run_engine(
            metrics=MetricsRegistry(enabled=True), workers=1
        )
        threads, t_samples = run_engine(
            metrics=MetricsRegistry(enabled=True), parallel="threads", workers=3
        )
        procs, p_samples = run_engine(
            metrics=MetricsRegistry(enabled=True), parallel="processes", shards=2
        )
        assert_equivalent(serial, threads, s_samples, t_samples)
        assert_equivalent(serial, procs, s_samples, p_samples)

    @pytest.mark.parametrize("shards", [1, 3, 8])
    def test_shard_count_sweep(self, shards):
        serial, s_samples = run_engine(
            metrics=MetricsRegistry(enabled=True), workers=1, end_time=12.0
        )
        procs, p_samples = run_engine(
            metrics=MetricsRegistry(enabled=True),
            parallel="processes",
            shards=shards,
            end_time=12.0,
        )
        assert procs.shards == shards
        assert_equivalent(serial, procs, s_samples, p_samples)

    def test_ledger_records_per_shard_timings(self):
        procs, _ = run_engine(parallel="processes", shards=3, end_time=12.0)
        ledger = procs.ledger.latest
        assert sorted(ledger.shards) == ["0", "1", "2"]
        for sample in ledger.shards.values():
            assert sample.correlate_seconds >= 0.0
            assert sample.dfs_seconds >= 0.0
            assert sample.classes >= 0
        assert sum(s.classes for s in ledger.shards.values()) > 0

    def test_invalid_parallel_mode_rejected(self):
        with pytest.raises(AnalysisError):
            E2EProfEngine(CFG, parallel="fibers")
        with pytest.raises(AnalysisError):
            E2EProfEngine(CFG, parallel="processes", shards=0)


class TestHypothesisWorkloads:
    """Serial == processes across randomly drawn workloads."""

    @pytest.fixture(autouse=True)
    def _hypothesis(self):
        pytest.importorskip("hypothesis")

    def test_drawn_workloads_are_bit_identical(self):
        from hypothesis import given, settings, strategies as st

        @settings(max_examples=5, deadline=None)
        @given(
            seed=st.integers(min_value=0, max_value=50),
            classes=st.integers(min_value=2, max_value=8),
            quiet=st.sampled_from([0.0, 0.25, 0.5]),
            shards=st.integers(min_value=1, max_value=8),
        )
        def check(seed, classes, quiet, shards):
            kwargs = dict(
                seed=seed,
                classes=classes,
                quiet_fraction=quiet,
                end_time=10.0,
            )
            serial, s_samples = run_engine(
                metrics=MetricsRegistry(enabled=True), workers=1, **kwargs
            )
            procs, p_samples = run_engine(
                metrics=MetricsRegistry(enabled=True),
                parallel="processes",
                shards=shards,
                **kwargs,
            )
            assert_equivalent(serial, procs, s_samples, p_samples)

        check()


class TestReshard:
    def test_midrun_reshard_preserves_results(self):
        deployment = build_many_class(
            classes=6, quiet_fraction=0.5, seed=3, request_rate=10.0,
            quiet_after=5.0, config=CFG,
        )
        engine = E2EProfEngine(
            CFG, parallel="processes", shards=2,
            metrics=MetricsRegistry(enabled=True),
        )
        engine.attach(deployment.topology)
        deployment.run_until(8.0)
        engine.reshard(5)
        assert engine.shards == 5
        deployment.run_until(18.0)
        engine.detach()

        serial, _ = run_engine(metrics=MetricsRegistry(enabled=True), workers=1)
        # Correlators rebuilt after the reshard replay their windows, so
        # *work* counters (pair products, skips, cache hits/misses) grow;
        # the analysis-output counters must not move by a single unit.
        exact = [
            c
            for c in EXACT_COUNTERS
            if c.startswith("pathmap_") or c == "engine_blocks_ingested_total"
        ]
        assert_equivalent(serial, engine, counters=False)
        cv_s, cv_p = counter_values(serial.metrics), counter_values(engine.metrics)
        for name in exact:
            assert cv_s[name] == cv_p[name], name

    def test_reshard_rejects_invalid_counts(self):
        engine = E2EProfEngine(CFG, parallel="processes", shards=2)
        with pytest.raises(AnalysisError):
            engine.reshard(0)


class TestScenarioSweep:
    """Acceptance: bit-identical to serial on every scenario in
    :mod:`repro.scenarios` (fanout_mesh, the largest, rides in tier-2)."""

    @staticmethod
    def scenario_params():
        from repro.scenarios import list_scenarios

        return [
            pytest.param(s.name, marks=pytest.mark.slow)
            if s.name == "fanout_mesh"
            else s.name
            for s in list_scenarios()
        ]

    @pytest.mark.parametrize("name", scenario_params.__func__())
    def test_scenario_matches_serial(self, name):
        from repro.scenarios import get_scenario

        results = {}
        for mode, kwargs in (
            ("serial", dict(workers=1)),
            ("processes", dict(parallel="processes", shards=3)),
        ):
            run = get_scenario(name).build(seed=11)
            engine = E2EProfEngine(run.config, **kwargs)
            engine.attach(run.topology)
            run.simulate()
            engine.detach()
            assert engine.latest_result is not None, (name, mode)
            results[mode] = engine.latest_result
        serial, procs = results["serial"], results["processes"]
        assert list(serial.graphs) == list(procs.graphs), name
        for key, graph in serial.graphs.items():
            assert procs.graphs[key].to_dict() == graph.to_dict(), (name, key)
        for field in ("correlations", "spikes", "edges_discovered", "graphs",
                      "nodes_visited"):
            assert getattr(serial.stats, field) == getattr(procs.stats, field)


class TestShardFaults:
    def _run_with_crash(self, victim=1, shards=2):
        deployment = build_many_class(
            classes=6, quiet_fraction=0.5, seed=3, request_rate=10.0,
            quiet_after=5.0, config=CFG,
        )
        engine = E2EProfEngine(
            CFG, parallel="processes", shards=shards,
            metrics=MetricsRegistry(enabled=True),
        )
        engine.attach(deployment.topology)
        deployment.run_until(8.0)
        sharded = engine._sharded
        original = sharded.dispatch

        def killing_dispatch(*args, **kwargs):
            # Dispatch normally, then SIGKILL the victim mid-refresh: the
            # parent's collect() sees EOF on the control pipe.
            original(*args, **kwargs)
            os.kill(sharded._workers[victim].process.pid, signal.SIGKILL)
            sharded.dispatch = original

        sharded.dispatch = killing_dispatch
        deployment.run_until(12.0)
        return deployment, engine

    def test_crash_degrades_and_publishes_shard_lost(self):
        deployment, engine = self._run_with_crash()
        try:
            events = engine.events.events(EVENT_SHARD_LOST)
            assert len(events) == 1
            event = events[0]
            assert event.attributes["shard"] == 1
            assert event.attributes["degraded_edges"] > 0
            assert event.attributes["classes"] > 0
            # The refresh still completed, with the lost shard's edges
            # marked degraded through the DataQuality machinery.
            assert engine.latest_result is not None
            degraded = [
                edge
                for edge, quality in engine.latest_edge_quality.items()
                if quality.state == QUALITY_DEGRADED
            ]
            assert degraded
            assert engine.quality_score < 1.0
        finally:
            engine.detach()

    def test_crash_recovers_on_next_refresh(self):
        deployment, engine = self._run_with_crash()
        try:
            deployment.run_until(18.0)
            assert engine._sharded.respawns >= 1
            # All workers alive again and analysis back to bit-identical.
            assert all(
                handle.alive for handle in engine._sharded._workers.values()
            )
        finally:
            engine.detach()
        serial, _ = run_engine(workers=1)
        assert_equivalent(serial, engine, counters=False)


class TestResourceLifecycle:
    @pytest.mark.filterwarnings("error::UserWarning")
    def test_engine_close_releases_resources(self):
        from multiprocessing import shared_memory

        deployment = build_many_class(
            classes=4, quiet_fraction=0.0, seed=5, request_rate=10.0,
            quiet_after=5.0, config=CFG,
        )
        engine = E2EProfEngine(CFG, parallel="processes", shards=2, workers=2)
        engine.attach(deployment.topology)
        deployment.run_until(10.0)
        workers = list(engine._sharded._workers.values())
        segments = [seg.name for seg in engine._sharded._segments]
        assert workers and segments

        engine.close()

        assert engine._pool is None
        assert engine._sharded is None
        for handle in workers:
            assert not handle.alive
        # Every shipment segment was unlinked: attaching must fail.
        for name in segments:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        # close() is idempotent.
        engine.close()

    @pytest.mark.filterwarnings("error::UserWarning")
    def test_detach_after_crash_still_cleans_up(self):
        deployment = build_many_class(
            classes=4, quiet_fraction=0.0, seed=5, request_rate=10.0,
            quiet_after=5.0, config=CFG,
        )
        engine = E2EProfEngine(CFG, parallel="processes", shards=2)
        engine.attach(deployment.topology)
        deployment.run_until(8.0)
        victim = engine._sharded._workers[0]
        os.kill(victim.process.pid, signal.SIGKILL)
        victim.process.join(timeout=10.0)
        deployment.run_until(12.0)  # refresh past the dead worker
        segments = [seg.name for seg in engine._sharded._segments]
        engine.close()
        for name in segments:
            with pytest.raises(FileNotFoundError):
                pytest.importorskip("multiprocessing.shared_memory").SharedMemory(
                    name=name
                )
