"""Tests for SLA specification and monitoring."""

import pytest

from repro.errors import ConfigError
from repro.management.sla import SLA, SLAMonitor, SLAStatus


class TestSLA:
    def test_mean_target(self):
        sla = SLA("bid", max_latency=0.1)
        assert sla.measure([0.05, 0.15]) == pytest.approx(0.10)
        assert sla.is_met([0.05, 0.15])
        assert not sla.is_met([0.2, 0.3])

    def test_percentile_target(self):
        sla = SLA("bid", max_latency=0.1, percentile=95.0)
        latencies = [0.05] * 99 + [1.0]
        assert sla.measure(latencies) < 0.1
        assert sla.is_met(latencies)
        assert not sla.is_met([1.0] * 10)

    def test_empty_samples_vacuously_met(self):
        sla = SLA("bid", max_latency=0.1)
        assert sla.is_met([])
        assert sla.measure([]) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            SLA("bid", max_latency=0.0)
        with pytest.raises(ConfigError):
            SLA("bid", max_latency=0.1, percentile=0.0)
        with pytest.raises(ConfigError):
            SLA("bid", max_latency=0.1, percentile=100.0)


class TestStatus:
    def test_headroom(self):
        status = SLAStatus(SLA("bid", 0.1), measured=0.07, sample_count=10)
        assert status.met
        assert status.headroom == pytest.approx(0.03)

    def test_violation(self):
        status = SLAStatus(SLA("bid", 0.1), measured=0.15, sample_count=10)
        assert not status.met
        assert status.headroom < 0

    def test_no_samples_is_met(self):
        status = SLAStatus(SLA("bid", 0.1), measured=0.0, sample_count=0)
        assert status.met


class TestMonitor:
    def test_evaluate_all_classes(self):
        monitor = SLAMonitor([SLA("bid", 0.1), SLA("comment", 0.5)])
        statuses = monitor.evaluate({"bid": [0.05], "comment": [0.6]})
        assert len(statuses) == 2
        by_class = {s.sla.service_class: s for s in statuses}
        assert by_class["bid"].met
        assert not by_class["comment"].met

    def test_violations_recorded(self):
        monitor = SLAMonitor([SLA("bid", 0.1)])
        monitor.evaluate({"bid": [0.5]})
        monitor.evaluate({"bid": [0.05]})
        assert len(monitor.violations()) == 1

    def test_missing_class_data(self):
        monitor = SLAMonitor([SLA("bid", 0.1)])
        statuses = monitor.evaluate({})
        assert statuses[0].met
        assert statuses[0].sample_count == 0

    def test_duplicate_sla_rejected(self):
        with pytest.raises(ConfigError):
            SLAMonitor([SLA("bid", 0.1), SLA("bid", 0.2)])

    def test_sla_lookup(self):
        monitor = SLAMonitor([SLA("bid", 0.1)])
        assert monitor.sla_for("bid").max_latency == 0.1
        with pytest.raises(ConfigError):
            monitor.sla_for("nope")
        assert monitor.classes == ["bid"]
