"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation.des import Simulator
from repro.simulation.distributions import Constant, Exponential
from repro.simulation.network import Fabric
from repro.simulation.nodes import ClientNode, ServiceNode
from repro.simulation.workload import ClosedWorkload, OnOffWorkload, OpenWorkload


def make_system():
    sim = Simulator()
    fabric = Fabric(sim, np.random.default_rng(0), default_latency=Constant(0.001))
    server = ServiceNode(sim, fabric, "S", Constant(0.005), workers=8)
    client = ClientNode(sim, fabric, "C", "cls", "S")
    return sim, fabric, server, client


class TestOpenWorkload:
    def test_rate_is_respected(self):
        sim, fabric, server, client = make_system()
        OpenWorkload(sim, client, rate=50.0, rng=fabric.rng).start()
        sim.run_until(60.0)
        # Poisson(50/s) over 60 s: ~3000 +- a few hundred.
        assert 2500 < client.sent < 3500

    def test_stop_halts_arrivals(self):
        sim, fabric, server, client = make_system()
        workload = OpenWorkload(sim, client, rate=50.0, rng=fabric.rng)
        workload.start()
        sim.run_until(10.0)
        sent = client.sent
        workload.stop()
        sim.run_until(20.0)
        assert client.sent == sent

    def test_restart_is_idempotent_while_running(self):
        sim, fabric, server, client = make_system()
        workload = OpenWorkload(sim, client, rate=50.0, rng=fabric.rng)
        workload.start()
        workload.start()  # no double arrivals
        sim.run_until(10.0)
        assert 300 < client.sent < 700

    def test_bad_rate(self):
        sim, fabric, server, client = make_system()
        with pytest.raises(SimulationError):
            OpenWorkload(sim, client, rate=0.0, rng=fabric.rng)

    def test_arrivals_are_poisson_like(self):
        # Exponential gaps: variance of inter-arrival ~ mean^2.
        sim, fabric, server, client = make_system()
        stamps = []
        client.issue_request = lambda: stamps.append(sim.now) or 0  # type: ignore
        OpenWorkload(sim, client, rate=100.0, rng=fabric.rng).start()
        sim.run_until(100.0)
        gaps = np.diff(stamps)
        assert gaps.mean() == pytest.approx(0.01, rel=0.1)
        assert gaps.std() == pytest.approx(gaps.mean(), rel=0.2)


class TestOnOffWorkload:
    def test_average_rate_matches_duty_cycle(self):
        sim, fabric, server, client = make_system()
        # ON at 100/s with 50% duty -> ~50/s average.
        workload = OnOffWorkload(
            sim, client, rate=100.0,
            on_time=Constant(2.0), off_time=Constant(2.0),
            rng=fabric.rng,
        )
        workload.start()
        sim.run_until(120.0)
        assert 4500 < client.sent < 7500

    def test_quiet_zones_exist(self):
        sim, fabric, server, client = make_system()
        stamps = []
        client.issue_request = lambda: stamps.append(sim.now) or 0  # type: ignore
        OnOffWorkload(sim, client, rate=50.0,
                      on_time=Constant(1.0), off_time=Constant(3.0),
                      rng=fabric.rng).start()
        sim.run_until(60.0)
        gaps = np.diff(stamps)
        # OFF phases leave multi-second holes in the arrival stream.
        assert gaps.max() > 2.0
        # ON phases are dense.
        assert np.median(gaps) < 0.1

    def test_stop(self):
        sim, fabric, server, client = make_system()
        workload = OnOffWorkload(sim, client, rate=50.0,
                                 on_time=Constant(1.0), off_time=Constant(1.0),
                                 rng=fabric.rng)
        workload.start()
        sim.run_until(10.0)
        sent = client.sent
        workload.stop()
        sim.run_until(20.0)
        assert client.sent == sent

    def test_bad_rate(self):
        sim, fabric, server, client = make_system()
        with pytest.raises(SimulationError):
            OnOffWorkload(sim, client, rate=0.0,
                          on_time=Constant(1.0), off_time=Constant(1.0),
                          rng=fabric.rng)


class TestClosedWorkload:
    def test_sessions_limit_concurrency(self):
        sim, fabric, server, client = make_system()
        ClosedWorkload(sim, client, sessions=5, think_time=Constant(0.0)).start()
        sim.run_until(10.0)
        # Each session has at most one request outstanding.
        assert client.outstanding <= 5
        assert client.completed > 100

    def test_think_time_paces_sessions(self):
        sim, fabric, server, client = make_system()
        ClosedWorkload(sim, client, sessions=1, think_time=Constant(1.0)).start()
        sim.run_until(10.5)
        # One session, ~1s cycle -> about 10 requests.
        assert 8 <= client.completed <= 11

    def test_stop(self):
        sim, fabric, server, client = make_system()
        workload = ClosedWorkload(sim, client, sessions=3, think_time=Constant(0.1))
        workload.start()
        sim.run_until(5.0)
        done = client.completed
        workload.stop()
        sim.run_until(10.0)
        # In-flight requests may still complete, but no new ones start.
        assert client.completed <= done + 3

    def test_session_validation(self):
        sim, fabric, server, client = make_system()
        with pytest.raises(SimulationError):
            ClosedWorkload(sim, client, sessions=0)

    def test_default_think_time(self):
        sim, fabric, server, client = make_system()
        workload = ClosedWorkload(sim, client, sessions=2)
        assert isinstance(workload.think_time, Exponential)
