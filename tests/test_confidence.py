"""Steady-state confidence scoring: units, scenarios, engine wiring.

The confidence score (:mod:`repro.core.confidence`) grades how well one
analysis window honours the steady-state assumption pathmap relies on.
Pinned here:

* unit behaviour of the two axes -- burstiness (stability) and
  staleness (recency) -- and the silent-window zero;
* scenario-level behaviour: a steady Poisson class scores high, a flash
  crowd's surge window and a retry storm's burst window score low;
* engine integration: every refresh annotates its
  :class:`~repro.core.pathmap.PathmapResult`, and a class that violates
  the assumption publishes ``EVENT_LOW_CONFIDENCE`` on the EventBus.
"""

import numpy as np
import pytest

from repro.apps.manyclass import build_many_class
from repro.config import PathmapConfig
from repro.core.confidence import (
    DEFAULT_LOW_CONFIDENCE,
    SILENT_REPORT,
    confidence_from_counts,
    timestamp_confidence,
)
from repro.core.engine import E2EProfEngine
from repro.errors import AnalysisError
from repro.obs import EVENT_LOW_CONFIDENCE
from repro.scenarios import get_scenario


class TestUnits:
    def test_uniform_counts_score_high(self):
        report = confidence_from_counts(np.full(32, 40.0), bins_per_block=8)
        assert report.score > 0.9
        assert report.ok

    def test_bursty_counts_lose_stability(self):
        counts = np.full(32, 5.0)
        counts[12:16] = 200.0  # one violent burst mid-window
        report = confidence_from_counts(counts, bins_per_block=8)
        assert report.stability < 0.5
        assert not report.ok

    def test_trailing_silence_loses_recency(self):
        counts = np.full(32, 40.0)
        counts[-8:] = 0.0  # newest block empty: window describes the past
        report = confidence_from_counts(counts, bins_per_block=8)
        assert report.recency == 0.0
        assert report.score == 0.0

    def test_empty_window_is_the_silent_report(self):
        assert confidence_from_counts(np.zeros(32)) == SILENT_REPORT
        assert SILENT_REPORT.score == 0.0
        assert not SILENT_REPORT.ok

    def test_poisson_noise_is_not_penalized(self):
        rng = np.random.default_rng(5)
        counts = rng.poisson(30.0, size=64).astype(float)
        report = confidence_from_counts(counts, bins_per_block=8)
        assert report.stability > 0.8

    def test_timestamp_confidence_validates_inputs(self):
        with pytest.raises(AnalysisError):
            timestamp_confidence([1.0], 5.0, 5.0, num_blocks=4)
        with pytest.raises(AnalysisError):
            timestamp_confidence([1.0], 0.0, 5.0, num_blocks=0)


class TestScenarioWindows:
    """Grade real scenario reference signals through the offline twin."""

    def _reference_stamps(self, run, cls):
        client, front = run.class_keys()[cls]
        return run.topology.collector.edge_timestamps(client, front)

    def test_steady_state_windows_score_high(self):
        run = get_scenario("steady_state").build(seed=0).simulate()
        stamps = self._reference_stamps(run, "browse")
        report = timestamp_confidence(stamps, 10.0, 18.0, num_blocks=4)
        assert report.ok
        assert report.score > 0.7

    def test_flash_crowd_surge_window_scores_low(self):
        run = get_scenario("flash_crowd").build(seed=0).simulate()
        stamps = self._reference_stamps(run, "crowd")
        # [10, 18) straddles the 8x rate step at t=14.
        surge = timestamp_confidence(stamps, 10.0, 18.0, num_blocks=4)
        before = timestamp_confidence(stamps, 4.0, 12.0, num_blocks=4)
        assert not surge.ok
        assert surge.stability < before.stability

    def test_retry_storm_window_scores_low(self):
        run = get_scenario("retry_storm").build(seed=0).simulate()
        stamps = self._reference_stamps(run, "orders")
        # [10, 18) straddles the backend slowdown at t=14 that ignites
        # timeout-driven retries.
        storm = timestamp_confidence(stamps, 10.0, 18.0, num_blocks=4)
        steady = timestamp_confidence(stamps, 4.0, 12.0, num_blocks=4)
        # Retries roughly double the reference rate mid-window: clearly
        # degraded stability, though milder than a flash crowd's 8x step.
        assert storm.score < steady.score
        assert storm.stability < 0.8 < steady.stability

    def test_trough_window_loses_recency(self):
        run = get_scenario("traffic_trough").build(seed=0).simulate()
        stamps = self._reference_stamps(run, "regional")
        # Window ends deep in the [14, 24) trough: old traffic only.
        report = timestamp_confidence(stamps, 10.0, 18.0, num_blocks=4)
        assert report.recency < 0.5
        assert not report.ok


CFG = PathmapConfig(
    window=6.0,
    refresh_interval=2.0,
    quantum=1e-3,
    sampling_window=20e-3,
    max_transaction_delay=1.0,
    min_spike_height=0.10,
)


def _run_engine(quiet_fraction, end_time=16.0):
    deployment = build_many_class(
        classes=4,
        quiet_fraction=quiet_fraction,
        seed=11,
        request_rate=10.0,
        quiet_after=5.0,
        config=CFG,
    )
    engine = E2EProfEngine(CFG)
    engine.attach(deployment.topology)
    deployment.run_until(end_time)
    engine.detach()
    return engine


class TestEngineIntegration:
    def test_steady_refresh_annotates_high_confidence(self):
        engine = _run_engine(quiet_fraction=0.0)
        result = engine.latest_result
        assert result.class_confidence, "refresh must annotate confidence"
        assert engine.confidence_score == result.confidence
        assert engine.confidence_score >= DEFAULT_LOW_CONFIDENCE
        assert all(r.ok for r in engine.latest_confidence.values())
        assert not engine.events.events(kind=EVENT_LOW_CONFIDENCE)

    def test_disappearing_classes_publish_low_confidence_events(self):
        engine = _run_engine(quiet_fraction=0.75)
        low = {
            key for key, r in engine.latest_confidence.items() if not r.ok
        }
        assert low, "quiet classes must lose confidence"
        events = engine.events.events(kind=EVENT_LOW_CONFIDENCE)
        assert events, "low confidence must reach the EventBus"
        flagged = {e.attributes["service_class"] for e in events}
        assert {f"{c}@{f}" for c, f in low} <= flagged
        for event in events:
            assert event.attributes["score"] < DEFAULT_LOW_CONFIDENCE
