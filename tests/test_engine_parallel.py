"""The batched/parallel refresh must change performance, never results.

Three contracts from the batched-refresh design:

* ``workers > 1`` shards the reference-grouped append and the pathmap
  inner loop across a thread pool, but every result -- graphs, stats,
  metrics counters -- is identical to the single-threaded run (numpy
  kernels release the GIL; the shards are disjoint).
* ``batched=True`` (the default) must recover the same service graphs as
  the legacy per-pair engine on the same workload.
* The fixed ``E2EProfEngine._edge_series`` is a pure refactor of the old
  pairwise ``concatenated()`` chain (quadratic in window depth).
"""

import functools

import pytest

import numpy as np

from repro.apps.manyclass import build_many_class
from repro.config import PathmapConfig
from repro.core.engine import E2EProfEngine
from repro.errors import AnalysisError, ConfigError
from repro.obs.exposition import snapshot
from repro.obs.registry import MetricsRegistry

CFG = PathmapConfig(
    window=6.0,
    refresh_interval=2.0,
    quantum=1e-3,
    sampling_window=1e-3,
    max_transaction_delay=1.0,
    min_spike_height=0.10,
)


def run_engine(seed=3, end_time=18.0, classes=6, quiet_fraction=0.5, config=CFG,
               **engine_kwargs):
    """One many-class deployment driven to ``end_time`` with an engine
    attached; returns the engine and its per-refresh samples."""
    deployment = build_many_class(
        classes=classes,
        quiet_fraction=quiet_fraction,
        seed=seed,
        request_rate=10.0,
        quiet_after=5.0,
        config=config,
    )
    engine = E2EProfEngine(config, **engine_kwargs)
    samples = []
    engine.subscribe_metrics(lambda now, result, sample: samples.append(sample))
    engine.attach(deployment.topology)
    deployment.run_until(end_time)
    engine.detach()
    assert engine.latest_result is not None
    return engine, samples


#: Counters whose values must be identical between a serial and a
#: parallel run of the same workload (elapsed-time metrics excluded).
EXACT_COUNTERS = [
    "pathmap_correlations_total",
    "pathmap_spikes_total",
    "pathmap_edges_total",
    "pathmap_nodes_visited_total",
    "correlator_pair_products_total",
    "correlator_skips_total",
    "correlation_cache_hits_total",
    "correlator_evictions_total",
    "engine_blocks_ingested_total",
    "engine_correlator_cache_hits_total",
    "engine_correlator_cache_misses_total",
]


def counter_values(registry):
    snap = snapshot(registry)
    return {
        name: {labels: state["value"] for labels, state in snap[name].items()}
        for name in EXACT_COUNTERS
    }


class TestParallelDeterminism:
    def test_workers_do_not_change_results_or_counters(self):
        serial_engine, serial_samples = run_engine(
            metrics=MetricsRegistry(enabled=True), workers=1
        )
        parallel_engine, parallel_samples = run_engine(
            metrics=MetricsRegistry(enabled=True), workers=3
        )

        serial = serial_engine.latest_result
        parallel = parallel_engine.latest_result
        assert set(serial.graphs) == set(parallel.graphs)
        for key, graph in serial.graphs.items():
            assert parallel.graphs[key].to_dict() == graph.to_dict(), key
        for field in ("correlations", "spikes", "edges_discovered", "graphs",
                      "nodes_visited"):
            assert getattr(serial.stats, field) == getattr(parallel.stats, field)

        # Per-refresh work counts match sample by sample.
        assert len(serial_samples) == len(parallel_samples)
        for s, p in zip(serial_samples, parallel_samples):
            for field in ("time", "blocks_ingested", "correlators",
                          "cache_hits", "cache_misses", "correlations",
                          "spikes", "nodes_visited", "correlator_skips",
                          "correlation_cache_hits"):
                assert getattr(s, field) == getattr(p, field), field

        # And the registries agree to the exact counter value.
        assert counter_values(serial_engine.metrics) == counter_values(
            parallel_engine.metrics
        )

    def test_pool_lifecycle(self):
        engine, _ = run_engine(workers=2, end_time=10.0)
        assert engine.workers == 2
        assert engine._pool is None  # detach() tore the pool down

    def test_workers_knob_plumbing(self):
        assert E2EProfEngine(CFG).workers == 1
        import dataclasses

        cfg = dataclasses.replace(CFG, workers=3)
        assert E2EProfEngine(cfg).workers == 3
        assert E2EProfEngine(cfg, workers=2).workers == 2  # param wins
        with pytest.raises(ConfigError):
            dataclasses.replace(CFG, workers=0)
        with pytest.raises(AnalysisError):
            E2EProfEngine(CFG, workers=0)


class TestBatchedEquivalence:
    def test_batched_engine_matches_legacy_graphs(self):
        batched_engine, batched_samples = run_engine(batched=True)
        legacy_engine, legacy_samples = run_engine(batched=False)

        batched = batched_engine.latest_result
        legacy = legacy_engine.latest_result
        assert set(batched.graphs) == set(legacy.graphs)
        for key, graph in legacy.graphs.items():
            assert batched.graphs[key].edge_set() == graph.edge_set(), key
        assert batched.stats.spikes == legacy.stats.spikes
        assert batched.stats.correlations == legacy.stats.correlations

        # The optimization telemetry separates the modes: the legacy
        # engine never skips; the batched engine skips the quiet edges.
        assert all(s.correlator_skips == 0 for s in legacy_samples)
        assert any(s.correlator_skips > 0 for s in batched_samples)

    def test_batched_matches_legacy_on_smeared_dense_blocks(self):
        # Smearing over many quanta produces near-dense blocks -- the
        # regime where the density dispatch must route rows to the RLE
        # kernel instead of the sparse batch kernel. Results must still
        # be identical to the legacy per-pair engine.
        import dataclasses

        dense_cfg = dataclasses.replace(CFG, sampling_window=50e-3)
        kwargs = dict(seed=4, end_time=14.0, classes=4, quiet_fraction=0.25)
        batched_engine, _ = run_engine(config=dense_cfg, batched=True, **kwargs)
        legacy_engine, _ = run_engine(config=dense_cfg, batched=False, **kwargs)
        batched = batched_engine.latest_result
        legacy = legacy_engine.latest_result
        assert set(batched.graphs) == set(legacy.graphs)
        for key, graph in legacy.graphs.items():
            assert batched.graphs[key].to_dict() == graph.to_dict(), key

    def test_batched_skip_counts_respond_to_quiet_classes(self):
        _, samples = run_engine(batched=True, end_time=20.0)
        # While every class is active (first refreshes) nothing is
        # skipped; once half the classes stop, skips appear.
        assert samples[0].correlator_skips == 0
        assert samples[-1].correlator_skips > 0


class TestEdgeSeriesRefactor:
    def test_single_pass_concat_matches_pairwise_chain(self):
        engine, _ = run_engine(end_time=14.0)
        edges = list(engine._blocks)
        assert edges
        for edge in edges:
            got = engine._edge_series(edge)
            # The pre-refactor implementation: fold the blocks through
            # pairwise DensityTimeSeries.concatenated() calls.
            blocks = [b.to_sparse() for b in engine._blocks[edge]]
            expected = functools.reduce(lambda a, b: a.concatenated(b), blocks)
            assert got.start == expected.start
            assert got.length == expected.length
            assert got.quantum == expected.quantum
            assert np.array_equal(got.indices, expected.indices)
            assert np.array_equal(got.values, expected.values)

    def test_edge_series_missing_edge_raises(self):
        engine, _ = run_engine(end_time=10.0)
        with pytest.raises(AnalysisError):
            engine._edge_series(("nope", "nowhere"))


class TestAdaptiveDeterminism:
    """The adaptive annotations (confidence reports, tuned-parameter
    recommendations) are derived serially from the refresh result, so
    ``workers`` must not change a single one of them."""

    def test_workers_do_not_change_adaptive_outputs(self):
        serial_engine, _ = run_engine(adaptive=True, workers=1)
        parallel_engine, _ = run_engine(adaptive=True, workers=3)

        serial = serial_engine.latest_result
        parallel = parallel_engine.latest_result
        assert set(serial.graphs) == set(parallel.graphs)
        for key, graph in serial.graphs.items():
            assert parallel.graphs[key].to_dict() == graph.to_dict(), key

        # Confidence reports are dataclasses of floats computed from the
        # same block history: bit-identical, class for class.
        assert serial_engine.latest_confidence == parallel_engine.latest_confidence
        assert serial_engine.confidence_score == parallel_engine.confidence_score
        assert serial.confidence == parallel.confidence

        # And the tuner saw identical statistics, so it recommended
        # identical configs.
        assert (
            serial_engine.latest_recommendations
            == parallel_engine.latest_recommendations
        )
        assert serial_engine.latest_recommendations, (
            "adaptive engine must produce recommendations for active classes"
        )

    def test_adaptive_flag_gates_recommendations(self):
        engine, _ = run_engine(adaptive=False, workers=2)
        assert engine.latest_recommendations == {}
        assert engine.latest_confidence  # confidence is always on
