"""Tests for service and client nodes (queueing, routing, fan-out)."""

import numpy as np
import pytest

from repro.errors import SimulationError, TopologyError
from repro.simulation.des import Simulator
from repro.simulation.distributions import Constant
from repro.simulation.network import Fabric
from repro.simulation.nodes import (
    Absorb,
    ClientNode,
    Forward,
    LeafRouter,
    Message,
    Reply,
    Router,
    ServiceNode,
    SinkRouter,
    StaticRouter,
)


def make_system(**ws_kwargs):
    sim = Simulator()
    fabric = Fabric(sim, np.random.default_rng(0), default_latency=Constant(0.001))
    return sim, fabric


class TestMessage:
    def test_rejects_unknown_kind(self):
        with pytest.raises(SimulationError):
            Message(1, "cls", "query", "A", "B", ("A",), 0.0)


class TestDecisions:
    def test_forward_requires_targets(self):
        with pytest.raises(SimulationError):
            Forward()

    def test_static_router_by_class(self):
        router = StaticRouter({"a": "X"}, default="Y")
        sim, fabric = make_system()
        node = ServiceNode(sim, fabric, "N", Constant(0.01), router=router)
        msg_a = Message(1, "a", "request", "C", "N", ("C",), 0.0)
        msg_b = Message(2, "b", "request", "C", "N", ("C",), 0.0)
        assert router.route(node, msg_a).targets == ("X",)
        assert router.route(node, msg_b).targets == ("Y",)

    def test_static_router_without_default_replies(self):
        router = StaticRouter({})
        decision = router.route(None, Message(1, "x", "request", "C", "N", ("C",), 0.0))
        assert isinstance(decision, Reply)

    def test_leaf_and_sink_routers(self):
        msg = Message(1, "x", "request", "C", "N", ("C",), 0.0)
        assert isinstance(LeafRouter().route(None, msg), Reply)
        assert isinstance(SinkRouter().route(None, msg), Absorb)


class TestRequestResponse:
    def test_single_hop_roundtrip(self):
        sim, fabric = make_system()
        server = ServiceNode(sim, fabric, "S", Constant(0.010))
        client = ClientNode(sim, fabric, "C", "cls", "S")
        client.issue_request()
        sim.run_until(1.0)
        assert client.completed == 1
        # Latency = 2 links + service time.
        assert client.latencies()[0] == pytest.approx(0.012, abs=1e-6)

    def test_three_tier_chain(self):
        sim, fabric = make_system()
        ServiceNode(sim, fabric, "DB", Constant(0.010))
        ServiceNode(sim, fabric, "AP", Constant(0.005),
                    router=StaticRouter({}, default="DB"),
                    response_service_time=Constant(0.001))
        ServiceNode(sim, fabric, "WS", Constant(0.002),
                    router=StaticRouter({}, default="AP"),
                    response_service_time=Constant(0.001))
        client = ClientNode(sim, fabric, "C", "cls", "WS")
        client.issue_request()
        sim.run_until(1.0)
        assert client.completed == 1
        # 6 links *1ms + request 2+5+10ms + response processing 1+1ms
        assert client.latencies()[0] == pytest.approx(0.025, abs=1e-6)

    def test_fanout_joins_all_children(self):
        sim, fabric = make_system()
        db = ServiceNode(sim, fabric, "DB", Constant(0.010), workers=10)
        ServiceNode(sim, fabric, "AP", Constant(0.005),
                    router=StaticRouter({}, default=("DB", "DB", "DB")))
        client = ClientNode(sim, fabric, "C", "cls", "AP")
        client.issue_request()
        sim.run_until(1.0)
        assert client.completed == 1
        assert db.serviced_requests == 3

    def test_absorb_terminates_without_response(self):
        sim, fabric = make_system()
        sink = ServiceNode(sim, fabric, "SINK", Constant(0.01), router=SinkRouter())
        client = ClientNode(sim, fabric, "C", "cls", "SINK")
        client.issue_request()
        sim.run_until(1.0)
        assert client.completed == 0
        assert client.outstanding == 1
        assert sink.serviced_requests == 1


class TestQueueing:
    def test_single_worker_serializes(self):
        sim, fabric = make_system()
        server = ServiceNode(sim, fabric, "S", Constant(0.010), workers=1)
        client = ClientNode(sim, fabric, "C", "cls", "S")
        for _ in range(3):
            client.issue_request()
        sim.run_until(1.0)
        lats = sorted(client.latencies())
        # Second and third requests wait behind the first.
        assert lats[0] == pytest.approx(0.012, abs=1e-6)
        assert lats[1] == pytest.approx(0.022, abs=1e-6)
        assert lats[2] == pytest.approx(0.032, abs=1e-6)
        assert server.mean_queue_delay() > 0

    def test_many_workers_parallelize(self):
        sim, fabric = make_system()
        ServiceNode(sim, fabric, "S", Constant(0.010), workers=3)
        client = ClientNode(sim, fabric, "C", "cls", "S")
        for _ in range(3):
            client.issue_request()
        sim.run_until(1.0)
        assert max(client.latencies()) == pytest.approx(0.012, abs=1e-6)

    def test_workers_validation(self):
        sim, fabric = make_system()
        with pytest.raises(SimulationError):
            ServiceNode(sim, fabric, "S", Constant(0.01), workers=0)

    def test_extra_delay_injection(self):
        sim, fabric = make_system()
        server = ServiceNode(sim, fabric, "S", Constant(0.010))
        server.set_extra_delay(lambda now: 0.050)
        client = ClientNode(sim, fabric, "C", "cls", "S")
        client.issue_request()
        sim.run_until(1.0)
        assert client.latencies()[0] == pytest.approx(0.062, abs=1e-6)

    def test_extra_delay_cleared(self):
        sim, fabric = make_system()
        server = ServiceNode(sim, fabric, "S", Constant(0.010))
        server.set_extra_delay(lambda now: 0.050)
        server.set_extra_delay(None)
        client = ClientNode(sim, fabric, "C", "cls", "S")
        client.issue_request()
        sim.run_until(1.0)
        assert client.latencies()[0] == pytest.approx(0.012, abs=1e-6)


class TestObservability:
    def test_service_log(self):
        sim, fabric = make_system()
        server = ServiceNode(sim, fabric, "S", Constant(0.010))
        client = ClientNode(sim, fabric, "C", "cls", "S")
        client.issue_request()
        sim.run_until(1.0)
        log = server.service_log()
        assert len(log) == 1
        start, cls, kind, duration = log[0]
        assert cls == "cls" and kind == "request"
        assert duration == pytest.approx(0.010)

    def test_mean_service_time_by_class(self):
        sim, fabric = make_system()
        server = ServiceNode(sim, fabric, "S", Constant(0.010))
        c1 = ClientNode(sim, fabric, "C1", "a", "S")
        c2 = ClientNode(sim, fabric, "C2", "b", "S")
        c1.issue_request()
        c2.issue_request()
        sim.run_until(1.0)
        assert server.mean_service_time("a") == pytest.approx(0.010)
        assert server.mean_service_time("missing") == 0.0

    def test_client_latency_windowing(self):
        sim, fabric = make_system()
        ServiceNode(sim, fabric, "S", Constant(0.010))
        client = ClientNode(sim, fabric, "C", "cls", "S")
        client.issue_request()
        sim.run_until(0.5)
        sim.schedule(0.0, client.issue_request)
        sim.run_until(1.0)
        assert len(client.latencies()) == 2
        assert len(client.latencies(since=0.4)) == 1

    def test_client_rejects_unknown_response(self):
        sim, fabric = make_system()
        ServiceNode(sim, fabric, "S", Constant(0.01))
        client = ClientNode(sim, fabric, "C", "cls", "S")
        bogus = Message(999, "cls", "response", "S", "C", (), 0.0)
        with pytest.raises(SimulationError):
            client.receive(bogus)

    def test_client_rejects_request_kind(self):
        sim, fabric = make_system()
        ServiceNode(sim, fabric, "S", Constant(0.01))
        client = ClientNode(sim, fabric, "C", "cls", "S")
        bogus = Message(999, "cls", "request", "S", "C", (), 0.0)
        with pytest.raises(SimulationError):
            client.receive(bogus)
