"""Tests for bottleneck identification (the grey nodes of Figures 5/6)."""

import pytest

from repro.core.bottleneck import find_bottlenecks, rank_nodes
from repro.core.service_graph import ServiceGraph
from repro.errors import AnalysisError


def tiered_graph():
    """WS 3ms, TS 8ms, EJB 20ms (cumulative labels encode node delays)."""
    g = ServiceGraph("C", "WS")
    g.add_edge("WS", "TS", [0.003])
    g.add_edge("TS", "EJB", [0.011])
    g.add_edge("EJB", "DB", [0.031])
    g.add_edge("DB", "EJB", [0.041])
    return g


class TestFindBottlenecks:
    def test_dominant_node_flagged(self):
        report = find_bottlenecks(tiered_graph(), threshold_share=0.30)
        assert report.bottlenecks == ["EJB"]
        assert report.dominant() == "EJB"

    def test_shares_sum_to_one(self):
        report = find_bottlenecks(tiered_graph())
        total_share = sum(report.share(n) for n in report.node_delays)
        assert total_share == pytest.approx(1.0)

    def test_low_threshold_flags_more(self):
        report = find_bottlenecks(tiered_graph(), threshold_share=0.05)
        assert set(report.bottlenecks) >= {"EJB", "TS"}
        # Ranked slowest first.
        assert report.bottlenecks[0] == "EJB"

    def test_even_spread_flags_none_at_high_threshold(self):
        g = ServiceGraph("C", "A")
        g.add_edge("A", "B", [0.010])
        g.add_edge("B", "C2", [0.020])
        g.add_edge("C2", "D", [0.030])
        report = find_bottlenecks(g, threshold_share=0.60)
        assert report.bottlenecks == []

    def test_threshold_validation(self):
        with pytest.raises(AnalysisError):
            find_bottlenecks(tiered_graph(), threshold_share=0.0)
        with pytest.raises(AnalysisError):
            find_bottlenecks(tiered_graph(), threshold_share=1.5)

    def test_empty_graph(self):
        g = ServiceGraph("C", "WS")
        report = find_bottlenecks(g)
        assert report.bottlenecks == []
        assert report.total_delay == 0.0
        with pytest.raises(AnalysisError):
            report.dominant()

    def test_share_of_unknown_node(self):
        report = find_bottlenecks(tiered_graph())
        assert report.share("nope") == 0.0


class TestRankNodes:
    def test_ranking_order(self):
        # DB has a return edge, so it gets a 10ms node delay too.
        assert rank_nodes(tiered_graph()) == ["EJB", "DB", "TS", "WS"]

    def test_empty(self):
        assert rank_nodes(ServiceGraph("C", "WS")) == []
