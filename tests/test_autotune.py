"""The self-tuning parameter rules: bounds, monotonicity, fixed points.

The tuner (:mod:`repro.core.autotune`) replaces the paper's hand-picked
(tau, omega, T_u) with pure functions of observed traffic statistics.
Three contracts make it safe to run unattended, pinned here with
hypothesis:

* every tuned parameter stays inside its documented absolute bounds,
  whatever the traffic looks like;
* the tuned quantum is monotone in the inter-arrival scale (at a fixed
  delay bound) -- slower traffic never gets a *finer* quantum -- and
  omega is monotone non-increasing in burstiness;
* tuning is a fixed point: re-tuning a tuned config on the same
  observations returns the identical config (no oscillation when the
  closed loop feeds its own output back).
"""

import dataclasses
import math

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st  # noqa: E402

from repro.config import PathmapConfig
from repro.core.autotune import (
    OMEGA_QUANTA_MAX,
    OMEGA_QUANTA_MIN,
    TAU_MAX,
    TAU_MIN,
    TU_MAX,
    TrafficStats,
    autotune_config,
    observed_delay_bound,
    snap_to_grid,
    snap_up_to_grid,
    tuned_omega_quanta,
    tuned_quantum,
)
from repro.errors import AnalysisError

BASE = PathmapConfig(
    window=8.0,
    refresh_interval=2.0,
    quantum=1e-3,
    sampling_window=50e-3,
    max_transaction_delay=0.5,
    min_spike_height=0.10,
)

stats_strategy = st.builds(
    TrafficStats,
    requests=st.integers(min_value=0, max_value=100_000),
    duration=st.floats(min_value=0.1, max_value=3600.0),
    median_inter_arrival=st.floats(min_value=0.0, max_value=100.0),
    burstiness=st.floats(min_value=0.0, max_value=50.0),
    delay_bound=st.one_of(
        st.none(), st.floats(min_value=1e-5, max_value=200.0)
    ),
)

base_strategy = st.builds(
    lambda refresh, tu: dataclasses.replace(
        BASE,
        window=4.0 * refresh,
        refresh_interval=refresh,
        max_transaction_delay=tu,
    ),
    refresh=st.floats(min_value=0.5, max_value=60.0),
    tu=st.floats(min_value=0.01, max_value=300.0),
)


class TestGrids:
    def test_snap_down_examples(self):
        assert snap_to_grid(1e-3) == 1e-3
        assert snap_to_grid(3e-3) == 2e-3
        assert snap_to_grid(9.99e-3) == 5e-3
        assert snap_to_grid(0.7) == 0.5

    def test_snap_up_examples(self):
        assert snap_up_to_grid(1e-3) == 1e-3
        assert snap_up_to_grid(3e-3) == 5e-3
        assert snap_up_to_grid(0.7) == 1.0
        assert snap_up_to_grid(6.0) == 10.0

    @pytest.mark.parametrize("snap", [snap_to_grid, snap_up_to_grid])
    def test_non_positive_rejected(self, snap):
        with pytest.raises(AnalysisError):
            snap(0.0)
        with pytest.raises(AnalysisError):
            snap(-1.0)

    @given(st.floats(min_value=1e-6, max_value=1e6))
    def test_snap_brackets_value(self, value):
        assert snap_to_grid(value) <= value * (1.0 + 1e-9)
        assert snap_up_to_grid(value) >= value * (1.0 - 1e-9)


class TestBounds:
    @given(stats=stats_strategy, base=base_strategy)
    def test_all_parameters_inside_documented_bounds(self, stats, base):
        tuned = autotune_config(base, stats)
        assert TAU_MIN <= tuned.quantum <= TAU_MAX
        assert tuned.quantum <= base.refresh_interval
        quanta = tuned.sampling_window / tuned.quantum
        assert OMEGA_QUANTA_MIN - 0.5 <= quanta <= OMEGA_QUANTA_MAX + 0.5
        assert tuned.max_transaction_delay <= TU_MAX
        assert tuned.max_transaction_delay >= min(
            tuned.sampling_window, TU_MAX
        )
        # Pacing is operator territory: the tuner never touches it.
        assert tuned.window == base.window
        assert tuned.refresh_interval == base.refresh_interval


class TestMonotonicity:
    @given(
        scale_a=st.floats(min_value=1e-4, max_value=50.0),
        scale_b=st.floats(min_value=1e-4, max_value=50.0),
        delay_bound=st.one_of(
            st.none(), st.floats(min_value=1e-4, max_value=100.0)
        ),
    )
    def test_quantum_monotone_in_inter_arrival_scale(
        self, scale_a, scale_b, delay_bound
    ):
        lo, hi = sorted((scale_a, scale_b))
        tau_lo = tuned_quantum(
            TrafficStats(100, 10.0, lo, 0.0, delay_bound=delay_bound)
        )
        tau_hi = tuned_quantum(
            TrafficStats(100, 10.0, hi, 0.0, delay_bound=delay_bound)
        )
        assert tau_lo <= tau_hi

    @given(
        burst_a=st.floats(min_value=0.0, max_value=50.0),
        burst_b=st.floats(min_value=0.0, max_value=50.0),
    )
    def test_omega_non_increasing_in_burstiness(self, burst_a, burst_b):
        lo, hi = sorted((burst_a, burst_b))
        quiet = tuned_omega_quanta(TrafficStats(100, 10.0, 0.1, lo))
        bursty = tuned_omega_quanta(TrafficStats(100, 10.0, 0.1, hi))
        assert bursty <= quiet


class TestFixedPoint:
    @given(stats=stats_strategy, base=base_strategy)
    def test_retuning_a_tuned_config_is_identity(self, stats, base):
        once = autotune_config(base, stats)
        twice = autotune_config(once, stats)
        assert once == twice


class TestTrafficStats:
    def test_from_timestamps_under_two_stamps_is_zeroed(self):
        stats = TrafficStats.from_timestamps([5.0], 0.0, 10.0)
        assert stats.requests == 1
        assert stats.median_inter_arrival == 0.0
        assert stats.burstiness == 0.0

    def test_from_timestamps_rejects_empty_span(self):
        with pytest.raises(AnalysisError):
            TrafficStats.from_timestamps([1.0], 5.0, 5.0)

    def test_from_timestamps_poisson_like_has_low_burstiness(self):
        stamps = [i * 0.1 for i in range(240)]
        stats = TrafficStats.from_timestamps(stamps, 0.0, 24.0)
        assert stats.median_inter_arrival == pytest.approx(0.1)
        assert stats.burstiness < 1.0

    def test_from_rate_matches_poisson_median(self):
        stats = TrafficStats.from_rate(10.0, 60.0)
        assert stats.median_inter_arrival == pytest.approx(math.log(2) / 10.0)
        assert stats.requests == 600

    def test_zero_inter_arrival_gets_minimum_quantum(self):
        assert tuned_quantum(TrafficStats(0, 10.0, 0.0, 0.0)) == snap_to_grid(
            TAU_MIN
        )


class TestObservedDelayBound:
    class _Spike:
        def __init__(self, height):
            self.height = height

    class _Edge:
        def __init__(self, max_delay, height):
            self.max_delay = max_delay
            self._height = height

        def strongest_spike(self):
            if self._height is None:
                return None
            return TestObservedDelayBound._Spike(self._height)

    class _Graph:
        def __init__(self, edges):
            self.edges = edges

    def test_weak_spikes_never_feed_the_hint(self):
        graph = self._Graph(
            [
                self._Edge(0.9, 0.12),  # barely over detection threshold
                self._Edge(0.4, 0.8),
                self._Edge(0.2, None),  # no spike recorded at all
            ]
        )
        assert observed_delay_bound(graph) == pytest.approx(0.4)

    def test_no_confident_edges_returns_none(self):
        graph = self._Graph([self._Edge(1.5, 0.11)])
        assert observed_delay_bound(graph) is None
        assert observed_delay_bound(self._Graph([])) is None
