"""The public API surface: everything in __all__ importable and documented."""

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_all_public_items_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{name} lacks a docstring"

    def test_version(self):
        assert repro.__version__

    def test_error_hierarchy(self):
        for name in ("ConfigError", "TraceError", "SeriesError",
                     "CorrelationError", "TopologyError", "SimulationError",
                     "AnalysisError"):
            assert issubclass(getattr(repro, name), repro.E2EProfError)

    def test_quickstart_flow(self):
        """The README quickstart must actually run."""
        rubis = repro.build_rubis(dispatch="affinity", seed=7, request_rate=8.0)
        rubis.run_until(35.0)
        config = repro.PathmapConfig(
            window=30.0, refresh_interval=30.0, quantum=1e-3,
            sampling_window=50e-3, max_transaction_delay=2.0,
        )
        result = repro.compute_service_graphs(rubis.window(33.0, config), config)
        graph = result.graph_for("C1")
        assert graph.has_edge("WS", "TS1")
