"""Tests for the paper's stated assumptions and tolerance claims.

Section 3.8: "Pathmap can tolerate small clock skews ... when determining
service paths, but will exhibit some inaccuracy (equal to the amount of
skew) whem computing service delays."

Section 3.1: "Pathmap can, however, accommodate changes in rate across
nodes (e.g., an EJB server issuing multiple data base queries for a
single client requests)."
"""

import pytest

from repro.apps.rubis import build_rubis
from repro.config import PathmapConfig
from repro.core.pathmap import compute_service_graphs
from repro.simulation.distributions import Erlang
from repro.simulation.nodes import StaticRouter
from repro.simulation.topology import Topology

CFG = PathmapConfig(
    window=60.0,
    refresh_interval=60.0,
    quantum=1e-3,
    sampling_window=50e-3,
    max_transaction_delay=2.0,
)


def chain_with_skewed_middle(skew):
    topo = Topology(seed=6)
    topo.add_service_node("DB", Erlang(0.010, k=8), workers=8)
    topo.add_service_node("AP", Erlang(0.008, k=8), workers=8, clock_skew=skew,
                          router=StaticRouter({}, default="DB"))
    topo.add_service_node("WS", Erlang(0.004, k=8), workers=8,
                          router=StaticRouter({}, default="AP"))
    client = topo.add_client("C", "cls", front_end="WS")
    topo.open_workload(client, rate=20.0)
    topo.run_until(62.0)
    return topo


class TestClockSkewTolerance:
    """Section 3.8's exact claim: paths survive small skew, delays shift
    by the skew amount."""

    @pytest.fixture(scope="class")
    def graphs(self):
        out = {}
        for skew in (0.0, 0.030):
            topo = chain_with_skewed_middle(skew)
            result = compute_service_graphs(
                topo.collector.window(CFG, end_time=61.0), CFG
            )
            out[skew] = result.graph_for("C")
        return out

    def test_paths_unaffected_by_skew(self, graphs):
        assert graphs[0.0].edge_set() == graphs[0.030].edge_set()

    def test_delay_into_skewed_node_shifts_by_skew(self, graphs):
        # AP's clock is 30 ms ahead: arrivals at AP appear 30 ms late.
        clean = graphs[0.0].edge("WS", "AP").min_delay
        skewed = graphs[0.030].edge("WS", "AP").min_delay
        assert skewed - clean == pytest.approx(0.030, abs=0.004)

    def test_delay_out_of_skewed_node_cancels(self, graphs):
        # AP -> DB is captured at DB, whose clock is clean: the cumulative
        # label there is unaffected by AP's skew.
        clean = graphs[0.0].edge("AP", "DB").min_delay
        skewed = graphs[0.030].edge("AP", "DB").min_delay
        assert skewed == pytest.approx(clean, abs=0.004)

    def test_node_delay_absorbs_the_skew_error(self, graphs):
        # AP's raw out-minus-in delay shrinks by exactly the skew (the
        # incoming label is inflated, the outgoing label clean): the
        # paper's "inaccuracy equal to the amount of skew". The public
        # node_delay() clamps at zero, so compare the raw difference.
        def raw(graph):
            return graph.outgoing_delay("AP") - graph.incoming_delay("AP")

        assert raw(graphs[0.0]) - raw(graphs[0.030]) == pytest.approx(
            0.030, abs=0.006
        )


class TestFanOutAccommodation:
    """Section 3.1: multiple DB queries per request change the message
    rate across tiers without breaking path discovery."""

    @pytest.fixture(scope="class")
    def result(self):
        rubis = build_rubis(dispatch="affinity", seed=9, request_rate=8.0,
                            db_fanout=3, config=CFG)
        rubis.run_until(62.0)
        return compute_service_graphs(rubis.window(end_time=61.0), CFG)

    def test_path_recovered_despite_rate_change(self, result):
        graph = result.graph_for("C1")
        for edge in (("WS", "TS1"), ("TS1", "EJB1"), ("EJB1", "DS")):
            assert graph.has_edge(*edge)

    def test_db_edge_delay_still_correct(self, result):
        graph = result.graph_for("C1")
        # Cumulative delay at DS ~ WS + TS1 + EJB1 service (31 ms).
        assert graph.edge("EJB1", "DS").min_delay == pytest.approx(0.031, abs=0.006)

    def test_return_path_survives_join(self, result):
        graph = result.graph_for("C1")
        assert graph.has_edge("DS", "EJB1")
        assert graph.has_edge("WS", "C1")
