"""Integration test for Figure 7: online tracking of an injected delay
staircase at one EJB server, with other edges unaffected."""

import numpy as np
import pytest

from repro import ChangeDetector, E2EProfEngine, PathmapConfig, build_rubis
from repro.apps.faults import staircase_delay

pytestmark = pytest.mark.slow

CFG = PathmapConfig(
    window=30.0,
    refresh_interval=30.0,
    quantum=1e-3,
    sampling_window=50e-3,
    max_transaction_delay=2.0,
)

STEP = 0.020
STEP_INTERVAL = 90.0
FAULT_START = 60.0


@pytest.fixture(scope="module")
def staircase_run():
    rubis = build_rubis(dispatch="round_robin", seed=11, request_rate=10.0, config=CFG)
    rubis.ejbs["EJB2"].set_extra_delay(
        staircase_delay(step=STEP, interval=STEP_INTERVAL, start=FAULT_START)
    )
    engine = E2EProfEngine(CFG)
    engine.attach(rubis.topology)
    detector = ChangeDetector(absolute_threshold=0.010, relative_threshold=0.15)
    detector.subscribe_to(engine)
    rubis.run_until(6 * 60.0 + 5)
    return rubis, detector


def ejb2_node_delays(detector):
    """Per-refresh node delay of EJB2 = out-edge minus in-edge delay."""
    key = ("C1", "WS")
    t_in, d_in = detector.delay_series(key, ("TS2", "EJB2"))
    t_out, d_out = detector.delay_series(key, ("EJB2", "DS"))
    n = min(len(d_in), len(d_out))
    return t_out[:n], d_out[:n] - d_in[:n]


class TestStaircaseTracking:
    def test_perturbed_node_tracks_staircase(self, staircase_run):
        _, detector = staircase_run
        times, delays = ejb2_node_delays(detector)
        assert len(delays) >= 10
        # Baseline (~25ms EJB2 service) before the fault.
        baseline = delays[0]
        # Expected injected amount at each refresh time (window center lag
        # of half a window tolerated by using generous bounds).
        for t, measured in zip(times, delays):
            if t < FAULT_START:
                expected = 0.0
            else:
                expected = STEP * (1 + int((t - FAULT_START - 30.0) // STEP_INTERVAL))
            assert measured == pytest.approx(baseline + expected, abs=STEP * 0.9), t

    def test_monotonically_increasing_trend(self, staircase_run):
        _, detector = staircase_run
        _, delays = ejb2_node_delays(detector)
        # Later thirds strictly dominate earlier thirds.
        third = len(delays) // 3
        assert delays[-third:].mean() > delays[third:2 * third].mean() > delays[:third].mean()

    def test_unperturbed_path_stays_flat(self, staircase_run):
        _, detector = staircase_run
        key = ("C1", "WS")
        _, d_in = detector.delay_series(key, ("TS1", "EJB1"))
        _, d_out = detector.delay_series(key, ("EJB1", "DS"))
        n = min(len(d_in), len(d_out))
        ejb1 = d_out[:n] - d_in[:n]
        assert np.ptp(ejb1) < 0.010  # under one step of variation

    def test_change_events_point_at_perturbed_edges(self, staircase_run):
        _, detector = staircase_run
        events = detector.events()
        assert events
        touched = {event.edge for event in events}
        # Every flagged edge lies on the EJB2 branch or downstream of it
        # (cumulative labels shift for everything after the fault).
        unperturbed = {("WS", "TS1"), ("TS1", "EJB1"), ("C1", "WS"), ("C2", "WS")}
        assert not (touched & unperturbed)

    def test_anomaly_detector_alarms_on_degraded_branch(self, staircase_run):
        """The always-on anomaly scorer pages for the EJB2 branch and
        stays quiet on the healthy one."""
        from repro.core.anomaly import AnomalyDetector
        from repro.core.pathmap import PathmapResult, PathmapStats
        from repro.core.service_graph import ServiceGraph

        _, detector = staircase_run
        key = ("C1", "WS")
        anomaly = AnomalyDetector(alpha=0.3, min_std=0.002, warmup=2)
        # Replay the recorded per-edge delay histories refresh by refresh.
        edges = [edge for (ck, edge) in detector.tracked_edges() if ck == key]
        histories = {edge: detector.history(key, edge) for edge in edges}
        refreshes = max(len(h) for h in histories.values())
        for i in range(refreshes):
            graph = ServiceGraph("C1", "WS")
            for edge, history in histories.items():
                if i < len(history) and edge != ("C1", "WS"):
                    graph.add_edge(edge[0], edge[1], [history[i].delay])
            anomaly.record(float(i), PathmapResult({key: graph}, PathmapStats()))
        alarmed_edges = {edge for (_, edge) in anomaly.active_alarms()}
        assert any("EJB2" in edge[0] or "EJB2" in edge[1] for edge in alarmed_edges)
        assert not any(
            edge in {("WS", "TS1"), ("TS1", "EJB1"), ("EJB1", "DS")}
            for edge in alarmed_edges
        )

    def test_front_end_average_moves_less_than_fault(self, staircase_run):
        """Paper: 'Since more than half of the requests take the low
        latency path, the average delay does not change by the same
        amount.'"""
        rubis, detector = staircase_run
        _, ejb2 = ejb2_node_delays(detector)
        fault_growth = ejb2[-1] - ejb2[0]
        client = rubis.clients["bidding"]
        early = np.mean(client.latencies(since=0)[:200])
        late_lats = client.latencies(since=5 * 60.0)
        late = np.mean(late_lats)
        average_growth = late - early
        assert average_growth < fault_growth
        assert average_growth > 0  # but it does move
