"""Tests for service-graph interchange exports."""

import pytest

from repro.analysis.graph_export import adjacency, to_edge_list, to_networkx
from repro.core.service_graph import ServiceGraph


def tiered_graph():
    g = ServiceGraph("C", "WS")
    g.add_edge("WS", "TS", [0.003])
    g.add_edge("TS", "DB", [0.011, 0.020])
    return g


class TestNetworkx:
    def test_structure_preserved(self):
        nx = pytest.importorskip("networkx")
        g = to_networkx(tiered_graph())
        assert isinstance(g, nx.DiGraph)
        assert set(g.nodes) == {"C", "WS", "TS", "DB"}
        assert g.has_edge("WS", "TS")
        assert g.graph["client"] == "C"

    def test_attributes(self):
        pytest.importorskip("networkx")
        g = to_networkx(tiered_graph())
        assert g.nodes["C"]["role"] == "client"
        assert g.nodes["WS"]["role"] == "root"
        assert g.nodes["TS"]["role"] == "service"
        assert g.edges["TS", "DB"]["delays"] == [0.011, 0.020]
        assert g.edges["TS", "DB"]["delay"] == 0.011
        assert g.nodes["TS"]["delay"] == pytest.approx(0.008)

    def test_downstream_analysis_works(self):
        nx = pytest.importorskip("networkx")
        g = to_networkx(tiered_graph())
        path = nx.shortest_path(g, "C", "DB")
        assert path == ["C", "WS", "TS", "DB"]


class TestFlatExports:
    def test_edge_list_sorted_by_delay(self):
        triples = to_edge_list(tiered_graph())
        assert triples[0] == ("C", "WS", 0.0)
        assert triples[-1] == ("TS", "DB", 0.011)
        delays = [d for (_, _, d) in triples]
        assert delays == sorted(delays)

    def test_adjacency(self):
        adj = adjacency(tiered_graph())
        assert adj["C"] == ["WS"]
        assert adj["WS"] == ["TS"]
        assert adj["DB"] == []
