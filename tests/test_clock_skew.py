"""Tests for clock-skew estimation (Section 3.8)."""

import pytest

from repro.config import PathmapConfig
from repro.core.clock_skew import estimate_clock_skew
from repro.errors import AnalysisError
from repro.simulation.distributions import Constant, Erlang
from repro.simulation.nodes import StaticRouter
from repro.simulation.topology import Topology

CFG = PathmapConfig(
    window=30.0,
    refresh_interval=30.0,
    quantum=1e-3,
    sampling_window=5e-3,
    max_transaction_delay=1.0,
)

LINK = 0.0002  # the default constant link latency


def skewed_topology(ws_skew=0.0, db_skew=0.0, seed=0):
    topo = Topology(seed=seed)
    topo.add_service_node("DB", Erlang(0.010, k=8), workers=8, clock_skew=db_skew)
    topo.add_service_node(
        "WS", Erlang(0.004, k=8), workers=8, clock_skew=ws_skew,
        router=StaticRouter({}, default="DB"),
    )
    client = topo.add_client("C", "cls", front_end="WS")
    topo.open_workload(client, rate=30.0)
    topo.run_until(31.0)
    return topo


class TestEstimation:
    def test_no_skew(self):
        topo = skewed_topology()
        estimate = estimate_clock_skew(
            topo.collector, "WS", "DB", CFG, end_time=30.0, network_delay=LINK
        )
        assert estimate.skew == pytest.approx(0.0, abs=0.002)

    def test_destination_ahead(self):
        topo = skewed_topology(db_skew=0.050)
        estimate = estimate_clock_skew(
            topo.collector, "WS", "DB", CFG, end_time=30.0, network_delay=LINK
        )
        assert estimate.skew == pytest.approx(0.050, abs=0.003)

    def test_destination_behind(self):
        topo = skewed_topology(db_skew=-0.050)
        estimate = estimate_clock_skew(
            topo.collector, "WS", "DB", CFG, end_time=30.0, network_delay=LINK
        )
        assert estimate.skew == pytest.approx(-0.050, abs=0.003)

    def test_relative_skew_of_two_skewed_nodes(self):
        topo = skewed_topology(ws_skew=0.030, db_skew=0.010)
        estimate = estimate_clock_skew(
            topo.collector, "WS", "DB", CFG, end_time=30.0, network_delay=LINK
        )
        assert estimate.skew == pytest.approx(-0.020, abs=0.003)

    def test_raw_lag_includes_network_delay(self):
        topo = skewed_topology(db_skew=0.050)
        estimate = estimate_clock_skew(
            topo.collector, "WS", "DB", CFG, end_time=30.0, network_delay=0.0
        )
        assert estimate.raw_lag == pytest.approx(0.050 + LINK, abs=0.003)

    def test_single_sided_edge_rejected(self):
        topo = skewed_topology()
        # C is untraced: edge C->WS exists only on the WS side.
        with pytest.raises(AnalysisError):
            estimate_clock_skew(topo.collector, "C", "WS", CFG, end_time=30.0)

    def test_result_fields(self):
        topo = skewed_topology(db_skew=0.020)
        estimate = estimate_clock_skew(
            topo.collector, "WS", "DB", CFG, end_time=30.0, network_delay=LINK
        )
        assert estimate.src == "WS"
        assert estimate.dst == "DB"
        assert estimate.network_delay == LINK
        assert estimate.spike_height > 0.5
