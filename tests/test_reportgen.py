"""Tests for the diagnosis report generator."""

import json

import pytest

from repro.analysis.reportgen import report_json, report_text, summarize_graph, summarize_result
from repro.core.pathmap import PathmapResult, PathmapStats
from repro.core.service_graph import ServiceGraph


def sample_result():
    g1 = ServiceGraph("C1", "WS")
    g1.add_edge("WS", "TS", [0.003])
    g1.add_edge("TS", "DB", [0.020])
    g1.add_edge("WS", "C1", [0.045])
    g2 = ServiceGraph("C2", "WS")
    g2.add_edge("WS", "DB", [0.010])
    stats = PathmapStats(correlations=7, spikes=4, edges_discovered=4, graphs=2,
                         elapsed_seconds=0.12)
    return PathmapResult({("C1", "WS"): g1, ("C2", "WS"): g2}, stats)


class TestSummaries:
    def test_graph_summary_structure(self):
        summary = summarize_graph(sample_result().graph_for("C1"))
        assert summary["client"] == "C1"
        assert summary["end_to_end_latency"] == pytest.approx(0.045)
        assert summary["paths"][0]["nodes"] == ["C1", "WS", "TS", "DB"]
        assert "TS" in summary["node_delays"]
        assert summary["bottlenecks"]  # TS dominates (17 ms of 20)

    def test_result_summary_covers_all_classes(self):
        summary = summarize_result(sample_result())
        assert set(summary["classes"]) == {"C1@WS", "C2@WS"}
        assert summary["stats"]["correlations"] == 7

    def test_json_roundtrip(self):
        payload = json.loads(report_json(sample_result()))
        assert payload["classes"]["C1@WS"]["root"] == "WS"

    def test_text_report_readable(self):
        text = report_text(sample_result())
        assert "E2EProf diagnosis report" in text
        assert "C1@WS" in text
        assert "bottleneck" in text
        assert "ms" in text

    def test_bare_graph_summary(self):
        # Only the implicit client edge: zero latency, one trivial path.
        g = ServiceGraph("C", "WS")
        summary = summarize_graph(g)
        assert summary["end_to_end_latency"] == 0.0
        assert summary["paths"][0]["nodes"] == ["C", "WS"]

    def test_journal_roundtrip(self, tmp_path):
        from repro.analysis.reportgen import RefreshJournal, read_journal

        path = tmp_path / "journal.jsonl"
        journal = RefreshJournal(str(path))
        journal(60.0, sample_result())
        journal(120.0, sample_result())
        assert journal.entries == 2
        entries = read_journal(str(path))
        assert [e["time"] for e in entries] == [60.0, 120.0]
        assert "C1@WS" in entries[0]["classes"]

    def test_journal_truncates_previous_session(self, tmp_path):
        from repro.analysis.reportgen import RefreshJournal, read_journal

        path = tmp_path / "journal.jsonl"
        RefreshJournal(str(path))(60.0, sample_result())
        RefreshJournal(str(path))  # new session truncates
        assert read_journal(str(path)) == []

    def test_journal_on_live_engine(self, tmp_path):
        from repro import E2EProfEngine, PathmapConfig, build_rubis
        from repro.analysis.reportgen import RefreshJournal, read_journal

        cfg = PathmapConfig(window=20.0, refresh_interval=20.0, quantum=1e-3,
                            sampling_window=50e-3, max_transaction_delay=2.0,
                            min_spike_height=0.10)
        rubis = build_rubis(dispatch="affinity", seed=2, request_rate=10.0, config=cfg)
        engine = E2EProfEngine(cfg)
        engine.attach(rubis.topology)
        path = tmp_path / "live.jsonl"
        RefreshJournal(str(path)).subscribe_to(engine)
        rubis.run_until(65.0)
        entries = read_journal(str(path))
        assert len(entries) == 3
        assert "C1@WS" in entries[-1]["classes"]

    def test_on_real_analysis(self, affinity_result):
        summary = summarize_result(affinity_result)
        c1 = summary["classes"]["C1@WS"]
        assert "EJB1" in c1["bottlenecks"]
        assert 0.03 < c1["end_to_end_latency"] < 0.09
        # Serializes cleanly.
        json.dumps(summary)
