"""Robustness and degenerate-input behaviour across the stack."""

import pytest

from repro import E2EProfEngine, PathmapConfig, build_rubis, compute_service_graphs
from repro.simulation.distributions import Constant, Erlang
from repro.simulation.nodes import StaticRouter
from repro.simulation.topology import Topology
from repro.tracing.collector import TraceCollector
from repro.tracing.records import CaptureRecord

CFG = PathmapConfig(
    window=30.0,
    refresh_interval=30.0,
    quantum=1e-3,
    sampling_window=20e-3,
    max_transaction_delay=2.0,
)


class TestSilentSystems:
    def test_engine_survives_silent_refreshes(self):
        """No traffic at all: refreshes produce empty results, not crashes."""
        topo = Topology(seed=0)
        topo.add_service_node("WS", Constant(0.01))
        topo.add_client("C", "cls", front_end="WS")  # client never sends
        engine = E2EProfEngine(CFG)
        engine.attach(topo)
        topo.run_until(95.0)
        assert engine.latest_result is not None
        assert engine.latest_result.graphs == {}

    def test_engine_handles_traffic_starting_late(self):
        topo = Topology(seed=0)
        topo.add_service_node("DB", Erlang(0.010, k=8), workers=8)
        topo.add_service_node("WS", Erlang(0.004, k=8), workers=8,
                              router=StaticRouter({}, default="DB"))
        client = topo.add_client("C", "cls", front_end="WS")
        engine = E2EProfEngine(CFG)
        engine.attach(topo)
        topo.run_until(65.0)  # two silent refreshes
        workload = topo.open_workload(client, rate=20.0)
        topo.run_until(155.0)
        graph = engine.latest_result.graph_for("C")
        assert graph.has_edge("WS", "DB")

    def test_collector_window_with_no_records(self):
        collector = TraceCollector(client_nodes=["C"])
        window = collector.window(CFG, end_time=30.0)
        assert window.front_end_nodes() == []
        result = compute_service_graphs(window, CFG)
        assert result.graphs == {}


class TestOddTraffic:
    def test_one_way_client_traffic_only(self):
        """Requests with no responses (e.g. fire-and-forget logging)."""
        collector = TraceCollector(client_nodes=["C"])
        for i in range(200):
            t = 0.1 * i
            collector.ingest(CaptureRecord(t, "C", "LOG", "LOG"))
        result = compute_service_graphs(
            collector.window(CFG, end_time=20.0), CFG
        )
        graph = result.graph_for("C")
        assert graph.edge_set() == {("C", "LOG")}

    def test_duplicate_timestamps(self):
        """Packets captured at the identical instant must not crash the
        density computation or correlation."""
        collector = TraceCollector(client_nodes=["C"])
        for i in range(50):
            t = 0.5 * i
            for _ in range(4):  # four packets at the same instant
                collector.ingest(CaptureRecord(t, "C", "S", "S"))
                collector.ingest(CaptureRecord(t + 0.010, "S", "D", "D"))
        result = compute_service_graphs(
            collector.window(CFG, end_time=26.0), CFG
        )
        graph = result.graph_for("C")
        assert graph.has_edge("S", "D")
        assert graph.edge("S", "D").min_delay == pytest.approx(0.010, abs=0.003)

    def test_closed_workload_rubis_paths(self):
        """The paper's actual workload shape: 30 httperf sessions."""
        rubis = build_rubis(dispatch="affinity", seed=19, workload="closed",
                            sessions=30, request_rate=15.0, config=CFG)
        rubis.run_until(35.0)
        result = compute_service_graphs(rubis.window(end_time=33.0), CFG)
        graph = result.graph_for("C1")
        for edge in (("WS", "TS1"), ("TS1", "EJB1"), ("EJB1", "DS")):
            assert graph.has_edge(*edge)

    def test_very_low_rate_graceful(self):
        """A handful of requests: either a clean graph or a clean miss,
        never an exception."""
        rubis = build_rubis(dispatch="affinity", seed=3, request_rate=0.2, config=CFG)
        rubis.run_until(35.0)
        result = compute_service_graphs(rubis.window(end_time=33.0), CFG)
        for graph in result.graphs.values():
            for edge in graph.edges:
                assert edge.delays  # any reported edge carries delays


class TestNonSteadyWindows:
    """Empty analysis windows must degrade to silence, never to stale
    paths or exceptions (trough / disappearing-class regression)."""

    def test_adaptive_trough_reports_silence_not_stale_paths(self):
        from repro.scenarios import get_scenario
        from repro.scenarios.runner import analyze_adaptive

        run = get_scenario("traffic_trough").build(seed=0)
        score = analyze_adaptive(run)  # must not raise anywhere
        # The [16, 24) window sits entirely inside the [14, 24) trough:
        # the regional class sent nothing, so the correct answer is an
        # empty graph -- and any claimed edge would be a stale path.
        in_trough = [
            cell
            for cell in score.cells
            if cell.service_class == "regional" and cell.window_end == 24.0
        ]
        assert in_trough, "the trough window must have been graded"
        for cell in in_trough:
            assert cell.edges == [], "stale path survived the trough"
            assert cell.f1 == 1.0
        # The co-tenant steady class keeps its paths through the trough.
        steady_cells = [
            cell
            for cell in score.cells
            if cell.service_class == "steady" and cell.window_end == 24.0
        ]
        assert steady_cells and steady_cells[0].recall == 1.0

    def test_engine_survives_every_class_disappearing(self):
        from repro.apps.manyclass import build_many_class

        deployment = build_many_class(
            classes=3,
            quiet_fraction=1.0,  # every class stops at quiet_after
            seed=2,
            request_rate=10.0,
            quiet_after=5.0,
            config=CFG,
        )
        engine = E2EProfEngine(CFG, adaptive=True)
        engine.attach(deployment.topology)
        deployment.run_until(95.0)  # window slides fully past all traffic
        engine.detach()
        result = engine.latest_result
        assert result is not None
        # All-quiet window: no graphs, zero confidence, and the tuner
        # recommends nothing rather than extrapolating from nothing.
        assert not result.graphs
        assert engine.confidence_score == 0.0
        assert engine.latest_recommendations == {}
