"""Tests for the random variate distributions."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation.distributions import (
    Constant,
    Empirical,
    Erlang,
    Exponential,
    LogNormal,
    TruncatedNormal,
    Uniform,
)

ALL = [
    Constant(0.01),
    Exponential(0.01),
    Uniform(0.0, 0.02),
    TruncatedNormal(0.01, 0.002),
    LogNormal(0.01, 0.5),
    Erlang(0.01, k=4),
    Empirical([0.005, 0.01, 0.015]),
]


class TestContracts:
    @pytest.mark.parametrize("dist", ALL, ids=lambda d: type(d).__name__)
    def test_samples_non_negative(self, dist):
        rng = np.random.default_rng(0)
        samples = [dist.sample(rng) for _ in range(500)]
        assert all(s >= 0 for s in samples)

    @pytest.mark.parametrize("dist", ALL, ids=lambda d: type(d).__name__)
    def test_sample_mean_matches_declared_mean(self, dist):
        rng = np.random.default_rng(1)
        samples = np.array([dist.sample(rng) for _ in range(8000)])
        assert samples.mean() == pytest.approx(dist.mean(), rel=0.12, abs=1e-4)

    @pytest.mark.parametrize("dist", ALL, ids=lambda d: type(d).__name__)
    def test_deterministic_under_seed(self, dist):
        a = [dist.sample(np.random.default_rng(7)) for _ in range(3)]
        b = [dist.sample(np.random.default_rng(7)) for _ in range(3)]
        assert a == b


class TestValidation:
    def test_constant_negative(self):
        with pytest.raises(SimulationError):
            Constant(-1.0)

    def test_exponential_bad_mean(self):
        with pytest.raises(SimulationError):
            Exponential(0.0)

    def test_uniform_bad_bounds(self):
        with pytest.raises(SimulationError):
            Uniform(0.02, 0.01)
        with pytest.raises(SimulationError):
            Uniform(-0.01, 0.01)

    def test_truncated_normal_bad_sigma(self):
        with pytest.raises(SimulationError):
            TruncatedNormal(0.01, -0.1)

    def test_lognormal_bad_params(self):
        with pytest.raises(SimulationError):
            LogNormal(0.0)
        with pytest.raises(SimulationError):
            LogNormal(0.01, -0.5)

    def test_erlang_bad_params(self):
        with pytest.raises(SimulationError):
            Erlang(0.0)
        with pytest.raises(SimulationError):
            Erlang(0.01, k=0)

    def test_empirical_empty(self):
        with pytest.raises(SimulationError):
            Empirical([])

    def test_empirical_negative(self):
        with pytest.raises(SimulationError):
            Empirical([0.1, -0.1])


class TestShapes:
    def test_erlang_has_lower_variance_than_exponential(self):
        rng = np.random.default_rng(2)
        exp = np.array([Exponential(0.01).sample(rng) for _ in range(4000)])
        erl = np.array([Erlang(0.01, k=8).sample(rng) for _ in range(4000)])
        assert erl.std() < exp.std()

    def test_lognormal_is_heavy_tailed(self):
        rng = np.random.default_rng(3)
        samples = np.array([LogNormal(0.01, 1.0).sample(rng) for _ in range(4000)])
        assert samples.max() > 5 * samples.mean()

    def test_truncated_normal_clips(self):
        rng = np.random.default_rng(4)
        dist = TruncatedNormal(0.0001, 0.01)
        samples = [dist.sample(rng) for _ in range(200)]
        assert min(samples) == 0.0

    def test_empirical_resamples_only_observed(self):
        rng = np.random.default_rng(5)
        values = {0.005, 0.01, 0.015}
        dist = Empirical(sorted(values))
        assert all(dist.sample(rng) in values for _ in range(100))
