"""Tests for the topology builder and ground truth recorder."""

import math

import pytest

from repro.config import PathmapConfig
from repro.errors import TopologyError
from repro.simulation.distributions import Constant
from repro.simulation.nodes import StaticRouter
from repro.simulation.topology import Topology


def tiny_topology(seed=0):
    topo = Topology(seed=seed)
    topo.add_service_node("DB", Constant(0.010))
    topo.add_service_node("WS", Constant(0.002), router=StaticRouter({}, default="DB"))
    client = topo.add_client("C", "cls", front_end="WS")
    return topo, client


class TestConstruction:
    def test_client_requires_existing_front_end(self):
        topo = Topology()
        with pytest.raises(TopologyError):
            topo.add_client("C", "cls", front_end="nope")

    def test_tracers_attached_to_service_nodes_only(self):
        topo, client = tiny_topology()
        assert topo.fabric.tracer("WS") is not None
        assert topo.fabric.tracer("DB") is not None
        assert topo.fabric.tracer("C") is None

    def test_clients_registered_with_collector(self):
        topo, client = tiny_topology()
        assert topo.collector.clients == {"C"}

    def test_node_lookup(self):
        topo, _ = tiny_topology()
        assert topo.node("DB").node_id == "DB"
        with pytest.raises(TopologyError):
            topo.node("nope")


class TestTraceStreaming:
    def test_collector_receives_server_side_captures_only(self):
        topo, client = tiny_topology()
        client.issue_request()
        topo.run_until(1.0)
        # 4 messages (C->WS, WS->DB, DB->WS, WS->C); each traced endpoint
        # captures once per message it touches: WS 4x, DB 2x.
        assert topo.collector.record_count() == 6

    def test_collector_timestamps_use_skewed_clocks(self):
        topo = Topology(seed=0)
        topo.add_service_node("WS", Constant(0.002), clock_skew=1.0)
        client = topo.add_client("C", "cls", front_end="WS")
        client.issue_request()
        topo.run_until(1.0)
        stamps = topo.collector.edge_timestamps("C", "WS")
        assert stamps[0] > 0.9  # skew applied

    def test_run_advances_clock(self):
        topo, _ = tiny_topology()
        topo.run_until(3.5)
        assert topo.now == 3.5


class TestWorkloadWiring:
    def test_open_workload(self):
        topo, client = tiny_topology()
        topo.open_workload(client, rate=100.0)
        topo.run_until(5.0)
        assert client.completed > 300

    def test_closed_workload(self):
        topo, client = tiny_topology()
        topo.closed_workload(client, sessions=2, think_time=Constant(0.1))
        topo.run_until(5.0)
        assert client.completed > 50
        assert client.outstanding <= 2

    def test_deterministic_traces(self):
        def run(seed):
            topo, client = tiny_topology(seed=seed)
            topo.open_workload(client, rate=50.0)
            topo.run_until(3.0)
            return topo.collector.edge_timestamps("C", "WS").tolist()

        assert run(3) == run(3)
        assert run(3) != run(4)


class TestGroundTruth:
    def test_edge_delays_match_constants(self):
        topo, client = tiny_topology()
        truth = topo.ground_truth("WS")
        topo.open_workload(client, rate=50.0)
        topo.run_until(5.0)
        # WS->DB arrival = WS service (2ms) + link (0.2ms).
        mean = truth.mean_edge_delay("cls", ("WS", "DB"))
        assert mean == pytest.approx(0.0022, abs=2e-4)

    def test_traversed_edges(self):
        topo, client = tiny_topology()
        truth = topo.ground_truth("WS")
        topo.open_workload(client, rate=50.0)
        topo.run_until(5.0)
        edges = truth.traversed_edges("cls")
        assert set(edges) == {("C", "WS"), ("WS", "DB"), ("DB", "WS"), ("WS", "C")}
        # Every request touches every edge once.
        assert len(set(edges.values())) == 1

    def test_unknown_class_is_nan(self):
        topo, client = tiny_topology()
        truth = topo.ground_truth("WS")
        topo.run_until(1.0)
        assert math.isnan(truth.mean_edge_delay("nope", ("WS", "DB")))

    def test_request_count(self):
        topo, client = tiny_topology()
        truth = topo.ground_truth("WS")
        client.issue_request()
        topo.run_until(1.0)
        assert truth.request_count() == 1
        assert truth.request_count("cls") == 1
        assert truth.request_count("other") == 0

    def test_ground_truth_idempotent_attach(self):
        topo, _ = tiny_topology()
        assert topo.ground_truth("WS") is topo.ground_truth("WS")

    def test_time_windowed_delays(self):
        topo, client = tiny_topology()
        truth = topo.ground_truth("WS")
        topo.open_workload(client, rate=50.0)
        topo.run_until(5.0)
        all_delays = truth.edge_delays("cls", ("WS", "DB"))
        late = truth.edge_delays("cls", ("WS", "DB"), since=2.5)
        assert 0 < len(late) < len(all_delays)
