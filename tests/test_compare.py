"""Tests for ground-truth comparison metrics."""

import pytest

from repro.analysis.compare import (
    EdgeSetComparison,
    compare_node_delays,
)
from repro.core.service_graph import ServiceGraph


class TestEdgeSetComparison:
    def test_exact_match(self):
        comparison = EdgeSetComparison(
            true_edges={("A", "B"), ("B", "C")},
            found_edges={("A", "B"), ("B", "C")},
        )
        assert comparison.exact
        assert comparison.precision == 1.0
        assert comparison.recall == 1.0
        assert comparison.missing == set()
        assert comparison.spurious == set()

    def test_missing_edge(self):
        comparison = EdgeSetComparison(
            true_edges={("A", "B"), ("B", "C")},
            found_edges={("A", "B")},
        )
        assert not comparison.exact
        assert comparison.recall == 0.5
        assert comparison.precision == 1.0
        assert comparison.missing == {("B", "C")}

    def test_spurious_edge(self):
        comparison = EdgeSetComparison(
            true_edges={("A", "B")},
            found_edges={("A", "B"), ("X", "Y")},
        )
        assert comparison.precision == 0.5
        assert comparison.spurious == {("X", "Y")}

    def test_empty_sets(self):
        comparison = EdgeSetComparison(true_edges=set(), found_edges=set())
        assert comparison.precision == 1.0
        assert comparison.recall == 1.0
        assert comparison.exact


class TestNodeDelayComparison:
    def graph(self):
        g = ServiceGraph("C", "WS")
        g.add_edge("WS", "TS", [0.0030])
        g.add_edge("TS", "DB", [0.0110])
        return g

    def test_within_tolerance(self):
        out = compare_node_delays(self.graph(), {"WS": 0.003, "TS": 0.008})
        assert out["WS"][2] and out["TS"][2]

    def test_out_of_tolerance(self):
        out = compare_node_delays(self.graph(), {"TS": 0.004}, tolerance=0.10)
        got, want, ok = out["TS"]
        assert got == pytest.approx(0.008)
        assert not ok

    def test_skips_unmeasured_nodes(self):
        out = compare_node_delays(self.graph(), {"DB": 0.010, "GHOST": 0.001})
        assert out == {}
