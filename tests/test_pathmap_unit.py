"""Unit tests for the pathmap DFS (Algorithm 1) over synthetic windows.

These bypass the simulator entirely: edge signals are constructed
analytically (a request signal plus shifted copies downstream), so path
recovery can be asserted precisely.
"""

from typing import Dict, List

import numpy as np
import pytest

from repro.config import PathmapConfig
from repro.core.pathmap import Pathmap, TraceWindow, compute_service_graphs
from repro.core.timeseries import DensityTimeSeries, build_density_series
from repro.errors import AnalysisError


class SyntheticWindow(TraceWindow):
    """A TraceWindow built from an explicit edge -> timestamp map."""

    def __init__(self, edges: Dict[tuple, List[float]], clients, config, length=4000):
        self._edges = edges
        self._clients = set(clients)
        self._config = config
        self._length = length

    def front_end_nodes(self):
        return sorted(
            {dst for (src, dst) in self._edges if src in self._clients}
        )

    def clients_of(self, node):
        return sorted(
            src for (src, dst) in self._edges if dst == node and src in self._clients
        )

    def destinations_of(self, node):
        return sorted(dst for (src, dst) in self._edges if src == node)

    def is_client(self, node):
        return node in self._clients

    def edge_series(self, src, dst):
        return build_density_series(
            self._edges[(src, dst)],
            quantum=self._config.quantum,
            sampling_quanta=self._config.sampling_quanta,
            window_start=0,
            window_length=self._length,
        )


CFG = PathmapConfig(
    window=4.0,
    refresh_interval=4.0,
    quantum=1e-3,
    sampling_window=5e-3,
    max_transaction_delay=0.5,
)


def poisson_arrivals(rng, rate, duration):
    count = rng.poisson(rate * duration)
    return np.sort(rng.uniform(0, duration, count))


@pytest.fixture(scope="module")
def arrivals():
    return poisson_arrivals(np.random.default_rng(0), rate=60.0, duration=4.0)


def shifted(stamps, delay):
    return list(np.asarray(stamps) + delay)


class TestLinearChain:
    def test_recovers_chain_and_delays(self, arrivals):
        edges = {
            ("C", "A"): list(arrivals),
            ("A", "B"): shifted(arrivals, 0.030),
            ("B", "D"): shifted(arrivals, 0.070),
        }
        window = SyntheticWindow(edges, {"C"}, CFG)
        result = compute_service_graphs(window, CFG)
        graph = result.graph_for("C")
        assert graph.edge_set() == {("C", "A"), ("A", "B"), ("B", "D")}
        assert graph.edge("A", "B").min_delay == pytest.approx(0.030, abs=0.004)
        assert graph.edge("B", "D").min_delay == pytest.approx(0.070, abs=0.004)
        assert graph.node_delay("B") == pytest.approx(0.040, abs=0.006)

    def test_stats_counters(self, arrivals):
        edges = {
            ("C", "A"): list(arrivals),
            ("A", "B"): shifted(arrivals, 0.030),
        }
        result = compute_service_graphs(SyntheticWindow(edges, {"C"}, CFG), CFG)
        assert result.stats.graphs == 1
        assert result.stats.correlations >= 1
        assert result.stats.edges_discovered == 1
        assert result.stats.elapsed_seconds > 0


class TestBranching:
    def test_unrelated_branch_excluded(self, arrivals):
        rng = np.random.default_rng(99)
        other = poisson_arrivals(rng, rate=60.0, duration=4.0)
        edges = {
            ("C", "A"): list(arrivals),
            ("A", "B"): shifted(arrivals, 0.030),
            # A also talks to E, but with traffic unrelated to C's requests.
            ("A", "E"): list(other),
        }
        graph = compute_service_graphs(SyntheticWindow(edges, {"C"}, CFG), CFG).graph_for("C")
        assert graph.has_edge("A", "B")
        assert not graph.has_edge("A", "E")

    def test_two_classes_get_separate_graphs(self, arrivals):
        rng = np.random.default_rng(5)
        arrivals2 = poisson_arrivals(rng, rate=60.0, duration=4.0)
        edges = {
            ("C1", "A"): list(arrivals),
            ("C2", "A"): list(arrivals2),
            ("A", "B1"): shifted(arrivals, 0.020),
            ("A", "B2"): shifted(arrivals2, 0.025),
        }
        result = compute_service_graphs(SyntheticWindow(edges, {"C1", "C2"}, CFG), CFG)
        g1 = result.graph_for("C1")
        g2 = result.graph_for("C2")
        assert g1.has_edge("A", "B1") and not g1.has_edge("A", "B2")
        assert g2.has_edge("A", "B2") and not g2.has_edge("A", "B1")

    def test_multiple_spikes_on_shared_edge(self, arrivals):
        # C's requests reach D along two branches with different delays:
        # the shared edge B->D carries both copies.
        edges = {
            ("C", "A"): list(arrivals),
            ("A", "B"): shifted(arrivals, 0.030) + shifted(arrivals, 0.120),
        }
        graph = compute_service_graphs(SyntheticWindow(edges, {"C"}, CFG), CFG).graph_for("C")
        delays = graph.edge("A", "B").delays
        assert len(delays) >= 2
        assert min(abs(d - 0.030) for d in delays) < 0.005
        assert min(abs(d - 0.120) for d in delays) < 0.005


class TestReturnPath:
    def test_response_edge_labelled_but_not_recursed(self, arrivals):
        edges = {
            ("C", "A"): list(arrivals),
            ("A", "B"): shifted(arrivals, 0.030),
            ("B", "A"): shifted(arrivals, 0.080),
            ("A", "C"): shifted(arrivals, 0.090),
        }
        graph = compute_service_graphs(SyntheticWindow(edges, {"C"}, CFG), CFG).graph_for("C")
        assert graph.edge("A", "C").min_delay == pytest.approx(0.090, abs=0.004)
        # The client is a leaf: nothing was explored beyond it.
        assert graph.successors("C") == ["A"]


class TestRobustness:
    def test_silent_edge_yields_no_false_positive(self, arrivals):
        edges = {
            ("C", "A"): list(arrivals),
            ("A", "B"): [],  # edge exists administratively but is silent
        }
        window = SyntheticWindow(edges, {"C"}, CFG)
        graph = compute_service_graphs(window, CFG).graph_for("C")
        assert not graph.has_edge("A", "B")

    def test_sparse_traffic_below_overlap_floor(self):
        cfg = CFG
        stamps = [1.0, 2.0]  # far too few requests
        edges = {("C", "A"): stamps, ("A", "B"): shifted(stamps, 0.030)}
        graph = compute_service_graphs(SyntheticWindow(edges, {"C"}, cfg), cfg).graph_for("C")
        # With only two requests the correlation may or may not clear the
        # spike threshold, but the analysis must not crash and the graph
        # must at least contain the client edge.
        assert graph.has_edge("C", "A")

    def test_graph_for_unknown_client(self, arrivals):
        edges = {("C", "A"): list(arrivals)}
        result = compute_service_graphs(SyntheticWindow(edges, {"C"}, CFG), CFG)
        with pytest.raises(AnalysisError):
            result.graph_for("nope")

    def test_parallel_analysis_identical_to_serial(self, arrivals):
        """Section 3.7: parallelizing ServiceRoot's inner loop must not
        change results."""
        rng = np.random.default_rng(5)
        arrivals2 = poisson_arrivals(rng, rate=60.0, duration=4.0)
        arrivals3 = poisson_arrivals(rng, rate=60.0, duration=4.0)
        edges = {
            ("C1", "A"): list(arrivals),
            ("C2", "A"): list(arrivals2),
            ("C3", "A"): list(arrivals3),
            ("A", "B1"): shifted(arrivals, 0.020),
            ("A", "B2"): shifted(arrivals2, 0.025),
            ("A", "B3"): shifted(arrivals3, 0.030),
        }
        window = SyntheticWindow(edges, {"C1", "C2", "C3"}, CFG)
        serial = compute_service_graphs(window, CFG, workers=1)
        parallel = compute_service_graphs(window, CFG, workers=4)
        assert set(serial.graphs) == set(parallel.graphs)
        for key, graph in serial.graphs.items():
            other = parallel.graphs[key]
            assert graph.edge_set() == other.edge_set()
            for edge in graph.edges:
                assert other.edge(edge.src, edge.dst).delays == edge.delays
        assert parallel.stats.correlations == serial.stats.correlations

    def test_all_methods_agree_on_structure(self, arrivals):
        edges = {
            ("C", "A"): list(arrivals),
            ("A", "B"): shifted(arrivals, 0.030),
            ("B", "D"): shifted(arrivals, 0.070),
        }
        window = SyntheticWindow(edges, {"C"}, CFG)
        graphs = {}
        for method in ("dense", "sparse", "rle", "fft"):
            result = Pathmap(CFG, method=method).analyze(window)
            graphs[method] = result.graph_for("C").edge_set()
        assert len({frozenset(g) for g in graphs.values()}) == 1
