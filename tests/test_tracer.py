"""Tests for the per-node tracer (Section 3.6)."""

import pytest

from repro.config import PathmapConfig
from repro.errors import TraceError
from repro.tracing.tracer import Tracer

CFG = PathmapConfig(
    window=1.0, refresh_interval=0.5, quantum=1e-3, sampling_window=5e-3,
    max_transaction_delay=0.5,
)


class TestObservation:
    def test_observes_own_packets_only(self):
        tracer = Tracer("A")
        tracer.observe(1.0, "A", "B")
        tracer.observe(2.0, "C", "A")
        with pytest.raises(TraceError):
            tracer.observe(3.0, "X", "Y")
        assert tracer.packet_count == 2

    def test_clock_skew_shifts_timestamps(self):
        tracer = Tracer("A", clock_skew=0.25)
        record = tracer.observe(1.0, "A", "B")
        assert record.timestamp == 1.25
        assert tracer.timestamps("A", "B") == [1.25]

    def test_edges_listing(self):
        tracer = Tracer("A")
        tracer.observe(1.0, "A", "B")
        tracer.observe(1.0, "A", "C")
        assert set(tracer.edges()) == {("A", "B"), ("A", "C")}

    def test_timestamps_sorted(self):
        tracer = Tracer("A")
        tracer.observe(2.0, "A", "B")
        tracer.observe(1.0, "A", "B")
        assert tracer.timestamps("A", "B") == [1.0, 2.0]

    def test_reset(self):
        tracer = Tracer("A")
        tracer.observe(1.0, "A", "B")
        tracer.reset()
        assert tracer.packet_count == 0
        assert tracer.edges() == []


class TestStreaming:
    def test_flush_block_produces_rle_series(self):
        tracer = Tracer("A")
        for t in (0.100, 0.101, 0.300):
            tracer.observe(t, "A", "B")
        blocks = tracer.flush_block(CFG, window_start_quantum=0, block_quanta=500)
        series = blocks[("A", "B")]
        assert series.start == 0
        assert series.length == 500
        assert series.nnz > 0
        # Density mass: 3 messages x 5-quantum boxcar.
        assert series.energy() == pytest.approx(15.0)

    def test_flush_drops_old_timestamps(self):
        tracer = Tracer("A")
        tracer.observe(0.100, "A", "B")
        tracer.flush_block(CFG, 0, 500)
        # Original timestamp is gone (0.1 < 0.5 - omega).
        assert tracer.timestamps("A", "B") == []

    def test_flush_keeps_boundary_margin(self):
        tracer = Tracer("A")
        tracer.observe(0.499, "A", "B")  # within omega of the block end
        tracer.flush_block(CFG, 0, 500)
        assert tracer.timestamps("A", "B") == [0.499]

    def test_consecutive_blocks_cover_boundary_consistently(self):
        # A message near a block boundary contributes to boxcars in both
        # blocks, exactly as a single-window computation would.
        from repro.core.timeseries import build_density_series

        tracer = Tracer("A")
        stamps = [0.498, 0.4995, 0.5005, 0.502]
        for t in stamps:
            tracer.observe(t, "A", "B")
        block1 = tracer.flush_block(CFG, 0, 500)[("A", "B")]
        block2 = tracer.flush_block(CFG, 500, 500)[("A", "B")]
        combined = block1.to_sparse().concatenated(block2.to_sparse())
        whole = build_density_series(stamps, CFG.quantum, CFG.sampling_quanta, 0, 1000)
        assert combined == whole

    def test_flush_empty_edge(self):
        tracer = Tracer("A")
        tracer.observe(0.1, "A", "B")
        tracer.flush_block(CFG, 0, 500)
        blocks = tracer.flush_block(CFG, 500, 500)
        assert blocks[("A", "B")].num_runs == 0
