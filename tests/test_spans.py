"""Tests for repro.obs.spans: the off-by-default span tracer."""

import threading

import pytest

from repro.obs.spans import NULL_SPAN, NULL_TRACER, Span, SpanTracer


class TestDisabledTracer:
    def test_disabled_by_default(self):
        assert SpanTracer().enabled is False
        assert NULL_TRACER.enabled is False

    def test_disabled_span_is_the_shared_null_span(self):
        tracer = SpanTracer()
        assert tracer.span("a") is NULL_SPAN
        assert tracer.span("b", attr=1) is NULL_SPAN

    def test_null_span_supports_full_surface(self):
        with NULL_SPAN as span:
            span.set_attribute("k", "v")
            span.add_event(object())
        assert span is NULL_SPAN

    def test_disabled_tracer_records_nothing(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            pass
        assert len(tracer) == 0
        assert tracer.current_span() is None
        assert tracer.add_event(object()) is False

    def test_null_span_does_not_swallow_exceptions(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError):
            with tracer.span("a"):
                raise ValueError("boom")


class TestEnabledTracer:
    def test_records_name_attributes_and_duration(self):
        tracer = SpanTracer(enabled=True)
        with tracer.span("engine.refresh", refresh=3) as span:
            span.set_attribute("blocks", 7)
        (finished,) = tracer.drain()
        assert finished.name == "engine.refresh"
        assert finished.attributes == {"refresh": 3, "blocks": 7}
        assert finished.end is not None
        assert finished.duration >= 0.0
        assert finished.error is None

    def test_nesting_links_parent_and_child(self):
        tracer = SpanTracer(enabled=True)
        with tracer.span("root") as root:
            assert tracer.current_span() is root
            with tracer.span("child") as child:
                assert tracer.current_span() is child
                assert child.parent_id == root.span_id
            assert tracer.current_span() is root
        assert tracer.current_span() is None
        spans = tracer.drain()
        # Children finish first.
        assert [s.name for s in spans] == ["child", "root"]
        assert spans[1].parent_id is None

    def test_span_ids_are_unique(self):
        tracer = SpanTracer(enabled=True)
        for _ in range(10):
            with tracer.span("s"):
                pass
        ids = [s.span_id for s in tracer.drain()]
        assert len(set(ids)) == len(ids)

    def test_exception_recorded_on_span_and_reraised(self):
        tracer = SpanTracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        (span,) = tracer.drain()
        assert span.error == "ValueError: boom"
        assert span.end is not None

    def test_drain_clears(self):
        tracer = SpanTracer(enabled=True)
        with tracer.span("a"):
            pass
        assert len(tracer) == 1
        assert len(tracer.drain()) == 1
        assert len(tracer) == 0
        assert tracer.drain() == []

    def test_duration_zero_while_open(self):
        tracer = SpanTracer(enabled=True)
        ctx = tracer.span("open")
        span = ctx.__enter__()
        assert span.duration == 0.0
        ctx.__exit__(None, None, None)
        assert span.duration > 0.0

    def test_to_dict_is_json_able(self):
        import json

        tracer = SpanTracer(enabled=True)
        with tracer.span("a", edge="WS->DB"):
            pass
        (span,) = tracer.drain()
        doc = json.loads(json.dumps(span.to_dict()))
        assert doc["name"] == "a"
        assert doc["attributes"] == {"edge": "WS->DB"}
        assert doc["parent_id"] is None

    def test_max_finished_bounds_retention(self):
        tracer = SpanTracer(enabled=True, max_finished=5)
        for i in range(12):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer) == 5
        assert tracer.dropped == 7
        assert [s.name for s in tracer.drain()] == [f"s{i}" for i in range(7, 12)]

    def test_enable_disable_round_trip(self):
        tracer = SpanTracer()
        tracer.enable()
        with tracer.span("on"):
            pass
        tracer.disable()
        with tracer.span("off"):
            pass
        assert [s.name for s in tracer.drain()] == ["on"]


class TestThreading:
    def test_stacks_are_thread_local(self):
        tracer = SpanTracer(enabled=True)
        seen = {}
        barrier = threading.Barrier(4)

        def work(i):
            with tracer.span(f"outer{i}") as outer:
                barrier.wait()
                with tracer.span(f"inner{i}") as inner:
                    seen[i] = (outer, inner, tracer.current_span())

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i, (outer, inner, current) in seen.items():
            assert inner.parent_id == outer.span_id
            assert current is inner
            assert outer.thread_id == inner.thread_id
        spans = tracer.drain()
        assert len(spans) == 8
        assert len({s.span_id for s in spans}) == 8
        assert len({s.thread_id for s in spans}) == 4

    def test_no_spans_lost_under_contention(self):
        tracer = SpanTracer(enabled=True)

        def hammer(i):
            for k in range(200):
                with tracer.span(f"t{i}.{k}"):
                    pass

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer) == 1200
        assert tracer.dropped == 0


class TestSpanRepr:
    def test_repr_open_and_closed(self):
        span = Span("x", 1, None, 0, 0.0, {})
        assert "open" in repr(span)
        span.end = 0.5
        assert "ms" in repr(span)
