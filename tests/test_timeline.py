"""Tests for the Chrome trace exporter and the timeline renderers."""

import json

import pytest

from repro.config import PathmapConfig
from repro.core.engine import E2EProfEngine
from repro.analysis.timeline import (
    render_timeline_ascii,
    render_timeline_svg,
    write_timeline_svg,
)
from repro.obs.export import chrome_trace, write_chrome_trace
from repro.simulation.distributions import Erlang
from repro.simulation.nodes import StaticRouter
from repro.simulation.topology import Topology

CFG = PathmapConfig(
    window=20.0,
    refresh_interval=10.0,
    quantum=1e-3,
    sampling_window=10e-3,
    max_transaction_delay=1.0,
)


def chain_topology(seed=0):
    topo = Topology(seed=seed)
    topo.add_service_node("DB", Erlang(0.010, k=8), workers=8)
    topo.add_service_node(
        "WS", Erlang(0.004, k=8), workers=8, router=StaticRouter({}, default="DB")
    )
    client = topo.add_client("C", "cls", front_end="WS")
    topo.open_workload(client, rate=20.0)
    return topo


@pytest.fixture(scope="module")
def traced_dump():
    engine = E2EProfEngine(CFG)
    engine.tracer.enable()
    engine.attach(chain_topology())
    engine._topology.run_until(25.0)
    return engine.dump_flight_record()


EMPTY_DUMP = {"capacity": 8, "recorded": 0, "frames": []}


class TestChromeTrace:
    def test_top_level_shape(self, traced_dump):
        doc = chrome_trace(traced_dump)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        json.dumps(doc)

    def test_span_events_are_complete_events_in_microseconds(self, traced_dump):
        doc = chrome_trace(traced_dump)
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert complete
        for event in complete:
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert event["pid"] == 1
            assert isinstance(event["tid"], int)
        names = {e["name"] for e in complete}
        assert {"engine.refresh", "engine.pathmap", "engine.correlators"} <= names
        # Categories come from the span-name prefix.
        refresh = next(e for e in complete if e["name"] == "engine.refresh")
        assert refresh["cat"] == "engine"

    def test_nesting_preserved_by_timestamps(self, traced_dump):
        doc = chrome_trace(traced_dump)
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        roots = [e for e in complete if e["name"] == "engine.refresh"]
        children = [e for e in complete if e["name"] == "engine.pathmap"]
        assert roots and children
        # Every pathmap span nests inside some refresh span's interval.
        for child in children:
            assert any(
                root["ts"] <= child["ts"]
                and child["ts"] + child["dur"] <= root["ts"] + root["dur"] + 1
                for root in roots
            )

    def test_metadata_names_process_and_threads(self, traced_dump):
        doc = chrome_trace(traced_dump)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in meta)
        assert any(e["name"] == "thread_name" for e in meta)

    def test_empty_dump_yields_metadata_only(self):
        doc = chrome_trace(EMPTY_DUMP)
        assert all(e["ph"] == "M" for e in doc["traceEvents"])

    def test_write_chrome_trace(self, traced_dump, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(traced_dump, str(path))
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == count
        assert count > 0


class TestAsciiTimeline:
    def test_renders_headers_bars_and_durations(self, traced_dump):
        text = render_timeline_ascii(traced_dump)
        assert "refresh 0 @ t=10.000" in text
        assert "engine.refresh" in text
        assert "engine.pathmap" in text
        # Bars and duration suffixes are present.
        assert "#" in text
        assert "s" in text

    def test_last_limits_frames(self, traced_dump):
        text = render_timeline_ascii(traced_dump, last=1)
        assert "refresh 0" not in text
        assert "refresh 1" in text

    def test_empty_dump(self):
        assert "empty" in render_timeline_ascii(EMPTY_DUMP)


class TestSvgTimeline:
    def test_well_formed_svg(self, traced_dump):
        svg = render_timeline_svg(traced_dump)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert "engine.refresh" in svg
        assert "<rect" in svg

    def test_write_timeline_svg(self, traced_dump, tmp_path):
        path = tmp_path / "timeline.svg"
        write_timeline_svg(traced_dump, str(path))
        assert path.read_text().startswith("<svg")
