"""Tests for the service-graph data structures (Sections 3.1-3.2)."""

import pytest

from repro.core.service_graph import ServiceEdge, ServiceGraph, ServicePath
from repro.core.spikes import Spike
from repro.errors import AnalysisError


def simple_chain():
    """C -> WS -> TS -> DB with cumulative delays 0 / 5ms / 20ms."""
    g = ServiceGraph("C", "WS")
    g.add_edge("WS", "TS", [0.005])
    g.add_edge("TS", "DB", [0.020])
    return g


class TestConstruction:
    def test_client_edge_exists_implicitly(self):
        g = ServiceGraph("C", "WS")
        assert g.has_edge("C", "WS")
        assert g.edge("C", "WS").delays == [0.0]

    def test_add_edge_creates_nodes(self):
        g = simple_chain()
        assert g.nodes == {"C", "WS", "TS", "DB"}

    def test_add_edge_requires_delays(self):
        g = ServiceGraph("C", "WS")
        with pytest.raises(AnalysisError):
            g.add_edge("WS", "TS", [])

    def test_re_adding_edge_merges_delays(self):
        g = ServiceGraph("C", "WS")
        g.add_edge("WS", "TS", [0.005])
        g.add_edge("WS", "TS", [0.009, 0.005])
        assert g.edge("WS", "TS").delays == [0.005, 0.009]

    def test_edge_lookup_missing(self):
        g = simple_chain()
        with pytest.raises(AnalysisError):
            g.edge("WS", "DB")

    def test_successors_predecessors(self):
        g = simple_chain()
        assert g.successors("WS") == ["TS"]
        assert g.predecessors("TS") == ["WS"]

    def test_contains_and_len(self):
        g = simple_chain()
        assert "TS" in g
        assert "X" not in g
        assert len(g) == 4


class TestEdge:
    def test_min_max_delay(self):
        e = ServiceEdge("A", "B", [0.003, 0.010])
        assert e.min_delay == 0.003
        assert e.max_delay == 0.010

    def test_empty_delays_raise(self):
        e = ServiceEdge("A", "B", [])
        with pytest.raises(AnalysisError):
            _ = e.min_delay

    def test_strongest_spike(self):
        spikes = [Spike(3, 0.003, 0.5, 0.1), Spike(10, 0.010, 0.9, 0.2)]
        e = ServiceEdge("A", "B", [0.003, 0.010], spikes)
        assert e.strongest_spike().lag == 10

    def test_strongest_spike_empty(self):
        assert ServiceEdge("A", "B", [0.003]).strongest_spike() is None


class TestDelayAttribution:
    def test_node_delay_is_out_minus_in(self):
        g = simple_chain()
        assert g.node_delay("TS") == pytest.approx(0.015)
        assert g.node_delay("WS") == pytest.approx(0.005)

    def test_client_has_no_delay(self):
        assert simple_chain().node_delay("C") is None

    def test_leaf_has_no_delay(self):
        assert simple_chain().node_delay("DB") is None

    def test_return_edge_to_client_not_counted_as_outgoing(self):
        g = simple_chain()
        g.add_edge("WS", "C", [0.040])  # the response edge
        # WS's outgoing delay should still be the request edge (5ms),
        # not the 40ms response edge.
        assert g.node_delay("WS") == pytest.approx(0.005)

    def test_node_delays_never_negative(self):
        g = ServiceGraph("C", "WS")
        g.add_edge("WS", "TS", [0.010])
        g.add_edge("TS", "DB", [0.008])  # noisy inversion
        assert g.node_delay("TS") == 0.0

    def test_end_to_end_delay(self):
        g = simple_chain()
        g.add_edge("WS", "C", [0.045])
        assert g.end_to_end_delay() == pytest.approx(0.045)

    def test_node_delays_map(self):
        delays = simple_chain().node_delays()
        assert set(delays) == {"WS", "TS"}


class TestPaths:
    def test_single_chain_path(self):
        paths = simple_chain().paths()
        assert len(paths) == 1
        assert paths[0].nodes == ("C", "WS", "TS", "DB")
        assert paths[0].cumulative_delays == (0.0, 0.005, 0.020)
        assert paths[0].total_delay == 0.020

    def test_hop_delays(self):
        path = simple_chain().paths()[0]
        assert path.hop_delays() == pytest.approx((0.0, 0.005, 0.015))

    def test_branching_paths(self):
        g = ServiceGraph("C", "WS")
        g.add_edge("WS", "TS1", [0.005])
        g.add_edge("WS", "TS2", [0.006])
        g.add_edge("TS1", "DB", [0.015])
        g.add_edge("TS2", "DB", [0.016])
        paths = g.paths()
        assert len(paths) == 2
        assert {p.nodes for p in paths} == {
            ("C", "WS", "TS1", "DB"),
            ("C", "WS", "TS2", "DB"),
        }

    def test_causality_filter(self):
        # Edge TS->DB with delay *smaller* than arrival at TS cannot
        # continue the path.
        g = ServiceGraph("C", "WS")
        g.add_edge("WS", "TS", [0.010])
        g.add_edge("TS", "DB", [0.002])
        paths = g.paths()
        assert paths[0].nodes == ("C", "WS", "TS")

    def test_cycle_unrolled_once(self):
        # Response edges create a cycle; each node is visited once per path.
        g = simple_chain()
        g.add_edge("DB", "TS", [0.030])
        g.add_edge("TS", "WS", [0.038])
        g.add_edge("WS", "C", [0.042])
        paths = g.paths()
        assert len(paths) == 1
        assert paths[0].nodes == ("C", "WS", "TS", "DB")

    def test_max_paths_cap(self):
        g = ServiceGraph("C", "WS")
        for i in range(5):
            g.add_edge("WS", f"T{i}", [0.001 * (i + 1)])
        assert len(g.paths(max_paths=3)) <= 3

    def test_service_path_validation(self):
        with pytest.raises(AnalysisError):
            ServicePath(("A",), ())
        with pytest.raises(AnalysisError):
            ServicePath(("A", "B"), (0.0, 0.1))

    def test_str_rendering(self):
        s = str(simple_chain().paths()[0])
        assert "C" in s and "DB" in s and "ms" in s


class TestSerialization:
    def test_roundtrip(self):
        g = simple_chain()
        g.add_edge("WS", "C", [0.045])
        restored = ServiceGraph.from_dict(g.to_dict())
        assert restored.edge_set() == g.edge_set()
        for edge in g.edges:
            assert restored.edge(edge.src, edge.dst).delays == edge.delays
        assert restored.client == g.client
        assert restored.root == g.root
