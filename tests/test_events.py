"""Tests for repro.obs.events: the diagnostic event bus."""

import json

from repro.obs.events import (
    EVENT_ANOMALY,
    EVENT_CHANGE,
    DiagnosticEvent,
    EventBus,
)
from repro.obs.spans import SpanTracer


class TestPublish:
    def test_publish_builds_typed_timestamped_event(self):
        bus = EventBus()
        event = bus.publish(EVENT_CHANGE, 42.0, edge="WS->DB", magnitude=0.01)
        assert isinstance(event, DiagnosticEvent)
        assert event.kind == EVENT_CHANGE
        assert event.time == 42.0
        assert event.monotonic > 0.0
        assert event.attributes == {"edge": "WS->DB", "magnitude": 0.01}
        assert event.span_id is None
        assert bus.published == 1
        assert len(bus) == 1

    def test_to_dict_json_able(self):
        bus = EventBus()
        event = bus.publish(EVENT_ANOMALY, 1.0, score=5.2)
        doc = json.loads(json.dumps(event.to_dict()))
        assert doc["kind"] == EVENT_ANOMALY
        assert doc["attributes"]["score"] == 5.2

    def test_event_attaches_to_current_span(self):
        tracer = SpanTracer(enabled=True)
        bus = EventBus(tracer=tracer)
        with tracer.span("engine.refresh") as span:
            event = bus.publish(EVENT_CHANGE, 1.0)
        assert event.span_id == span.span_id
        (finished,) = tracer.drain()
        assert finished.events == [event]

    def test_no_attachment_when_tracing_disabled(self):
        tracer = SpanTracer()  # disabled
        bus = EventBus(tracer=tracer)
        with tracer.span("noop"):
            event = bus.publish(EVENT_CHANGE, 1.0)
        assert event.span_id is None

    def test_history_is_bounded(self):
        bus = EventBus(capacity=3)
        for i in range(7):
            bus.publish("k", float(i))
        assert len(bus) == 3
        assert [e.time for e in bus.events()] == [4.0, 5.0, 6.0]
        assert bus.published == 7


class TestQueries:
    def test_events_filters_by_kind(self):
        bus = EventBus()
        bus.publish("a", 1.0)
        bus.publish("b", 2.0)
        bus.publish("a", 3.0)
        assert [e.time for e in bus.events("a")] == [1.0, 3.0]
        assert len(bus.events()) == 3

    def test_events_since_slices_by_monotonic_stamp(self):
        bus = EventBus()
        first = bus.publish("k", 1.0)
        mark = first.monotonic
        second = bus.publish("k", 2.0)
        sliced = bus.events_since(mark)
        assert sliced == [second]
        assert bus.events_since(second.monotonic) == []


class TestSubscribers:
    def test_subscribers_receive_events(self):
        bus = EventBus()
        got = []
        bus.subscribe(got.append)
        event = bus.publish("k", 1.0)
        assert got == [event]

    def test_raising_subscriber_is_isolated_and_counted(self):
        bus = EventBus()
        got = []

        def bad(event):
            raise RuntimeError("subscriber bug")

        bus.subscribe(bad)
        bus.subscribe(got.append)
        event = bus.publish("k", 1.0)
        # Publish survived, later subscriber still ran, error was counted.
        assert got == [event]
        assert bus.subscriber_errors == 1
        assert bus.published == 1


class TestAdaptiveEventKinds:
    def test_low_confidence_and_rewindow_kinds_are_exported(self):
        from repro.obs import EVENT_LOW_CONFIDENCE, EVENT_REWINDOW

        assert EVENT_LOW_CONFIDENCE == "low_confidence"
        assert EVENT_REWINDOW == "rewindow"

    def test_low_confidence_event_round_trips_through_the_bus(self):
        from repro.obs import EVENT_LOW_CONFIDENCE

        bus = EventBus()
        bus.publish(
            EVENT_LOW_CONFIDENCE,
            12.0,
            service_class="C1@WS",
            score=0.21,
            stability=0.3,
            recency=0.7,
            threshold=0.5,
        )
        (event,) = bus.events(kind=EVENT_LOW_CONFIDENCE)
        assert event.attributes["service_class"] == "C1@WS"
        assert json.dumps(event.to_dict())  # JSON-able like every event
