"""Outage detection: a crashed server's path disappears from the online
service graphs and reappears on recovery (the paper's 'service outages'
motivation, Section 1)."""

import pytest

from repro import E2EProfEngine, PathmapConfig, build_rubis
from repro.simulation.distributions import Constant
from repro.simulation.des import Simulator
from repro.simulation.network import Fabric
from repro.simulation.nodes import ClientNode, ServiceNode

import numpy as np

CFG = PathmapConfig(
    window=30.0,
    refresh_interval=30.0,
    quantum=1e-3,
    sampling_window=50e-3,
    max_transaction_delay=2.0,
)


class TestCrashSemantics:
    def make(self):
        sim = Simulator()
        fabric = Fabric(sim, np.random.default_rng(0), default_latency=Constant(0.001))
        server = ServiceNode(sim, fabric, "S", Constant(0.01), workers=1)
        client = ClientNode(sim, fabric, "C", "cls", "S")
        return sim, server, client

    def test_failed_node_drops_messages(self):
        sim, server, client = self.make()
        server.fail()
        client.issue_request()
        sim.run_until(1.0)
        assert client.completed == 0
        assert server.dropped_messages == 1
        assert server.serviced_requests == 0

    def test_queued_work_lost_at_crash(self):
        sim, server, client = self.make()
        for _ in range(3):
            client.issue_request()
        sim.schedule_at(0.005, server.fail)  # one in service, two queued
        sim.run_until(1.0)
        assert client.completed == 0
        assert server.dropped_messages == 3  # 2 queued + 1 in flight

    def test_recovery_restores_service(self):
        sim, server, client = self.make()
        server.fail()
        client.issue_request()
        sim.run_until(0.5)
        server.recover()
        sim.schedule(0.0, client.issue_request)
        sim.run_until(1.5)
        assert client.completed == 1
        assert not server.failed


class TestOutageVisibleToPathmap:
    def test_path_disappears_and_returns(self):
        rubis = build_rubis(dispatch="affinity", seed=4, request_rate=10.0, config=CFG)
        engine = E2EProfEngine(CFG)
        engine.attach(rubis.topology)
        snapshots = {}
        engine.subscribe(lambda now, res: snapshots.__setitem__(now, res))

        rubis.run_until(32.0)                # healthy window [0, 30)
        rubis.ejbs["EJB1"].fail()            # outage
        rubis.run_until(92.0)                # window [60, 90) is all-outage
        rubis.ejbs["EJB1"].recover()         # repair
        rubis.run_until(155.0)               # window [120, 150) is healthy

        healthy = snapshots[30.0].graph_for("C1")
        assert healthy.has_edge("EJB1", "DS")

        outage = snapshots[90.0].graph_for("C1")
        # Traffic still reaches TS1, but nothing comes out of EJB1.
        assert not outage.has_edge("EJB1", "DS")

        recovered = snapshots[150.0].graph_for("C1")
        assert recovered.has_edge("EJB1", "DS")
        assert recovered.has_edge("WS", "C1")

    def test_comment_class_unaffected_by_bidding_outage(self):
        rubis = build_rubis(dispatch="affinity", seed=4, request_rate=10.0, config=CFG)
        engine = E2EProfEngine(CFG)
        engine.attach(rubis.topology)
        rubis.run_until(35.0)
        rubis.ejbs["EJB1"].fail()
        rubis.run_until(65.0)
        comment = engine.latest_result.graph_for("C2")
        assert comment.has_edge("EJB2", "DS")
        assert comment.has_edge("WS", "C2")
