"""Tests for the incremental sliding-window correlator (Section 3.4).

Central invariant: after any sequence of appends, the incremental result
equals a from-scratch sparse correlation over the concatenated window.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.correlation import correlate_sparse
from repro.core.incremental import IncrementalCorrelator
from repro.core.rle import rle_encode
from repro.core.timeseries import DensityTimeSeries
from repro.errors import CorrelationError, SeriesError


def block(dense, start, quantum=1e-3):
    return DensityTimeSeries.from_dense(dense, start, quantum)


def batch_reference(x_blocks, y_blocks, max_lag):
    xw = x_blocks[0]
    for b in x_blocks[1:]:
        xw = xw.concatenated(b)
    yw = y_blocks[0]
    for b in y_blocks[1:]:
        yw = yw.concatenated(b)
    return correlate_sparse(xw, yw, max_lag)


class TestEquivalence:
    @given(
        st.lists(
            st.tuples(
                st.lists(st.sampled_from([0.0, 0.0, 1.0, 2.0]), min_size=8, max_size=8),
                st.lists(st.sampled_from([0.0, 0.0, 1.0, 2.0]), min_size=8, max_size=8),
            ),
            min_size=1,
            max_size=8,
        ),
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_incremental_equals_batch(self, blocks, max_lag, num_blocks):
        inc = IncrementalCorrelator(max_lag=max_lag, num_blocks=num_blocks, quantum=1e-3)
        xs, ys = [], []
        for i, (dx, dy) in enumerate(blocks):
            xb = block(dx, i * 8)
            yb = block(dy, i * 8)
            xs.append(xb)
            ys.append(yb)
            inc.append(xb, yb)
            ref = batch_reference(xs[-num_blocks:], ys[-num_blocks:], max_lag)
            got = inc.correlation()
            assert got.degenerate == ref.degenerate
            if not ref.degenerate:
                np.testing.assert_allclose(got.values, ref.values, atol=1e-8)

    def test_rle_blocks(self):
        rng = np.random.default_rng(0)
        inc = IncrementalCorrelator(max_lag=30, num_blocks=3, quantum=1e-3)
        xs, ys = [], []
        for i in range(6):
            dx = rng.integers(0, 3, 20).astype(float)
            dy = rng.integers(0, 3, 20).astype(float)
            xb, yb = block(dx, i * 20), block(dy, i * 20)
            xs.append(xb)
            ys.append(yb)
            inc.append(rle_encode(xb), rle_encode(yb))
            ref = batch_reference(xs[-3:], ys[-3:], 30)
            np.testing.assert_allclose(inc.correlation().values, ref.values, atol=1e-8)

    def test_lag_longer_than_block(self):
        # max_lag spanning multiple blocks exercises cross-block pairs.
        rng = np.random.default_rng(1)
        inc = IncrementalCorrelator(max_lag=25, num_blocks=5, quantum=1e-3)
        xs, ys = [], []
        for i in range(8):
            dx = (rng.random(10) < 0.5).astype(float)
            dy = (rng.random(10) < 0.5).astype(float)
            xb, yb = block(dx, i * 10), block(dy, i * 10)
            xs.append(xb)
            ys.append(yb)
            inc.append(xb, yb)
        ref = batch_reference(xs[-5:], ys[-5:], 25)
        np.testing.assert_allclose(inc.correlation().values, ref.values, atol=1e-8)


class TestBookkeeping:
    def test_window_tracking(self):
        inc = IncrementalCorrelator(max_lag=5, num_blocks=2, quantum=1e-3)
        assert inc.window_start is None
        inc.append(block([1.0] * 4, 0), block([1.0] * 4, 0))
        assert inc.window_start == 0
        assert inc.window_length == 4
        inc.append(block([1.0] * 4, 4), block([1.0] * 4, 4))
        inc.append(block([1.0] * 4, 8), block([1.0] * 4, 8))
        assert inc.window_start == 4  # oldest evicted
        assert inc.window_length == 8

    def test_block_reach(self):
        inc = IncrementalCorrelator(max_lag=25, num_blocks=4, quantum=1e-3)
        inc.append(block([1.0] * 10, 0), block([1.0] * 10, 0))
        assert inc.block_reach == 3  # ceil(25/10)

    def test_cache_does_not_grow_after_eviction(self):
        inc = IncrementalCorrelator(max_lag=5, num_blocks=2, quantum=1e-3)
        rng = np.random.default_rng(2)
        sizes = []
        for i in range(10):
            d = rng.integers(0, 2, 8).astype(float)
            inc.append(block(d, i * 8), block(d, i * 8))
            sizes.append(len(inc._pair_cache))
        assert max(sizes[3:]) <= max(sizes[:3]) + 1  # bounded steady state


class TestValidation:
    def test_rejects_bad_construction(self):
        with pytest.raises(CorrelationError):
            IncrementalCorrelator(max_lag=-1, num_blocks=1, quantum=1e-3)
        with pytest.raises(CorrelationError):
            IncrementalCorrelator(max_lag=1, num_blocks=0, quantum=1e-3)
        with pytest.raises(CorrelationError):
            IncrementalCorrelator(max_lag=1, num_blocks=1, quantum=0.0)

    def test_rejects_mismatched_xy_blocks(self):
        inc = IncrementalCorrelator(max_lag=5, num_blocks=2, quantum=1e-3)
        with pytest.raises(SeriesError):
            inc.append(block([1.0] * 4, 0), block([1.0] * 4, 4))

    def test_rejects_non_adjacent_blocks(self):
        inc = IncrementalCorrelator(max_lag=5, num_blocks=2, quantum=1e-3)
        inc.append(block([1.0] * 4, 0), block([1.0] * 4, 0))
        with pytest.raises(SeriesError):
            inc.append(block([1.0] * 4, 8), block([1.0] * 4, 8))

    def test_rejects_changed_block_length(self):
        inc = IncrementalCorrelator(max_lag=5, num_blocks=2, quantum=1e-3)
        inc.append(block([1.0] * 4, 0), block([1.0] * 4, 0))
        with pytest.raises(SeriesError):
            inc.append(block([1.0] * 6, 4), block([1.0] * 6, 4))

    def test_rejects_wrong_quantum(self):
        inc = IncrementalCorrelator(max_lag=5, num_blocks=2, quantum=1e-3)
        with pytest.raises(SeriesError):
            inc.append(block([1.0] * 4, 0, quantum=1.0), block([1.0] * 4, 0, quantum=1.0))

    def test_query_before_any_block(self):
        inc = IncrementalCorrelator(max_lag=5, num_blocks=2, quantum=1e-3)
        with pytest.raises(CorrelationError):
            inc.correlation()
