"""Integration tests: pathmap on the simulated RUBiS testbed (Section 4.1).

These assert the paper's headline results: exact service-path recovery
under both dispatch policies (Figures 5 and 6), per-server delay accuracy
(Section 4.1.1), and EJB-tier bottleneck identification.
"""

import pytest

from repro.analysis.compare import compare_edge_delays, compare_edge_sets, compare_node_delays
from repro.apps.rubis import (
    BIDDING,
    COMMENT,
    DEFAULT_SERVICE_MEANS,
    EXPECTED_AFFINITY_PATHS,
    EXPECTED_ROUND_ROBIN_EDGES,
)
from repro.core.bottleneck import find_bottlenecks
from repro.management.monitor import compare_with_client, server_side_latency


class TestAffinityPaths:
    """Figure 5: each class takes exactly its pinned path."""

    def test_request_paths_recovered(self, affinity_result):
        for service_class, client in ((BIDDING, "C1"), (COMMENT, "C2")):
            graph = affinity_result.graph_for(client)
            for edge in EXPECTED_AFFINITY_PATHS[service_class]:
                assert graph.has_edge(*edge), (service_class, edge)

    def test_no_cross_path_contamination(self, affinity_result):
        bidding = affinity_result.graph_for("C1")
        comment = affinity_result.graph_for("C2")
        assert not bidding.has_edge("WS", "TS2")
        assert "EJB2" not in bidding
        assert not comment.has_edge("WS", "TS1")
        assert "EJB1" not in comment

    def test_return_path_discovered(self, affinity_result):
        graph = affinity_result.graph_for("C1")
        assert graph.has_edge("DS", "EJB1")
        assert graph.has_edge("EJB1", "TS1")
        assert graph.has_edge("TS1", "WS")
        assert graph.has_edge("WS", "C1")

    def test_edge_set_matches_ground_truth_exactly(self, affinity_rubis, affinity_result):
        for service_class, client in ((BIDDING, "C1"), (COMMENT, "C2")):
            graph = affinity_result.graph_for(client)
            comparison = compare_edge_sets(
                graph, affinity_rubis.ground_truth, service_class, min_requests=5
            )
            assert comparison.exact, (
                service_class,
                comparison.missing,
                comparison.spurious,
            )


class TestDelayAccuracy:
    """Section 4.1.1: processing delays within ~10%, cumulative labels accurate."""

    def test_node_delays_match_service_means(self, affinity_result):
        graph = affinity_result.graph_for("C1")
        expected = {
            "WS": DEFAULT_SERVICE_MEANS["WS"],
            "TS1": DEFAULT_SERVICE_MEANS["TS1"],
            "EJB1": DEFAULT_SERVICE_MEANS["EJB1"],
        }
        # Tolerance: the paper reports within 10%; allow the same plus one
        # quantum of discretization.
        comparison = compare_node_delays(graph, expected, tolerance=0.15)
        assert set(comparison) == set(expected)
        for node, (got, want, ok) in comparison.items():
            assert ok, f"{node}: got {got*1e3:.1f}ms want {want*1e3:.1f}ms"

    def test_cumulative_edge_delays_match_ground_truth(
        self, affinity_rubis, affinity_result
    ):
        graph = affinity_result.graph_for("C1")
        errors = compare_edge_delays(
            graph, affinity_rubis.ground_truth, BIDDING,
            since=3.0, until=63.0,
        )
        assert errors.per_edge, "no comparable edges"
        assert errors.max_relative_error < 0.25
        assert errors.mean_relative_error < 0.12

    def test_client_latency_exceeds_e2eprof_view(self, affinity_rubis, affinity_result):
        """The client sees its access link on top of the server-side path
        (the paper measured ~16% more on its testbed; the exact surplus
        depends on the client link, so only the direction is asserted)."""
        graph = affinity_result.graph_for("C1")
        client = affinity_rubis.clients[BIDDING]
        comparison = compare_with_client(graph, client, since=3.0)
        assert comparison.samples > 100
        assert comparison.client_latency > comparison.e2eprof_latency
        assert 0.0 < comparison.client_overhead < 0.25


class TestBottlenecks:
    """The EJB tier is marked grey in Figures 5/6."""

    def test_ejb_is_the_bottleneck(self, affinity_result):
        for client, ejb in (("C1", "EJB1"), ("C2", "EJB2")):
            report = find_bottlenecks(affinity_result.graph_for(client))
            assert report.dominant() == ejb
            assert ejb in report.bottlenecks


class TestRoundRobinPaths:
    """Figure 6: each class takes both paths."""

    def test_both_paths_per_class(self, roundrobin_result):
        for client, expected in (("C1", EXPECTED_ROUND_ROBIN_EDGES[BIDDING]),
                                 ("C2", EXPECTED_ROUND_ROBIN_EDGES[COMMENT])):
            graph = roundrobin_result.graph_for(client)
            for edge in expected:
                assert graph.has_edge(*edge), (client, edge)

    def test_path_enumeration_finds_both_branches(self, roundrobin_result):
        graph = roundrobin_result.graph_for("C1")
        nodes_per_path = {p.nodes for p in graph.paths()}
        assert any("TS1" in nodes for nodes in nodes_per_path)
        assert any("TS2" in nodes for nodes in nodes_per_path)

    def test_ejb_tier_dominates_round_robin_too(self, roundrobin_result):
        report = find_bottlenecks(roundrobin_result.graph_for("C1"), threshold_share=0.20)
        assert {"EJB1", "EJB2"} & set(report.bottlenecks)


class TestEndToEndLatency:
    def test_server_side_latency_plausible(self, affinity_result):
        latency = server_side_latency(affinity_result.graph_for("C1"))
        # Sum of service means ~41ms plus queueing/links.
        assert 0.035 < latency < 0.090
