"""Tests for capacity planning / what-if latency prediction."""

import pytest

from repro.core.service_graph import ServiceGraph
from repro.errors import AnalysisError
from repro.management.planning import (
    UpgradeRecommendation,
    path_hop_breakdown,
    plan_for_target,
    predict_latency,
)


def tiered_graph():
    """C -> WS(3ms) -> TS(8ms) -> EJB(20ms) -> DS; total 31 ms at DS."""
    g = ServiceGraph("C", "WS")
    g.add_edge("WS", "TS", [0.003])
    g.add_edge("TS", "EJB", [0.011])
    g.add_edge("EJB", "DS", [0.031])
    return g


class TestBreakdown:
    def test_contributions_sum_to_total(self):
        path = tiered_graph().paths()[0]
        breakdown = path_hop_breakdown(path)
        assert sum(breakdown.values()) == pytest.approx(path.total_delay)

    def test_per_node_attribution(self):
        breakdown = path_hop_breakdown(tiered_graph().paths()[0])
        assert breakdown["WS"] == pytest.approx(0.003)
        assert breakdown["TS"] == pytest.approx(0.008)
        assert breakdown["EJB"] == pytest.approx(0.020)


class TestPrediction:
    def test_identity(self):
        graph = tiered_graph()
        assert predict_latency(graph, {}) == pytest.approx(0.031)

    def test_speeding_the_bottleneck(self):
        graph = tiered_graph()
        predicted = predict_latency(graph, {"EJB": 2.0})
        assert predicted == pytest.approx(0.021)  # 31 - 10

    def test_multiple_speedups(self):
        graph = tiered_graph()
        predicted = predict_latency(graph, {"EJB": 2.0, "TS": 4.0})
        assert predicted == pytest.approx(0.015)

    def test_slowdown_prediction(self):
        graph = tiered_graph()
        predicted = predict_latency(graph, {"WS": 0.5})  # WS twice as slow
        assert predicted == pytest.approx(0.034)

    def test_bad_factor(self):
        with pytest.raises(AnalysisError):
            predict_latency(tiered_graph(), {"EJB": 0.0})

    def test_bare_graph_predicts_zero(self):
        # Only the implicit zero-delay client edge exists.
        assert predict_latency(ServiceGraph("C", "WS"), {}) == 0.0


class TestPlanning:
    def test_meets_target_with_cheapest_upgrade(self):
        graph = tiered_graph()
        options = plan_for_target(graph, target_latency=0.025)
        assert options, "expected at least one viable upgrade"
        best = options[0]
        assert best.node == "EJB"  # only EJB can shed 6+ ms
        assert best.predicted_latency <= 0.025 + 1e-9
        assert best.improvement == pytest.approx(0.006, abs=1e-9)

    def test_already_meeting_target(self):
        assert plan_for_target(tiered_graph(), target_latency=0.050) == []

    def test_unreachable_target(self):
        # Even infinitely fast EJB leaves 11 ms from WS+TS; 5 ms target
        # cannot be met by any single-node upgrade.
        assert plan_for_target(tiered_graph(), target_latency=0.005) == []

    def test_max_speedup_cap(self):
        graph = tiered_graph()
        # Target requires EJB ~20x faster: excluded by the cap.
        options = plan_for_target(graph, target_latency=0.0121, max_speedup=8.0)
        assert all(rec.speedup <= 8.0 for rec in options)

    def test_options_sorted_by_speedup(self):
        g = ServiceGraph("C", "A")
        g.add_edge("A", "B", [0.010])
        g.add_edge("B", "D", [0.030])  # B contributes 20 ms, A 10 ms
        options = plan_for_target(g, target_latency=0.025)
        assert [rec.node for rec in options][0] == "B"
        assert options == sorted(options, key=lambda rec: rec.speedup)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            plan_for_target(tiered_graph(), target_latency=0.0)
