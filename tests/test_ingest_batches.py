"""Tests for the columnar batch ingest path.

Covers the high-throughput ingest surface added alongside the chunked
collector store: :meth:`TraceCollector.ingest_batch`, the tracer's
vectorized capture APIs, the transport's packed timestamp-batch streams,
and the engine's ``capture_sink`` wiring -- with equivalence checks that
batched and per-record ingest produce identical analysis inputs.
"""

import numpy as np
import pytest

from repro.config import PathmapConfig
from repro.core.engine import E2EProfEngine
from repro.errors import TraceError
from repro.obs import MetricsRegistry, snapshot
from repro.simulation.distributions import Constant, Erlang
from repro.simulation.nodes import StaticRouter
from repro.simulation.topology import Topology
from repro.tracing.collector import TraceCollector
from repro.tracing.records import CaptureRecord, TimestampBatch
from repro.tracing.tracer import Tracer
from repro.tracing.transport import TransportLink, TransportReceiver

CFG = PathmapConfig(
    window=20.0,
    refresh_interval=10.0,
    quantum=1e-3,
    sampling_window=10e-3,
    max_transaction_delay=1.0,
)


def chain_topology(seed=0):
    topo = Topology(seed=seed)
    topo.add_service_node("DB", Erlang(0.010, k=8), workers=8)
    topo.add_service_node(
        "WS", Erlang(0.004, k=8), workers=8, router=StaticRouter({}, default="DB")
    )
    client = topo.add_client("C", "cls", front_end="WS")
    topo.open_workload(client, rate=20.0)
    return topo, client


def counter_value(registry, name):
    return snapshot(registry).get(name, {}).get("", {}).get("value", 0.0)


class TestTimestampBatch:
    def test_self_loop_rejected(self):
        with pytest.raises(TraceError):
            TimestampBatch("A", "A", True, [1.0])

    def test_two_dimensional_rejected(self):
        with pytest.raises(TraceError):
            TimestampBatch("A", "B", True, [[1.0, 2.0]])

    def test_coerced_to_float64(self):
        batch = TimestampBatch("A", "B", True, [1, 2, 3])
        assert batch.timestamps.dtype == np.float64
        assert len(batch) == 3

    def test_observer_side(self):
        assert TimestampBatch("A", "B", True, [1.0]).observer == "B"
        assert TimestampBatch("A", "B", False, [1.0]).observer == "A"

    def test_equality_is_value_based(self):
        a = TimestampBatch("A", "B", True, [1.0, 2.0])
        b = TimestampBatch("A", "B", True, np.array([1.0, 2.0]))
        c = TimestampBatch("A", "B", True, [1.0, 2.5])
        assert a == b
        assert a != c
        assert a != TimestampBatch("A", "B", False, [1.0, 2.0])


class TestIngestBatch:
    def test_matches_per_record_ingest(self):
        rng = np.random.default_rng(7)
        stamps = rng.uniform(0.0, 30.0, size=200)
        per_record = TraceCollector()
        for t in stamps:
            per_record.ingest_point(float(t), "A", "B", True)
        batched = TraceCollector()
        for lo in range(0, 200, 32):
            batched.ingest_batch("A", "B", stamps[lo : lo + 32])
        assert (
            batched.edge_timestamps("A", "B").tolist()
            == per_record.edge_timestamps("A", "B").tolist()
        )

    def test_empty_batch_is_a_noop(self):
        collector = TraceCollector()
        assert collector.ingest_batch("A", "B", []) == 0
        assert collector.record_count() == 0

    def test_self_loop_rejected(self):
        with pytest.raises(TraceError):
            TraceCollector().ingest_batch("A", "A", [1.0])

    def test_non_finite_rejected(self):
        with pytest.raises(TraceError):
            TraceCollector().ingest_batch("A", "B", [1.0, float("nan")])

    def test_two_dimensional_rejected(self):
        with pytest.raises(TraceError):
            TraceCollector().ingest_batch("A", "B", [[1.0], [2.0]])

    def test_in_order_batches_append_chunks_without_resort(self):
        collector = TraceCollector()
        collector.ingest_batch("A", "B", [1.0, 2.0, 3.0])
        collector.edge_timestamps("A", "B")
        collector.ingest_batch("A", "B", [4.0, 5.0, 6.0])
        collector.edge_timestamps("A", "B")
        stats = collector.ingest_stats()
        # Each batch consolidated once; the second never merged the first.
        assert stats["chunks"] == 2
        assert stats["sort_operations"] == 2

    def test_overlapping_batch_merges_trailing_chunk(self):
        collector = TraceCollector()
        collector.ingest_batch("A", "B", [10.0, 20.0])
        collector.edge_timestamps("A", "B")
        collector.ingest_batch("A", "B", [15.0])
        assert collector.edge_timestamps("A", "B").tolist() == [10.0, 15.0, 20.0]
        assert collector.ingest_stats()["chunks"] == 1

    def test_edge_timestamps_cached_object_preserved(self):
        collector = TraceCollector()
        collector.ingest_batch("A", "B", [1.0, 2.0])
        first = collector.edge_timestamps("A", "B")
        assert collector.edge_timestamps("A", "B") is first
        # One-sided capture: both preferences serve the same object.
        assert collector.edge_timestamps("A", "B", prefer_destination=False) is first


class TestExportDeterminism:
    def test_equal_timestamps_tie_break_on_edge_and_observer(self):
        # Same instant observed on two edges and both sides of one edge,
        # ingested in two different orders -> identical export sequences.
        points = [
            (5.0, "B", "C", True),
            (5.0, "A", "B", False),
            (5.0, "A", "B", True),
            (5.0, "A", "C", True),
        ]
        forward = TraceCollector()
        for t, src, dst, side in points:
            forward.ingest_point(t, src, dst, side)
        backward = TraceCollector()
        for t, src, dst, side in reversed(points):
            backward.ingest_point(t, src, dst, side)
        assert forward.export_records() == backward.export_records()
        exported = forward.export_records()
        assert [(r.src, r.dst, r.observer) for r in exported] == [
            ("A", "B", "A"),
            ("A", "B", "B"),
            ("A", "C", "C"),
            ("B", "C", "C"),
        ]

    def test_export_batches_round_trip(self):
        collector = TraceCollector()
        collector.ingest_batch("A", "B", [3.0, 1.0])
        collector.ingest_batch("B", "C", [2.0], observed_at_destination=False)
        clone = TraceCollector()
        for batch in collector.export_batches():
            clone.ingest_batch(
                batch.src, batch.dst, batch.timestamps, batch.observed_at_destination
            )
        assert clone.export_batches() == collector.export_batches()


class TestLegacyStoreDirtyFlags:
    def test_sorts_are_per_edge(self):
        collector = TraceCollector(columnar=False)
        collector.ingest_point(2.0, "A", "B", True)
        collector.ingest_point(1.0, "A", "B", True)
        collector.ingest_point(2.0, "C", "D", True)
        collector.ingest_point(1.0, "C", "D", True)
        assert collector.edge_timestamps("A", "B").tolist() == [1.0, 2.0]
        assert collector.ingest_stats()["sort_operations"] == 1
        # Re-reading a clean edge never re-sorts.
        collector.edge_timestamps("A", "B")
        assert collector.ingest_stats()["sort_operations"] == 1
        # Dirtying one edge does not dirty the other.
        collector.ingest_point(0.5, "A", "B", True)
        assert collector.edge_timestamps("C", "D").tolist() == [1.0, 2.0]
        assert collector.ingest_stats()["sort_operations"] == 2
        assert collector.edge_timestamps("A", "B").tolist() == [0.5, 1.0, 2.0]
        assert collector.ingest_stats()["sort_operations"] == 3

    def test_legacy_results_match_columnar(self):
        rng = np.random.default_rng(11)
        stamps = rng.uniform(0.0, 30.0, size=150)
        legacy = TraceCollector(columnar=False)
        columnar = TraceCollector()
        for t in stamps:
            legacy.ingest_point(float(t), "A", "B", True)
        columnar.ingest_batch("A", "B", stamps)
        assert (
            legacy.edge_timestamps("A", "B").tolist()
            == columnar.edge_timestamps("A", "B").tolist()
        )


class TestIngestMetrics:
    def test_ingest_many_updates_counter_once(self):
        registry = MetricsRegistry(enabled=True)
        collector = TraceCollector(metrics=registry)
        records = [CaptureRecord(float(i), "A", "B", "B") for i in range(10)]
        assert collector.ingest_many(records) == 10
        assert counter_value(registry, "collector_records_ingested_total") == 10.0

    def test_batch_counters(self):
        registry = MetricsRegistry(enabled=True)
        collector = TraceCollector(metrics=registry)
        collector.ingest_batch("A", "B", [1.0, 2.0, 3.0])
        collector.ingest_batch("A", "B", [4.0])
        assert counter_value(registry, "collector_records_ingested_total") == 4.0
        assert counter_value(registry, "collector_batches_ingested_total") == 2.0


class TestTracerBatchCapture:
    def test_observe_batch_applies_skew_and_counts(self):
        tracer = Tracer("B", clock_skew=0.5)
        assert tracer.observe_batch([1.0, 2.0], "A", "B") == 2
        assert tracer.packet_count == 2
        assert tracer.timestamps("A", "B") == [1.5, 2.5]

    def test_observe_batch_foreign_packets_rejected(self):
        with pytest.raises(TraceError):
            Tracer("Z").observe_batch([1.0], "A", "B")

    def test_drain_batches_collects_and_clears(self):
        tracer = Tracer("B")
        tracer.observe(1.0, "A", "B")  # before streaming: not buffered
        tracer.enable_batch_streaming()
        tracer.observe(2.0, "A", "B")
        tracer.observe_batch([3.0, 4.0], "A", "B")
        drained = tracer.drain_batches()
        assert list(drained) == [("A", "B")]
        assert drained[("A", "B")].tolist() == [2.0, 3.0, 4.0]
        assert tracer.drain_batches() == {}


class TestTransportBatchStreams:
    def _frames(self, link, stamps):
        return link.encode_timestamp_batches({("A", "B"): np.asarray(stamps)})

    def test_round_trip_and_duplicate_drop(self):
        link = TransportLink("B")
        receiver = TransportReceiver(refresh_interval=10.0)
        payloads = self._frames(link, [1.0, 2.0])
        for payload in payloads + payloads:  # duplicated delivery
            receiver.receive(payload, now=0.0)
        ready = receiver.poll_timestamp_batches()
        assert len(ready) == 1
        assert ready[0].timestamps.tolist() == [1.0, 2.0]
        assert ready[0].observed_at_destination  # link node == dst
        totals = receiver.totals()
        assert totals["timestamp_batches"] == 1
        assert totals["timestamp_duplicates"] == 1
        assert receiver.poll_timestamp_batches() == []

    def test_stale_epoch_frames_dropped_after_restart(self):
        link = TransportLink("B")
        receiver = TransportReceiver(refresh_interval=10.0)
        stale = self._frames(link, [1.0])
        link.restart()
        fresh = self._frames(link, [2.0])
        for payload in fresh + stale:
            receiver.receive(payload, now=0.0)
        ready = receiver.poll_timestamp_batches()
        assert [f.timestamps.tolist() for f in ready] == [[2.0]]
        assert receiver.totals()["timestamp_stale_epoch"] == 1

    def test_empty_batches_not_framed(self):
        link = TransportLink("B")
        assert link.encode_timestamp_batches({("A", "B"): np.empty(0)}) == []


class TestEngineCaptureSink:
    def test_direct_sink_matches_fabric_collector(self):
        topo, _ = chain_topology()
        sink = TraceCollector(client_nodes=["C"])
        engine = E2EProfEngine(CFG, capture_sink=sink)
        engine.attach(topo)
        topo.run_until(25.0)
        assert engine.latest_sample.capture_batches > 0
        assert sink.record_count() > 0
        assert sink.ingest_stats()["batches_ingested"] > 0
        # The sink holds exactly what was drained at refresh time; packets
        # after the last refresh are still pending in the tracers.
        cutoff = engine.latest_refresh_time
        reference = topo.collector
        assert sink.edges() == reference.edges()
        for src, dst in reference.edges():
            for prefer in (True, False):
                expected = [
                    t
                    for t in reference.edge_timestamps(src, dst, prefer).tolist()
                    if t <= cutoff
                ]
                assert sink.edge_timestamps(src, dst, prefer).tolist() == expected

    def test_transport_sink_matches_direct_sink(self):
        from repro.config import TransportConfig
        from repro.tracing.transport import FaultyChannel

        def run(transport, channel_factory=None):
            topo, _ = chain_topology(seed=3)
            sink = TraceCollector(client_nodes=["C"])
            engine = E2EProfEngine(
                CFG,
                capture_sink=sink,
                transport=TransportConfig() if transport else None,
                channel_factory=channel_factory,
            )
            engine.attach(topo)
            topo.run_until(25.0)
            return {
                (src, dst, prefer): sink.edge_timestamps(src, dst, prefer).tolist()
                for src, dst in sink.edges()
                for prefer in (True, False)
            }

        direct = run(transport=False)
        framed = run(transport=True)
        assert framed == direct
        # Duplicating and reordering frames must not change the ingest
        # (batch streams dedup by epoch/seq, order is irrelevant).
        faulty = run(
            transport=True,
            channel_factory=lambda node: FaultyChannel(
                seed=sum(node.encode()), duplicate=0.3, reorder=0.3
            ),
        )
        assert faulty == direct
