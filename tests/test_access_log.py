"""Tests for the access-log -> capture adapter (Delta-style traces)."""

import pytest

from repro.errors import TraceError
from repro.tracing.access_log import (
    access_log_to_captures,
    merge_server_logs,
    split_by_server,
)
from repro.tracing.records import AccessLogRecord


def log(ts, server, req, event="recv", peer=None):
    return AccessLogRecord(ts, server, req, event=event, peer=peer)


class TestConversion:
    def test_pipeline_flow(self):
        records = [
            log(1.0, "Q1", 7),                       # ingress recv
            log(1.2, "Q1", 7, "send", "VAL"),
            log(1.3, "VAL", 7),                      # recv from Q1
            log(1.6, "VAL", 7, "send", "DB"),
            log(1.8, "DB", 7),
        ]
        captures = list(access_log_to_captures(records))
        edges = [(c.src, c.dst, c.observer) for c in captures]
        assert edges == [
            ("external", "Q1", "Q1"),
            ("Q1", "VAL", "Q1"),
            ("Q1", "VAL", "VAL"),
            ("VAL", "DB", "VAL"),
            ("VAL", "DB", "DB"),
        ]

    def test_interleaved_requests_tracked_separately(self):
        records = [
            log(1.0, "Q1", 1, "send", "VAL"),
            log(1.1, "Q2", 2, "send", "VAL"),
            log(1.2, "VAL", 2),
            log(1.3, "VAL", 1),
        ]
        captures = list(access_log_to_captures(records))
        recv_edges = [(c.src, c.dst) for c in captures if c.observer == c.dst]
        assert ("Q2", "VAL") in recv_edges
        assert ("Q1", "VAL") in recv_edges

    def test_unsorted_input_rejected(self):
        records = [log(2.0, "A", 1, "send", "B"), log(1.0, "B", 1)]
        with pytest.raises(TraceError):
            list(access_log_to_captures(records))

    def test_custom_ingress_source(self):
        captures = list(
            access_log_to_captures([log(1.0, "Q1", 7)], ingress_source="feed")
        )
        assert captures[0].src == "feed"

    def test_self_recv_remapped_to_ingress(self):
        records = [log(1.0, "A", 1, "send", "A2"), log(1.1, "A", 1)]
        captures = list(access_log_to_captures(records))
        assert captures[1].src == "external"

    def test_request_ids_preserved(self):
        captures = list(access_log_to_captures([log(1.0, "Q1", 42)]))
        assert captures[0].request_id == 42


class TestHelpers:
    def test_split_by_server(self):
        records = [log(1.0, "A", 1), log(2.0, "B", 2), log(3.0, "A", 3)]
        split = split_by_server(records)
        assert {s: len(v) for s, v in split.items()} == {"A": 2, "B": 1}

    def test_merge_server_logs(self):
        a = [log(1.0, "A", 1), log(3.0, "A", 2)]
        b = [log(2.0, "B", 1)]
        merged = merge_server_logs([a, b])
        assert [r.timestamp for r in merged] == [1.0, 2.0, 3.0]
