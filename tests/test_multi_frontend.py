"""Multiple front ends: Algorithm 1's outer loop iterates over *all*
front-end service nodes; each (front end, client) pair gets its own
service graph."""

import pytest

from repro.config import PathmapConfig
from repro.core.pathmap import compute_service_graphs
from repro.simulation.distributions import Erlang
from repro.simulation.nodes import StaticRouter
from repro.simulation.topology import Topology

CFG = PathmapConfig(
    window=40.0,
    refresh_interval=40.0,
    quantum=1e-3,
    sampling_window=20e-3,
    max_transaction_delay=2.0,
)


@pytest.fixture(scope="module")
def two_frontends():
    """Two independent front ends sharing one database tier."""
    topo = Topology(seed=12)
    topo.add_service_node("DB", Erlang(0.010, k=8), workers=16)
    topo.add_service_node("AP1", Erlang(0.006, k=8), workers=8,
                          router=StaticRouter({}, default="DB"))
    topo.add_service_node("AP2", Erlang(0.012, k=8), workers=8,
                          router=StaticRouter({}, default="DB"))
    topo.add_service_node("WS1", Erlang(0.003, k=8), workers=8,
                          router=StaticRouter({}, default="AP1"))
    topo.add_service_node("WS2", Erlang(0.003, k=8), workers=8,
                          router=StaticRouter({}, default="AP2"))
    c1 = topo.add_client("C1", "store", front_end="WS1")
    c2 = topo.add_client("C2", "search", front_end="WS2")
    topo.open_workload(c1, rate=15.0)
    topo.open_workload(c2, rate=15.0)
    topo.run_until(42.0)
    window = topo.collector.window(CFG, end_time=41.0)
    return topo, compute_service_graphs(window, CFG)


class TestMultipleFrontEnds:
    def test_one_graph_per_frontend_client_pair(self, two_frontends):
        _, result = two_frontends
        assert set(result.graphs) == {("C1", "WS1"), ("C2", "WS2")}

    def test_each_graph_rooted_at_its_frontend(self, two_frontends):
        _, result = two_frontends
        g1 = result.graph_for("C1")
        assert g1.root == "WS1"
        assert g1.has_edge("WS1", "AP1")
        assert g1.has_edge("AP1", "DB")
        g2 = result.graph_for("C2")
        assert g2.root == "WS2"
        assert g2.has_edge("WS2", "AP2")
        assert g2.has_edge("AP2", "DB")

    def test_no_cross_frontend_leakage(self, two_frontends):
        _, result = two_frontends
        g1 = result.graph_for("C1")
        assert "AP2" not in g1 and "WS2" not in g1
        g2 = result.graph_for("C2")
        assert "AP1" not in g2 and "WS1" not in g2

    def test_shared_database_attributed_to_both(self, two_frontends):
        _, result = two_frontends
        # Both classes traverse DB; each graph labels it with its own
        # upstream cumulative delay.
        d1 = result.graph_for("C1").edge("AP1", "DB").min_delay
        d2 = result.graph_for("C2").edge("AP2", "DB").min_delay
        assert d1 == pytest.approx(0.009, abs=0.004)   # 3 + 6 ms
        assert d2 == pytest.approx(0.015, abs=0.004)   # 3 + 12 ms
        assert d2 > d1
