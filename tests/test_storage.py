"""Tests for trace file I/O (JSONL and CSV round-trips, malformed input)."""

import pytest

from repro.errors import TraceError
from repro.tracing.records import AccessLogRecord, CaptureRecord
from repro.tracing.storage import (
    load_captures,
    read_access_log_jsonl,
    read_capture_csv,
    read_capture_jsonl,
    write_access_log_jsonl,
    write_capture_csv,
    write_capture_jsonl,
)

CAPTURES = [
    CaptureRecord(1.0, "C", "WS", "WS", request_id=1, service_class="bid"),
    CaptureRecord(1.5, "WS", "DB", "DB"),
    CaptureRecord(2.25, "WS", "C", "WS", request_id=1),
]

LOGS = [
    AccessLogRecord(1.0, "Q1", 7, event="recv"),
    AccessLogRecord(1.2, "Q1", 7, event="send", peer="VAL"),
]


class TestCaptureJsonl:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert write_capture_jsonl(path, CAPTURES) == 3
        back = list(read_capture_jsonl(path))
        assert back == CAPTURES
        assert back[0].request_id == 1
        assert back[0].service_class == "bid"

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_capture_jsonl(path, CAPTURES)
        path.write_text(path.read_text() + "\n\n")
        assert len(list(read_capture_jsonl(path))) == 3

    def test_malformed_line_reports_position(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ts": 1.0}\n')
        with pytest.raises(TraceError, match="bad.jsonl:1"):
            list(read_capture_jsonl(path))

    def test_non_json_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TraceError):
            list(read_capture_jsonl(path))


class TestCaptureCsv:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "trace.csv"
        assert write_capture_csv(path, CAPTURES) == 3
        back = list(read_capture_csv(path))
        assert back == CAPTURES
        # Exact float round-trip via repr().
        assert back[2].timestamp == 2.25

    def test_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n")
        with pytest.raises(TraceError, match="header"):
            list(read_capture_csv(path))

    def test_malformed_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        write_capture_csv(path, CAPTURES[:1])
        path.write_text(path.read_text() + "oops,WS\n")
        with pytest.raises(TraceError):
            list(read_capture_csv(path))


class TestAccessLogJsonl:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        assert write_access_log_jsonl(path, LOGS) == 2
        back = list(read_access_log_jsonl(path))
        assert back == LOGS

    def test_malformed(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ts": "x"}\n')
        with pytest.raises(TraceError):
            list(read_access_log_jsonl(path))


class TestLoadDispatch:
    def test_by_extension(self, tmp_path):
        jsonl = tmp_path / "t.jsonl"
        csvf = tmp_path / "t.csv"
        write_capture_jsonl(jsonl, CAPTURES)
        write_capture_csv(csvf, CAPTURES)
        assert load_captures(jsonl) == CAPTURES
        assert load_captures(csvf) == CAPTURES
