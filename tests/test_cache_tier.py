"""A cache-aside tier: one class, two data paths with very different
delays (fast cache hits, slow database misses).

This is the realistic face of "the existence of more than one spike
indicates that the request may have taken different paths" (paper
Section 3.3): pathmap must discover BOTH downstream edges from the
application server, and the response edge back to the client must carry
two spikes -- the bimodal end-to-end latency an operator would see in
percentile dashboards."""

import pytest

from repro.apps.dispatch import RandomChoiceRouter
from repro.config import PathmapConfig
from repro.core.pathmap import compute_service_graphs
from repro.errors import TopologyError
from repro.simulation.distributions import Erlang
from repro.simulation.nodes import Message, StaticRouter
from repro.simulation.topology import Topology

CFG = PathmapConfig(
    window=60.0,
    refresh_interval=60.0,
    quantum=1e-3,
    sampling_window=10e-3,
    max_transaction_delay=2.0,
    min_spike_height=0.10,
)

HIT_RATE = 0.7


@pytest.fixture(scope="module")
def cache_system():
    topo = Topology(seed=31)
    topo.add_service_node("CACHE", Erlang(0.002, k=8), workers=16)
    # Low-variance DB latency keeps the miss spike sharp enough to clear
    # the threshold on the shared response edge (high variance smears the
    # minority path's hill below detection -- a real limitation worth
    # knowing about).
    topo.add_service_node("DB", Erlang(0.030, k=64), workers=16)
    topo.add_service_node(
        "AP", Erlang(0.004, k=8), workers=16,
        router=RandomChoiceRouter({"CACHE": HIT_RATE, "DB": 1 - HIT_RATE}, topo.rng),
    )
    topo.add_service_node("WS", Erlang(0.002, k=8), workers=16,
                          router=StaticRouter({}, default="AP"))
    client = topo.add_client("C", "reads", front_end="WS")
    topo.open_workload(client, rate=30.0)
    topo.run_until(62.0)
    result = compute_service_graphs(topo.collector.window(CFG, end_time=61.0), CFG)
    return topo, result.graph_for("C")


class TestRandomChoiceRouter:
    def test_weights_respected(self):
        import numpy as np

        rng = np.random.default_rng(0)
        router = RandomChoiceRouter({"A": 0.8, "B": 0.2}, rng)
        msg = Message(1, "x", "request", "C", "N", ("C",), 0.0)
        picks = [router.route(None, msg).targets[0] for _ in range(2000)]
        assert 0.75 < picks.count("A") / len(picks) < 0.85

    def test_validation(self):
        import numpy as np

        rng = np.random.default_rng(0)
        with pytest.raises(TopologyError):
            RandomChoiceRouter({}, rng)
        with pytest.raises(TopologyError):
            RandomChoiceRouter({"A": 0.0}, rng)


class TestCacheTierPaths:
    def test_both_data_paths_discovered(self, cache_system):
        _, graph = cache_system
        assert graph.has_edge("AP", "CACHE")
        assert graph.has_edge("AP", "DB")

    def test_hit_and_miss_delays(self, cache_system):
        _, graph = cache_system
        # Both edges leave AP after ~WS+AP processing (~6 ms cumulative).
        assert graph.edge("AP", "CACHE").min_delay == pytest.approx(0.006, abs=0.004)
        assert graph.edge("AP", "DB").min_delay == pytest.approx(0.006, abs=0.004)
        # The *return* edges separate the two path latencies.
        cache_return = graph.edge("CACHE", "AP").min_delay
        db_return = graph.edge("DB", "AP").min_delay
        assert db_return - cache_return == pytest.approx(0.028, abs=0.008)

    def test_bimodal_response_edge(self, cache_system):
        """The response edge back to the client carries two spikes: the
        hit latency and the miss latency."""
        _, graph = cache_system
        delays = graph.edge("WS", "C").delays
        assert len(delays) >= 2
        spread = max(delays) - min(delays)
        assert spread == pytest.approx(0.028, abs=0.010)

    def test_bottleneck_is_the_database(self, cache_system):
        from repro.core.bottleneck import find_bottlenecks

        _, graph = cache_system
        report = find_bottlenecks(graph, threshold_share=0.25)
        assert "DB" in report.node_delays
        assert report.dominant() in ("DB", "AP")  # DB unless hit path dominates
