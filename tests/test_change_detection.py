"""Tests for per-edge change detection (Section 4.1.2 / Figure 7)."""

import pytest

from repro.core.change_detection import ChangeDetector, ChangeEvent, DelaySample
from repro.core.pathmap import PathmapResult, PathmapStats
from repro.core.service_graph import ServiceGraph
from repro.errors import AnalysisError


def result_with_delay(delay):
    """A PathmapResult with a single graph C->WS->DB, DB edge at ``delay``."""
    graph = ServiceGraph("C", "WS")
    graph.add_edge("WS", "DB", [delay])
    return PathmapResult({("C", "WS"): graph}, PathmapStats())


CLASS_KEY = ("C", "WS")
EDGE = ("WS", "DB")


class TestHistory:
    def test_history_accumulates(self):
        det = ChangeDetector()
        for i, d in enumerate([0.01, 0.011, 0.012]):
            det.record(float(i), result_with_delay(d))
        history = det.history(CLASS_KEY, EDGE)
        assert [s.time for s in history] == [0.0, 1.0, 2.0]
        assert history[0] == DelaySample(0.0, 0.01)

    def test_delay_series_arrays(self):
        det = ChangeDetector()
        det.record(0.0, result_with_delay(0.01))
        det.record(1.0, result_with_delay(0.02))
        times, delays = det.delay_series(CLASS_KEY, EDGE)
        assert list(times) == [0.0, 1.0]
        assert list(delays) == [0.01, 0.02]

    def test_tracked_edges(self):
        det = ChangeDetector()
        det.record(0.0, result_with_delay(0.01))
        assert (CLASS_KEY, ("C", "WS")) in det.tracked_edges()
        assert (CLASS_KEY, EDGE) in det.tracked_edges()


class TestDetection:
    def test_step_change_detected(self):
        det = ChangeDetector(absolute_threshold=0.005, relative_threshold=0.2,
                             baseline_refreshes=3)
        for i in range(3):
            det.record(float(i), result_with_delay(0.010))
        events = det.record(3.0, result_with_delay(0.030))
        assert len(events) == 1
        event = events[0]
        assert event.edge == EDGE
        assert event.previous == pytest.approx(0.010)
        assert event.current == pytest.approx(0.030)
        assert event.magnitude == pytest.approx(0.020)
        assert event.relative == pytest.approx(2.0)

    def test_no_event_below_absolute_threshold(self):
        det = ChangeDetector(absolute_threshold=0.005, relative_threshold=0.0001,
                             baseline_refreshes=2)
        det.record(0.0, result_with_delay(0.010))
        det.record(1.0, result_with_delay(0.010))
        events = det.record(2.0, result_with_delay(0.012))
        assert events == []

    def test_no_event_below_relative_threshold(self):
        det = ChangeDetector(absolute_threshold=0.001, relative_threshold=0.5,
                             baseline_refreshes=2)
        det.record(0.0, result_with_delay(0.100))
        det.record(1.0, result_with_delay(0.100))
        events = det.record(2.0, result_with_delay(0.110))  # +10% only
        assert events == []

    def test_no_event_during_warmup(self):
        det = ChangeDetector(baseline_refreshes=3)
        events = det.record(0.0, result_with_delay(0.010))
        assert events == []
        events = det.record(1.0, result_with_delay(0.100))
        assert events == []  # still warming up

    def test_decrease_also_detected(self):
        det = ChangeDetector(absolute_threshold=0.005, relative_threshold=0.2,
                             baseline_refreshes=2)
        det.record(0.0, result_with_delay(0.050))
        det.record(1.0, result_with_delay(0.050))
        events = det.record(2.0, result_with_delay(0.010))
        assert len(events) == 1
        assert events[0].magnitude < 0

    def test_events_accumulate(self):
        det = ChangeDetector(absolute_threshold=0.005, relative_threshold=0.1,
                             baseline_refreshes=1)
        det.record(0.0, result_with_delay(0.010))
        det.record(1.0, result_with_delay(0.050))
        det.record(2.0, result_with_delay(0.200))
        assert len(det.events()) == 2
        assert len(det.events_for(EDGE)) == 2
        assert det.events_for(("X", "Y")) == []

    def test_relative_from_zero_baseline(self):
        event = ChangeEvent(0.0, CLASS_KEY, EDGE, previous=0.0, current=0.01)
        assert event.relative == float("inf")
        flat = ChangeEvent(0.0, CLASS_KEY, EDGE, previous=0.0, current=0.0)
        assert flat.relative == 0.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            ChangeDetector(baseline_refreshes=0)
