"""Tests for EWMA anomaly detection."""

import numpy as np
import pytest

from repro.core.anomaly import ALARM, OK, WARNING, Anomaly, AnomalyDetector
from repro.core.pathmap import PathmapResult, PathmapStats
from repro.core.service_graph import ServiceGraph
from repro.errors import AnalysisError

CLASS_KEY = ("C", "WS")
EDGE = ("WS", "DB")


def result_with_delay(delay):
    graph = ServiceGraph("C", "WS")
    graph.add_edge("WS", "DB", [delay])
    return PathmapResult({CLASS_KEY: graph}, PathmapStats())


def feed(detector, delays, start_time=0.0):
    raised = []
    for i, delay in enumerate(delays):
        raised.extend(detector.record(start_time + 60.0 * i, result_with_delay(delay)))
    return raised


class TestBaseline:
    def test_steady_stream_stays_ok(self):
        detector = AnomalyDetector()
        rng = np.random.default_rng(0)
        raised = feed(detector, 0.020 + rng.normal(0, 0.0005, 50))
        assert raised == []
        assert detector.status(CLASS_KEY, EDGE) == OK
        assert detector.healthy()

    def test_warmup_suppresses_scoring(self):
        detector = AnomalyDetector(warmup=5)
        raised = feed(detector, [0.02, 0.02, 0.5, 0.02])  # spike inside warmup
        assert raised == []

    def test_baseline_tracks_slow_drift(self):
        detector = AnomalyDetector(min_std=0.004)
        # Delay creeps up 1% per refresh: never a 3-sigma jump.
        delays = [0.020 * (1.01 ** i) for i in range(40)]
        raised = feed(detector, delays)
        assert raised == []
        state = detector.state(CLASS_KEY, EDGE)
        assert state.mean > 0.025  # baseline followed the drift


class TestDetection:
    def test_step_raises_warning_then_alarm(self):
        detector = AnomalyDetector(alarm_after=2, min_std=0.001)
        feed(detector, [0.020] * 10)
        first = feed(detector, [0.060], start_time=1000.0)
        assert [a.status for a in first] == [WARNING] or [a.status for a in first] == [ALARM]
        feed(detector, [0.060], start_time=1060.0)
        assert detector.status(CLASS_KEY, EDGE) == ALARM
        assert (CLASS_KEY, EDGE) in detector.active_alarms()

    def test_huge_jump_alarms_immediately(self):
        detector = AnomalyDetector(min_std=0.001)
        feed(detector, [0.020] * 10)
        raised = feed(detector, [0.500], start_time=1000.0)
        assert raised and raised[-1].status == ALARM

    def test_recovery_clears_alarm(self):
        detector = AnomalyDetector(min_std=0.001)
        feed(detector, [0.020] * 10 + [0.5, 0.5])
        assert detector.status(CLASS_KEY, EDGE) == ALARM
        feed(detector, [0.020] * 3, start_time=2000.0)
        assert detector.status(CLASS_KEY, EDGE) == OK
        assert detector.active_alarms() == []

    def test_baseline_not_poisoned_by_anomaly(self):
        detector = AnomalyDetector(min_std=0.001)
        feed(detector, [0.020] * 10)
        before = detector.state(CLASS_KEY, EDGE).mean
        feed(detector, [0.500] * 3, start_time=1000.0)
        after = detector.state(CLASS_KEY, EDGE).mean
        assert after == pytest.approx(before)  # anomalous samples excluded

    def test_anomaly_fields(self):
        detector = AnomalyDetector(min_std=0.001)
        feed(detector, [0.020] * 10)
        raised = feed(detector, [0.100], start_time=1000.0)
        anomaly = raised[0]
        assert anomaly.edge == EDGE
        assert anomaly.observed == pytest.approx(0.100)
        assert anomaly.baseline == pytest.approx(0.020, abs=0.002)
        assert anomaly.score > 3.0

    def test_decrease_also_scored(self):
        detector = AnomalyDetector(min_std=0.001)
        feed(detector, [0.100] * 10)
        raised = feed(detector, [0.010], start_time=1000.0)
        assert raised and raised[0].score < -3.0

    def test_min_std_floor_suppresses_quantization_noise(self):
        detector = AnomalyDetector(min_std=0.005)
        feed(detector, [0.020] * 10)
        raised = feed(detector, [0.022], start_time=1000.0)  # +2ms blip
        assert raised == []


class TestValidation:
    def test_constructor_validation(self):
        with pytest.raises(AnalysisError):
            AnomalyDetector(alpha=0.0)
        with pytest.raises(AnalysisError):
            AnomalyDetector(warn_score=5.0, alarm_score=3.0)
        with pytest.raises(AnalysisError):
            AnomalyDetector(alarm_after=0)
        with pytest.raises(AnalysisError):
            AnomalyDetector(warmup=0)

    def test_status_of_unknown_edge(self):
        assert AnomalyDetector().status(CLASS_KEY, ("X", "Y")) == OK
