"""Tests for the online E2EProf engine (incremental sliding-window analysis)."""

import numpy as np
import pytest

from repro.config import PathmapConfig
from repro.core.engine import E2EProfEngine
from repro.errors import AnalysisError
from repro.simulation.distributions import Constant, Erlang
from repro.simulation.nodes import StaticRouter
from repro.simulation.topology import Topology

CFG = PathmapConfig(
    window=20.0,
    refresh_interval=10.0,
    quantum=1e-3,
    sampling_window=10e-3,
    max_transaction_delay=1.0,
)


def chain_topology(seed=0):
    topo = Topology(seed=seed)
    topo.add_service_node("DB", Erlang(0.010, k=8), workers=8)
    topo.add_service_node(
        "WS", Erlang(0.004, k=8), workers=8, router=StaticRouter({}, default="DB")
    )
    client = topo.add_client("C", "cls", front_end="WS")
    topo.open_workload(client, rate=20.0)
    return topo, client


class TestRefreshCycle:
    def test_refreshes_fire_on_schedule(self):
        topo, _ = chain_topology()
        engine = E2EProfEngine(CFG)
        engine.attach(topo)
        seen = []
        engine.subscribe(lambda now, result: seen.append(now))
        topo.run_until(45.0)
        assert seen == [10.0, 20.0, 30.0, 40.0]

    def test_latest_result_updated(self):
        topo, _ = chain_topology()
        engine = E2EProfEngine(CFG)
        engine.attach(topo)
        topo.run_until(25.0)
        assert engine.latest_refresh_time == 20.0
        assert engine.latest_result is not None

    def test_detach_stops_refreshes(self):
        topo, _ = chain_topology()
        engine = E2EProfEngine(CFG)
        engine.attach(topo)
        topo.run_until(15.0)
        engine.detach()
        topo.run_until(45.0)
        assert engine.latest_refresh_time == 10.0

    def test_double_attach_rejected(self):
        topo, _ = chain_topology()
        engine = E2EProfEngine(CFG)
        engine.attach(topo)
        with pytest.raises(AnalysisError):
            engine.attach(topo)

    def test_refresh_without_attach_rejected(self):
        with pytest.raises(AnalysisError):
            E2EProfEngine(CFG).refresh(0.0)


class TestAnalysisQuality:
    def test_path_recovered_online(self):
        topo, _ = chain_topology()
        engine = E2EProfEngine(CFG)
        engine.attach(topo)
        topo.run_until(45.0)
        graph = engine.latest_result.graph_for("C")
        assert graph.has_edge("WS", "DB")
        assert graph.has_edge("DB", "WS")
        assert graph.has_edge("WS", "C")
        # Cumulative delay at DB ~ WS service (4ms) + link.
        assert graph.edge("WS", "DB").min_delay == pytest.approx(0.004, abs=0.003)

    def test_incremental_matches_batch_collector_analysis(self):
        from repro.core.pathmap import compute_service_graphs

        topo, _ = chain_topology()
        engine = E2EProfEngine(CFG)
        engine.attach(topo)
        topo.run_until(45.0)
        online = engine.latest_result.graph_for("C")

        # Batch analysis over (approximately) the same window. Block
        # anchoring lags by omega, so delays may differ by ~1 quantum.
        batch_window = topo.collector.window(CFG, end_time=40.0)
        batch = compute_service_graphs(batch_window, CFG).graph_for("C")
        assert online.edge_set() == batch.edge_set()
        for edge in batch.edges:
            online_delay = online.edge(edge.src, edge.dst).min_delay
            assert online_delay == pytest.approx(edge.min_delay, abs=0.005)

    def test_correlators_are_reused(self):
        topo, _ = chain_topology()
        engine = E2EProfEngine(CFG)
        engine.attach(topo)
        topo.run_until(25.0)
        count_after_two = engine.correlator_count
        topo.run_until(45.0)
        # Steady state: no new correlators for a stable topology.
        assert engine.correlator_count == count_after_two

    def test_wire_fidelity_mode_preserves_analysis(self):
        """Streaming the blocks as actual bytes (tracing.wire) must not
        change the recovered graphs."""
        topo_a, _ = chain_topology(seed=3)
        plain = E2EProfEngine(CFG)
        plain.attach(topo_a)
        topo_a.run_until(45.0)

        topo_b, _ = chain_topology(seed=3)
        wired = E2EProfEngine(CFG, wire_fidelity=True)
        wired.attach(topo_b)
        topo_b.run_until(45.0)

        assert wired.wire_bytes_received > 0
        g_plain = plain.latest_result.graph_for("C")
        g_wired = wired.latest_result.graph_for("C")
        assert g_plain.edge_set() == g_wired.edge_set()
        for edge in g_plain.edges:
            assert g_wired.edge(edge.src, edge.dst).delays == pytest.approx(
                edge.delays, abs=1e-3
            )

    def test_late_appearing_edge_gets_backfilled(self):
        topo = Topology(seed=1)
        topo.add_service_node("DB", Erlang(0.010, k=8), workers=8)
        topo.add_service_node("X", Constant(0.005), workers=8,
                              router=StaticRouter({}, default="DB"))
        topo.add_service_node(
            "WS", Erlang(0.004, k=8), workers=8,
            router=StaticRouter({"late": "X"}, default="DB"),
        )
        c1 = topo.add_client("C", "cls", front_end="WS")
        topo.open_workload(c1, rate=20.0)
        engine = E2EProfEngine(CFG)
        engine.attach(topo)
        topo.run_until(25.0)
        # The 'late' class starts mid-run: its edges are new to the engine.
        c2 = topo.add_client("C2", "late", front_end="WS")
        topo.open_workload(c2, rate=20.0)
        topo.run_until(55.0)
        graph = engine.latest_result.graph_for("C2")
        assert graph.has_edge("WS", "X")
        assert graph.has_edge("X", "DB")
