"""Tests for the SVG renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.svg import render_svg, write_svg
from repro.core.service_graph import ServiceGraph

SVG_NS = "{http://www.w3.org/2000/svg}"


def tiered_graph():
    g = ServiceGraph("C", "WS")
    g.add_edge("WS", "TS", [0.003])
    g.add_edge("TS", "EJB", [0.011])
    g.add_edge("EJB", "DB", [0.031])
    g.add_edge("DB", "EJB", [0.041])  # return edge
    return g


class TestRenderSvg:
    def test_valid_xml(self):
        root = ET.fromstring(render_svg(tiered_graph()))
        assert root.tag == f"{SVG_NS}svg"

    def test_all_nodes_labelled(self):
        svg = render_svg(tiered_graph())
        for node in ("C", "WS", "TS", "EJB", "DB"):
            assert f">{node}</text>" in svg

    def test_delay_labels_present(self):
        svg = render_svg(tiered_graph())
        assert "3.0ms" in svg
        assert "31.0ms" in svg

    def test_bottleneck_filled_grey(self):
        root = ET.fromstring(render_svg(tiered_graph()))
        grey_rects = [
            el for el in root.iter(f"{SVG_NS}rect")
            if el.get("fill") == "#d0d0d0"
        ]
        assert grey_rects  # EJB should be grey

    def test_no_grey_when_marking_disabled(self):
        root = ET.fromstring(render_svg(tiered_graph(), mark_bottlenecks=False))
        grey = [
            el for el in root.iter()
            if el.get("fill") == "#d0d0d0"
        ]
        assert grey == []

    def test_client_drawn_as_ellipse(self):
        root = ET.fromstring(render_svg(tiered_graph()))
        assert list(root.iter(f"{SVG_NS}ellipse"))

    def test_return_edge_dashed(self):
        root = ET.fromstring(render_svg(tiered_graph()))
        dashed = [
            el for el in root.iter(f"{SVG_NS}path")
            if el.get("stroke-dasharray")
        ]
        assert dashed  # the DB -> EJB return edge

    def test_forward_edge_count(self):
        root = ET.fromstring(render_svg(tiered_graph()))
        lines = list(root.iter(f"{SVG_NS}line"))
        assert len(lines) == 4  # C->WS, WS->TS, TS->EJB, EJB->DB

    def test_escaping(self):
        g = ServiceGraph("C<1>", "WS&Co")
        svg = render_svg(g, mark_bottlenecks=False)
        assert "C&lt;1&gt;" in svg
        assert "WS&amp;Co" in svg
        ET.fromstring(svg)  # still valid XML

    def test_write_svg(self, tmp_path):
        path = tmp_path / "graph.svg"
        write_svg(tiered_graph(), str(path))
        assert path.read_text().startswith("<svg")

    def test_real_graph_renders(self, affinity_result):
        svg = render_svg(affinity_result.graph_for("C1"))
        root = ET.fromstring(svg)
        assert "EJB1" in svg
        assert list(root.iter(f"{SVG_NS}rect"))


class TestSeriesChart:
    def make(self, **kwargs):
        from repro.analysis.svg import render_series_svg

        times = [60, 120, 180, 240]
        series = {
            "EJB2 (pathmap)": [0.026, 0.025, 0.041, 0.039],
            "injected": [0.0, 0.0, 0.015, 0.015],
        }
        return render_series_svg(times, series, title="Figure 7", **kwargs)

    def test_valid_xml_with_title_and_legend(self):
        svg = self.make()
        root = ET.fromstring(svg)
        assert root.tag == f"{SVG_NS}svg"
        assert "Figure 7" in svg
        assert "EJB2 (pathmap)" in svg
        assert "injected" in svg

    def test_one_polyline_per_series(self):
        root = ET.fromstring(self.make())
        polylines = list(root.iter(f"{SVG_NS}polyline"))
        assert len(polylines) == 2

    def test_y_axis_in_milliseconds(self):
        svg = self.make()
        # Max value 41 ms * 1.1 headroom ~ 45: a 45 gridline label exists.
        assert "45" in svg or "44" in svg

    def test_empty_input_rejected(self):
        from repro.analysis.svg import render_series_svg

        with pytest.raises(ValueError):
            render_series_svg([], {})

