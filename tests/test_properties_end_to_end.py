"""Property-based end-to-end test: pathmap recovers randomly generated
linear service chains.

For any chain length, any (reasonable) per-node service times, and any
seed, pathmap must rediscover the chain's request edges in order, with
monotonically increasing cumulative delays that match the configured
service means to within a couple of quanta. This is the strongest
whole-system invariant the reproduction rests on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PathmapConfig
from repro.core.pathmap import compute_service_graphs
from repro.simulation.distributions import Erlang
from repro.simulation.nodes import StaticRouter
from repro.simulation.topology import Topology

pytestmark = pytest.mark.slow

CFG = PathmapConfig(
    window=40.0,
    refresh_interval=40.0,
    quantum=1e-3,
    sampling_window=20e-3,
    max_transaction_delay=2.0,
)

chains = st.lists(
    st.floats(min_value=0.004, max_value=0.030),
    min_size=2,
    max_size=4,
)


@given(chains, st.integers(min_value=0, max_value=10_000))
@settings(max_examples=12, deadline=None)
def test_random_chain_recovered(service_means, seed):
    topo = Topology(seed=seed)
    names = [f"N{i}" for i in range(len(service_means))]
    # Build leaf-first so routers can reference their downstream node.
    for i in reversed(range(len(names))):
        router = (
            StaticRouter({}, default=names[i + 1])
            if i + 1 < len(names)
            else None  # leaf replies
        )
        topo.add_service_node(
            names[i], Erlang(service_means[i], k=16), workers=16, router=router
        )
    client = topo.add_client("C", "cls", front_end=names[0])
    topo.open_workload(client, rate=25.0)
    topo.run_until(42.0)

    result = compute_service_graphs(
        topo.collector.window(CFG, end_time=41.0), CFG
    )
    graph = result.graph_for("C")

    # Every request-direction edge present...
    expected_edges = [("C", names[0])] + list(zip(names, names[1:]))
    for edge in expected_edges:
        assert graph.has_edge(*edge), edge
    # ...with cumulative delays increasing along the chain...
    cumulative = [graph.edge(*edge).min_delay for edge in expected_edges]
    assert cumulative == sorted(cumulative)
    # ...and each hop's increment matching the configured service mean.
    for i, (lo, hi) in enumerate(zip(cumulative, cumulative[1:])):
        assert hi - lo == pytest.approx(service_means[i], abs=0.006)
    # The response made it back to the client.
    assert graph.has_edge(names[0], "C")
