"""A full diurnal day of the Revenue Pipeline, replayed offline.

The paper analyzed a week-long trace; this test drives one scaled-down
day (diurnal rate curve + the 4 AM batch), converts the access log, and
replays the sliding analysis over the whole day -- checking that paths
are recovered through the normal hours and that the batch hour is where
analysis degrades (the paper's reported experience)."""

import numpy as np
import pytest

from repro.apps.delta import BATCH_HOUR_SECONDS, DIURNAL_WEIGHTS, build_delta, run_day
from repro.config import PathmapConfig
from repro.core.offline import analyze_sliding
from repro.tracing.access_log import access_log_to_captures
from repro.tracing.collector import TraceCollector

pytestmark = pytest.mark.slow

CFG = PathmapConfig(
    window=3600.0,
    refresh_interval=600.0,
    quantum=1.0,
    sampling_window=50.0,
    max_transaction_delay=1200.0,
)

#: Offline subsampling: analyze every 2 simulated hours.
STEP = 7200.0


@pytest.fixture(scope="module")
def day_replay():
    deployment = build_delta(
        seed=6, num_queues=3, events_per_hour=7200.0, config=CFG
    )
    end = run_day(deployment, batch_events=1200, batch_over_seconds=60.0)
    collector = TraceCollector(client_nodes=["external"])
    collector.ingest_many(access_log_to_captures(deployment.sorted_access_log()))
    results = dict(analyze_sliding(collector, CFG, 0.0, end, step=STEP))
    return deployment, results


def recovered_fraction(result):
    graphs = list(result.graphs.values())
    if not graphs:
        return 0.0
    full = sum(
        1 for g in graphs
        if g.has_edge("VAL", "RDB") and g.has_edge("RDB", "ACCT")
    )
    return full / len(graphs)


class TestDiurnalDay:
    def test_traffic_follows_the_curve(self, day_replay):
        deployment, _ = day_replay
        log = deployment.sorted_access_log()
        recv_at_queue = [
            r.timestamp for r in log if r.event == "recv" and r.server.startswith("Q")
        ]
        hour_counts = np.histogram(recv_at_queue, bins=24, range=(0, 86400))[0]
        # Business hours carry several times the overnight load.
        assert hour_counts[10] > 2.5 * hour_counts[2]
        # The 4 AM batch hour spikes above what its diurnal weight alone
        # would produce (weight-normalized comparison with the next hour).
        batch_hour = int(BATCH_HOUR_SECONDS // 3600)
        normalized_batch = hour_counts[batch_hour] / DIURNAL_WEIGHTS[batch_hour]
        normalized_next = hour_counts[batch_hour + 1] / DIURNAL_WEIGHTS[batch_hour + 1]
        assert normalized_batch > normalized_next + 1000

    def test_paths_recovered_through_normal_hours(self, day_replay):
        _, results = day_replay
        daytime = [t for t in results if 8 * 3600 <= t <= 22 * 3600]
        assert daytime
        good = sum(1 for t in daytime if recovered_fraction(results[t]) == 1.0)
        assert good >= len(daytime) - 1  # at most one marginal window

    def test_batch_window_is_the_weak_spot(self, day_replay):
        _, results = day_replay
        # The refresh whose window covers the 4 AM batch.
        covering = [
            t for t in results
            if t - CFG.window <= BATCH_HOUR_SECONDS < t
        ]
        assert covering
        batch_quality = min(recovered_fraction(results[t]) for t in covering)
        daytime_quality = np.mean([
            recovered_fraction(results[t])
            for t in results if 10 * 3600 <= t <= 20 * 3600
        ])
        assert batch_quality < daytime_quality

    def test_day_scale_log_volume(self, day_replay):
        deployment, _ = day_replay
        # ~7200 ev/h scaled by the diurnal curve (mean weight ~1.0) for
        # 24 h, 7 log records per event.
        log_len = len(deployment.access_log)
        assert log_len > 300_000
