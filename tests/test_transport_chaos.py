"""Chaos soak for the fault-tolerant transport (tier-2, slow).

Drives full RUBiS deployments through seeded :class:`FaultyChannel`
sweeps -- drop rates from 0 to 30%, reordering, duplication, corruption
and tracer kill/restart mid-run -- and checks the engine's degraded-mode
contract:

* ``refresh()`` never raises, whatever the fault mix;
* the overall quality score is monotone (non-increasing) in the drop
  rate, and 1.0 only without faults;
* once faults stop, the analysis recovers service paths identical to a
  fault-free twin of the same seed within two refreshes.

When ``TRANSPORT_SWEEP_JSON`` is set, the sweep writes its per-rate
summary there (CI uploads it as a workflow artifact).
"""

import json
import os

import pytest

from repro.apps.rubis import build_rubis
from repro.config import PathmapConfig, TransportConfig
from repro.core.engine import E2EProfEngine
from repro.tracing.transport import FaultyChannel

pytestmark = pytest.mark.slow

#: Short window (W = 2 dW) so post-fault state fully rotates out of the
#: window within two refreshes -- the recovery bound under test.
CFG = PathmapConfig(
    window=20.0,
    refresh_interval=10.0,
    quantum=1e-3,
    sampling_window=50e-3,
    max_transaction_delay=2.0,
    min_spike_height=0.10,
)

#: Lateness 1 keeps reordered frames' recovery inside the two-refresh
#: bound (a hole is declared, and its straggler patched, one round after
#: the newest frame passes it).
TRANSPORT = TransportConfig(lateness_blocks=1)


def run_pair(seed, channel_kwargs, until=85.0, fault_until=None):
    """Run two same-seed RUBiS twins: one over perfect channels, one over
    channels built from ``channel_kwargs`` (faults optionally disabled at
    ``fault_until``). Simulation traffic depends only on the topology
    seed -- the channel RNG is independent -- so both twins carry
    identical packets and any analysis difference is the transport's.
    """
    runs = {}
    for label, kwargs in (("baseline", {}), ("faulty", channel_kwargs)):
        rubis = build_rubis(
            dispatch="affinity", seed=seed, request_rate=10.0, config=CFG
        )
        channels = {}

        def factory(node, _kwargs=kwargs, _channels=channels):
            channel = FaultyChannel(
                seed=sum(node.encode()) * 7919 + 13, **_kwargs
            )
            _channels[node] = channel
            return channel

        engine = E2EProfEngine(CFG, transport=TRANSPORT, channel_factory=factory)
        engine.attach(rubis.topology)
        history = []
        engine.subscribe(
            lambda now, result, _h=history: _h.append((now, result))
        )
        if fault_until is not None and label == "faulty":
            rubis.run_until(fault_until)
            for channel in channels.values():
                channel.set_faults(
                    drop=0.0, duplicate=0.0, reorder=0.0, corrupt=0.0,
                    delay=0.0, down=False,
                )
        rubis.run_until(until)
        runs[label] = (engine, history, channels)
    return runs


def paths_of(result):
    return sorted(
        str(path) for graph in result.graphs.values() for path in graph.paths()
    )


class TestDropSweep:
    def test_quality_monotone_in_drop_rate(self):
        """Sweep drop 0..30%: no refresh ever raises, quality degrades
        monotonically with the drop rate, and every fault run reports a
        score below the fault-free 1.0."""
        rates = [0.0, 0.05, 0.10, 0.20, 0.30]
        summary = []
        mean_qualities = []
        for rate in rates:
            rubis = build_rubis(
                dispatch="affinity", seed=31, request_rate=10.0, config=CFG
            )
            engine = E2EProfEngine(
                CFG,
                transport=TRANSPORT,
                channel_factory=lambda node, _r=rate: FaultyChannel(
                    seed=sum(node.encode()), drop=_r, reorder=0.05
                ),
            )
            engine.attach(rubis.topology)
            qualities = []
            engine.subscribe(
                lambda now, result, _q=qualities: _q.append(result.quality)
            )
            rubis.run_until(125.0)  # 12 refreshes, no exception allowed
            assert len(qualities) == 12
            # Skip the warm-up refresh: gap accounting needs one round of
            # stream history before silence is attributable to loss.
            mean = sum(qualities[1:]) / len(qualities[1:])
            mean_qualities.append(mean)
            summary.append(
                {
                    "drop_rate": rate,
                    "mean_quality": mean,
                    "min_quality": min(qualities),
                    "refreshes": len(qualities),
                    "totals": engine._receiver.totals(),
                }
            )
        assert mean_qualities[0] == 1.0
        for lower_rate, higher_rate in zip(mean_qualities, mean_qualities[1:]):
            assert higher_rate <= lower_rate + 1e-9
        assert all(q < 1.0 for q in mean_qualities[1:])
        out = os.environ.get("TRANSPORT_SWEEP_JSON")
        if out:
            with open(out, "w", encoding="utf-8") as handle:
                json.dump({"seed": 31, "sweep": summary}, handle, indent=2)


class TestFaultSoak:
    @pytest.mark.parametrize(
        "faults",
        [
            {"drop": 0.10, "reorder": 0.10},
            {"drop": 0.30, "duplicate": 0.20},
            {"reorder": 0.30, "delay": 0.20, "max_delay_rounds": 3},
            {"corrupt": 0.20, "drop": 0.05},
            {"drop": 0.15, "duplicate": 0.15, "reorder": 0.15,
             "corrupt": 0.10, "delay": 0.10},
        ],
        ids=["drop+reorder", "heavy-drop+dup", "reorder+delay",
             "corrupt+drop", "everything"],
    )
    def test_engine_survives_fault_mix(self, faults):
        """Every fault cocktail: 10 refreshes, zero exceptions, graphs
        still produced, degradation visible in the score."""
        rubis = build_rubis(
            dispatch="affinity", seed=47, request_rate=10.0, config=CFG
        )
        engine = E2EProfEngine(
            CFG,
            transport=TRANSPORT,
            channel_factory=lambda node: FaultyChannel(
                seed=sum(node.encode()) + 1, **faults
            ),
        )
        engine.attach(rubis.topology)
        results = []
        engine.subscribe(lambda now, result: results.append(result))
        rubis.run_until(105.0)
        assert len(results) == 10
        assert any(r.stats.graphs == 2 for r in results)
        assert min(r.quality for r in results) < 1.0
        # Corrupt frames were swallowed, never raised.
        if faults.get("corrupt"):
            assert engine._receiver.corrupt_blocks > 0

    def test_acceptance_criterion_ten_pct_drop_reorder(self):
        """ISSUE acceptance: seeded 10% drop + reorder on RUBiS --
        refresh() completes every cycle, per-edge DataQuality and an
        overall score < 1.0 are reported, and service paths recover
        byte-identical to the fault-free twin within two refreshes of
        the faults stopping."""
        runs = run_pair(
            seed=42,
            channel_kwargs={"drop": 0.10, "reorder": 0.10},
            until=125.0,
            fault_until=65.0,
        )
        base_engine, base_history, _ = runs["baseline"]
        faulty_engine, faulty_history, _ = runs["faulty"]
        assert len(faulty_history) == len(base_history) == 12
        # Degradation was observed and reported while faults were live.
        fault_window = [r for now, r in faulty_history if now <= 65.0]
        assert min(r.quality for r in fault_window) < 1.0
        degraded = [r for r in fault_window if r.degraded_edges()]
        assert degraded, "no per-edge DataQuality verdicts surfaced"
        for result in degraded:
            for quality in result.degraded_edges().values():
                assert 0.0 <= quality.gap_ratio <= 1.0
        # Recovery: within two refreshes of the faults stopping the
        # analysis output is identical to the never-faulted twin.
        recovered = [
            (now, result) for now, result in faulty_history if now > 65.0 + 2 * CFG.refresh_interval
        ]
        baseline = {now: result for now, result in base_history}
        assert recovered
        for now, result in recovered:
            assert paths_of(result) == paths_of(baseline[now])
            assert result.quality == 1.0

    def test_tracer_kill_and_restart_mid_run(self):
        """Kill one tracer (black-holed link) mid-run: its edges go
        stale and the score drops; restart it (epoch bump) and lift the
        outage: the analysis converges back to the fault-free twin."""
        seed = 58
        rubis = build_rubis(
            dispatch="affinity", seed=seed, request_rate=10.0, config=CFG
        )
        channels = {}

        def factory(node):
            channels[node] = FaultyChannel()
            return channels[node]

        engine = E2EProfEngine(CFG, transport=TRANSPORT, channel_factory=factory)
        engine.attach(rubis.topology)
        history = []
        engine.subscribe(lambda now, result: history.append((now, result)))

        twin = build_rubis(
            dispatch="affinity", seed=seed, request_rate=10.0, config=CFG
        )
        twin_engine = E2EProfEngine(CFG, transport=TRANSPORT)
        twin_engine.attach(twin.topology)
        twin_history = []
        twin_engine.subscribe(
            lambda now, result: twin_history.append((now, result))
        )

        rubis.run_until(25.0)
        twin.run_until(25.0)
        channels["DS"].set_faults(down=True)  # kill
        rubis.run_until(75.0)
        twin.run_until(75.0)
        assert engine._tracer_states.get("DS") in ("lagging", "dead")
        assert engine.quality_score < 1.0
        stale = {
            edge
            for edge, q in engine.latest_edge_quality.items()
            if q.state == "stale"
        }
        assert any("DS" in edge for edge in stale)
        # Restart the tracer and heal the link.
        engine.restart_tracer("DS")
        channels["DS"].set_faults(down=False)
        rubis.run_until(125.0)
        twin.run_until(125.0)
        assert engine.transport_summary()["links"]["DS"]["epoch"] == 1
        # No pre-restart block was resurrected into the analysis.
        assert engine._receiver.totals()["stale_epoch_drops"] == 0
        # Converged back to the twin.
        final = dict(history)
        twin_final = dict(twin_history)
        for now in sorted(final)[-2:]:
            assert paths_of(final[now]) == paths_of(twin_final[now])
        assert engine.quality_score == 1.0
        assert engine._tracer_states.get("DS") == "live"


class TestDeterminism:
    def test_same_seed_same_chaos(self):
        """The whole chaos pipeline is reproducible: same seeds, same
        qualities, same transport totals."""

        def run():
            rubis = build_rubis(
                dispatch="affinity", seed=5, request_rate=10.0, config=CFG
            )
            engine = E2EProfEngine(
                CFG,
                transport=TRANSPORT,
                channel_factory=lambda node: FaultyChannel(
                    seed=sum(node.encode()), drop=0.2, reorder=0.2,
                    duplicate=0.1, corrupt=0.1,
                ),
            )
            engine.attach(rubis.topology)
            qualities = []
            engine.subscribe(
                lambda now, result: qualities.append(result.quality)
            )
            rubis.run_until(85.0)
            return qualities, engine._receiver.totals()

        assert run() == run()
