"""Property-based tests on the trace collector and its windows."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PathmapConfig
from repro.core.correlation import _as_sparse
from repro.tracing.collector import TraceCollector
from repro.tracing.records import CaptureRecord

CFG = PathmapConfig(
    window=10.0,
    refresh_interval=5.0,
    quantum=1e-2,
    sampling_window=5e-2,
    max_transaction_delay=2.0,
)

def make_records(draw_data):
    """Build valid records from raw (ts, src_idx, dst_idx, side) tuples."""
    nodes = ["C", "A", "B", "D"]
    records = []
    for ts, src_i, dst_i, at_dst in draw_data:
        src, dst = nodes[src_i], nodes[dst_i]
        if src == dst:
            continue
        observer = dst if at_dst else src
        records.append(CaptureRecord(ts, src, dst, observer))
    return records


raw_tuples = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
        st.booleans(),
    ),
    max_size=60,
)


class TestCollectorProperties:
    @given(raw_tuples)
    @settings(max_examples=60, deadline=None)
    def test_edge_timestamps_sorted_and_complete(self, raw):
        records = make_records(raw)
        collector = TraceCollector(client_nodes=["C"])
        collector.ingest_many(records)
        assert collector.record_count() == len(records)
        for src, dst in collector.edges():
            stamps = collector.edge_timestamps(src, dst)
            assert stamps.tolist() == sorted(stamps.tolist())

    @given(raw_tuples, st.floats(min_value=5.0, max_value=30.0))
    @settings(max_examples=60, deadline=None)
    def test_window_series_contains_only_in_window_mass(self, raw, end):
        records = make_records(raw)
        collector = TraceCollector(client_nodes=["C"])
        collector.ingest_many(records)
        window = collector.window(CFG, end_time=end, start_time=end - 5.0)
        for src, dst in window.active_edges():
            series = _as_sparse(window.edge_series(src, dst))
            # Series window matches the requested range exactly.
            assert series.start == int(np.floor((end - 5.0) / CFG.quantum))
            assert series.length == 500
            # Mass only where messages (or their boxcar smear) can be.
            stamps = collector.edge_timestamps(src, dst)
            in_reach = [
                t for t in stamps
                if end - 5.0 - CFG.sampling_window <= t <= end + CFG.sampling_window
            ]
            if not in_reach:
                assert series.nnz == 0

    @given(raw_tuples)
    @settings(max_examples=40, deadline=None)
    def test_export_roundtrip_property(self, raw):
        records = make_records(raw)
        collector = TraceCollector(client_nodes=["C"])
        collector.ingest_many(records)
        clone = TraceCollector(client_nodes=["C"])
        clone.ingest_many(collector.export_records())
        assert clone.edges() == collector.edges()
        for src, dst in collector.edges():
            for prefer in (True, False):
                assert clone.edge_timestamps(src, dst, prefer).tolist() == \
                    collector.edge_timestamps(src, dst, prefer).tolist()

    @given(raw_tuples)
    @settings(max_examples=40, deadline=None)
    def test_active_edges_iff_traffic_in_window(self, raw):
        records = make_records(raw)
        collector = TraceCollector(client_nodes=["C"])
        collector.ingest_many(records)
        window = collector.window(CFG, end_time=20.0, start_time=10.0)
        active = set(window.active_edges())
        for src, dst in collector.edges():
            stamps = collector.edge_timestamps(src, dst)
            has_traffic = any(10.0 <= t < 20.0 for t in stamps)
            assert ((src, dst) in active) == has_traffic
