"""Tests for latency monitoring and client comparison."""

import pytest

from repro.core.pathmap import PathmapResult, PathmapStats
from repro.core.service_graph import ServiceGraph
from repro.management.monitor import (
    LatencyComparison,
    LatencyMonitor,
    server_side_latency,
)


def graph_with_response(e2e=0.050):
    g = ServiceGraph("C", "WS")
    g.add_edge("WS", "DB", [0.010])
    g.add_edge("DB", "WS", [e2e - 0.005])
    g.add_edge("WS", "C", [e2e])
    return g


def result_of(graph):
    return PathmapResult({(graph.client, graph.root): graph}, PathmapStats())


class TestServerSideLatency:
    def test_uses_response_edge(self):
        assert server_side_latency(graph_with_response(0.050)) == pytest.approx(0.050)

    def test_falls_back_to_deepest_edge(self):
        g = ServiceGraph("C", "WS")
        g.add_edge("WS", "DB", [0.030])
        assert server_side_latency(g) == pytest.approx(0.030)


class TestLatencyMonitor:
    def test_records_series(self):
        monitor = LatencyMonitor()
        monitor.record(60.0, result_of(graph_with_response(0.050)))
        monitor.record(120.0, result_of(graph_with_response(0.070)))
        series = monitor.latency_series(("C", "WS"))
        assert series == [(60.0, pytest.approx(0.050)), (120.0, pytest.approx(0.070))]

    def test_mean_latency_windowed(self):
        monitor = LatencyMonitor()
        monitor.record(60.0, result_of(graph_with_response(0.050)))
        monitor.record(120.0, result_of(graph_with_response(0.070)))
        assert monitor.mean_latency(("C", "WS")) == pytest.approx(0.060)
        assert monitor.mean_latency(("C", "WS"), since=100.0) == pytest.approx(0.070)

    def test_unknown_class(self):
        assert LatencyMonitor().mean_latency(("X", "Y")) == 0.0


class TestComparison:
    def test_overhead_computation(self):
        comparison = LatencyComparison("bid", e2eprof_latency=0.050,
                                       client_latency=0.058, samples=100)
        assert comparison.client_overhead == pytest.approx(0.16)

    def test_zero_server_latency(self):
        comparison = LatencyComparison("bid", 0.0, 0.05, 10)
        assert comparison.client_overhead == 0.0
