"""The dense-regime FFT batch kernel and its dispatch plumbing.

Four contracts behind the ``fft_batch`` kernel (paper Section 3.5: the
FFT path is only admissible because it computes the *same* normalized
cross-correlation):

* The primitives (``fft_length``, ``fft_lag_products``,
  ``fft_batch_lag_products``) match the exact direct kernels within the
  documented float tolerance on adversarial inputs -- all-zero rows,
  single spikes, non-power-of-two windows, ``max_lag >= n``, offset
  blocks on both sides.
* Overlap-add increments: a sliding correlator fed per-block FFT pair
  vectors equals a full-window recompute -- the invariant that lets the
  online engine do only the newest dW block's work per refresh.
* The :class:`SpectrumCache` is transparent -- hits return bitwise the
  array a recompute would -- and the three-way ``choose_batch_kernel``
  routes by the modeled/measured cost frontier.
* End to end, ``fft_dispatch`` in {auto, off, force} changes refresh
  cost only: graphs agree across modes within tolerance, and auto mode
  stays bit-identical across serial/threads/processes execution.
"""

import dataclasses

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.config import PathmapConfig
from repro.core.correlation import (
    MODELED_RLE_COST_RATIO,
    SpectrumCache,
    batch_lag_products,
    choose_batch_kernel,
    correlate_batch,
    correlate_dense,
    correlate_fft_batch,
    fft_batch_lag_products,
    fft_dispatch_units,
    fft_length,
    fft_lag_products,
    sparse_lag_products,
)
from repro.core.engine import E2EProfEngine
from repro.core.incremental import IncrementalCorrelator
from repro.core.timeseries import DensityTimeSeries
from repro.errors import AnalysisError, ConfigError, CorrelationError
from repro.obs.ledger import KERNEL_FFT_BATCH

from tests.test_engine_parallel import CFG, run_engine

QUANTUM = 1e-3

#: Documented tolerance of the FFT kernels against exact direct kernels
#: (see docs/PERFORMANCE.md): relative to the lag-product scale, which
#: for quarter-integer test densities stays well under 1e-9 absolute.
FFT_TOL = dict(rtol=1e-9, atol=1e-9)

#: Dense-regime engine config: 5 ms smearing fills the blocks, the
#: regime where auto dispatch actually routes rows to the FFT kernel.
DENSE_CFG = dataclasses.replace(CFG, sampling_window=5e-3)


def series(dense, start=0):
    return DensityTimeSeries.from_dense(
        np.asarray(dense, dtype=np.float64), start, QUANTUM
    )


#: Mostly-zero quarter-integer densities (same rationale as
#: tests/test_correlation_properties.py: exact in float64, so degenerate
#: detection and normalization stay well-conditioned).
density_values = st.lists(
    st.one_of(
        st.just(0.0),
        st.integers(min_value=0, max_value=200).map(lambda k: k / 4.0),
    ),
    min_size=2,
    max_size=96,
)


def brute_force_5smooth(n):
    k = n
    while True:
        r = k
        for p in (2, 3, 5):
            while r % p == 0:
                r //= p
        if r == 1:
            return k
        k += 1


class TestFftLength:
    @given(n=st.integers(min_value=1, max_value=4096))
    def test_minimal_5smooth_at_least_n(self, n):
        got = fft_length(n)
        assert got >= n
        assert got == brute_force_5smooth(n)

    def test_powers_of_two_are_fixed_points(self):
        for k in range(12):
            assert fft_length(1 << k) == 1 << k

    def test_non_pow2_padding_is_tight(self):
        # The sizes the kernel actually plans: 2n-1 for n-quantum blocks.
        assert fft_length(4001) == 4050  # 2 * 3^4 * 5^2, not 4096
        assert fft_length(2 * 2000 - 1) == 4000


class TestFftDispatchUnits:
    def test_default_size_matches_explicit(self):
        n = 37
        size = fft_length(2 * n - 1)
        assert fft_dispatch_units(n) == fft_dispatch_units(n, size)

    def test_units_grow_with_window(self):
        assert fft_dispatch_units(2000) > fft_dispatch_units(200) > 0.0


class TestFftLagProducts:
    @given(xs=density_values, ys=density_values, lag=st.integers(0, 128))
    def test_matches_sparse_kernel(self, xs, ys, lag):
        n = min(len(xs), len(ys))
        x, y = series(xs[:n]), series(ys[:n])
        got = fft_lag_products(x.to_dense(), y.to_dense(), lag)
        want = sparse_lag_products(x, y, lag)
        assert got.shape == want.shape
        np.testing.assert_allclose(got, want, **FFT_TOL)

    def test_lags_beyond_support_are_exact_zeros(self):
        # max_lag >= n: every lag past m-1 has no sample pair, and must
        # be 0.0 exactly, not irfft roundoff read from the padding.
        x = series([1.0, 2.0, 0.0, 3.0, 0.5])
        y = series([0.0, 1.0, 4.0, 0.0, 2.0])
        got = fft_lag_products(x.to_dense(), y.to_dense(), 12)
        assert got.shape == (13,)
        assert np.all(got[5:] == 0.0)
        np.testing.assert_allclose(got, sparse_lag_products(x, y, 12), **FFT_TOL)

    def test_all_zero_and_single_spike(self):
        n = 53  # deliberately prime: no power-of-two luck
        zeros = [0.0] * n
        spike = [0.0] * n
        spike[17] = 3.0
        for xs, ys in [(zeros, zeros), (spike, zeros), (spike, spike)]:
            got = fft_lag_products(
                np.asarray(xs), np.asarray(ys), n + 5
            )
            want = sparse_lag_products(series(xs), series(ys), n + 5)
            np.testing.assert_allclose(got, want, **FFT_TOL)

    def test_undersized_plan_rejected(self):
        x = np.ones(16)
        with pytest.raises(CorrelationError):
            fft_lag_products(x, x, 4, size=16)  # needs 31

    def test_shared_plan_size_changes_nothing(self):
        rng = np.random.default_rng(1)
        x = rng.integers(0, 4, size=30).astype(float)
        y = rng.integers(0, 4, size=30).astype(float)
        default = fft_lag_products(x, y, 20)
        padded = fft_lag_products(x, y, 20, size=fft_length(2 * 64 - 1))
        np.testing.assert_allclose(default, padded, **FFT_TOL)


class TestFftBatchLagProducts:
    @given(xs=density_values, rows=st.lists(density_values, min_size=0,
                                            max_size=4),
           lag=st.integers(0, 128))
    def test_rows_match_sparse_kernel(self, xs, rows, lag):
        n = max(2, min([len(xs)] + [len(r) for r in rows] or [len(xs)]))
        pad = lambda v: v[:n] if len(v) >= n else v + [0.0] * (n - len(v))
        x = series(pad(xs))
        ys = [series(pad(r)) for r in rows]
        mat = fft_batch_lag_products(x, ys, lag)
        assert mat.shape == (len(ys), lag + 1)
        for row, y in enumerate(ys):
            np.testing.assert_allclose(
                mat[row], sparse_lag_products(x, y, lag),
                err_msg=f"row {row}", **FFT_TOL,
            )

    @given(
        xs=density_values,
        ys=density_values,
        shift=st.integers(-3, 3),
        lag=st.integers(0, 96),
    )
    def test_offset_blocks_both_signs(self, xs, ys, shift, lag):
        """Absolute-index semantics: the y block may start before or
        after the x block (cross-block products in the sliding window
        hit both signs of the relative shift)."""
        n = max(2, min(len(xs), len(ys)))
        x = series(xs[:n], start=100)
        y = series(ys[:n], start=100 + shift * n)
        mat = fft_batch_lag_products(x, [y], lag)
        np.testing.assert_allclose(
            mat[0], sparse_lag_products(x, y, lag), **FFT_TOL
        )

    def test_out_of_reach_blocks_are_zero(self):
        x = series([1.0, 2.0, 3.0, 4.0], start=0)
        far = series([5.0, 6.0, 7.0, 8.0], start=500)
        mat = fft_batch_lag_products(x, [far], 10)  # lag reach ends at 10
        assert not np.any(mat)

    def test_mixed_windows_rejected(self):
        x = series([1.0] * 8)
        good = series([1.0] * 8, start=8)
        bad = series([1.0] * 8, start=16)
        with pytest.raises(CorrelationError):
            fft_batch_lag_products(x, [good, bad], 4)

    def test_empty_batch(self):
        mat = fft_batch_lag_products(series([1.0, 2.0]), [], 3)
        assert mat.shape == (0, 4)
        assert not np.any(mat)


class TestSpectrumCache:
    def test_hits_are_bitwise_identical_to_recompute(self):
        rng = np.random.default_rng(7)
        x = series(rng.integers(0, 5, size=40).astype(float))
        ys = [series(rng.integers(0, 5, size=40).astype(float), start=40)
              for _ in range(3)]
        cache = SpectrumCache()
        first = fft_batch_lag_products(x, ys, 60, cache=cache)
        assert cache.misses == 4 and cache.hits == 0
        second = fft_batch_lag_products(x, ys, 60, cache=cache)
        assert cache.misses == 4 and cache.hits == 4
        assert np.array_equal(first, second)  # bitwise, not just close
        fresh = fft_batch_lag_products(x, ys, 60)
        assert np.array_equal(first, fresh)

    def test_cached_spectrum_is_the_single_rfft(self):
        x = series([1.0, 0.0, 2.0, 3.0])
        cache = SpectrumCache()
        spec = cache.spectrum(x, 16)
        assert np.array_equal(spec, np.fft.rfft(x.to_dense(), 16))
        assert cache.spectrum(x, 16) is spec  # hit returns the same array
        assert cache.nbytes == spec.nbytes
        assert len(cache) == 1

    def test_evict_before_drops_stale_blocks(self):
        cache = SpectrumCache()
        old = series([1.0, 2.0], start=0)
        new = series([3.0, 4.0], start=100)
        cache.spectrum(old, 8)
        cache.spectrum(new, 8)
        assert cache.evict_before(50) == 1
        assert len(cache) == 1
        cache.spectrum(new, 8)
        assert cache.hits == 1  # the surviving entry still serves

    def test_distinct_sizes_are_distinct_entries(self):
        cache = SpectrumCache()
        x = series([1.0, 2.0, 3.0])
        cache.spectrum(x, 8)
        cache.spectrum(x, 16)
        assert len(cache) == 2 and cache.misses == 2


class TestChooseBatchKernel:
    def test_no_fft_estimate_falls_back_to_direct_choice(self):
        assert choose_batch_kernel(10.0, 100.0) == "sparse"
        assert choose_batch_kernel(1000.0, 10.0) == "rle"

    def test_modeled_frontier(self):
        # Direct cost is min(sparse, 4*rle); fft wins strictly below it.
        direct = min(100.0, MODELED_RLE_COST_RATIO * 40.0)
        assert choose_batch_kernel(100.0, 40.0, fft_units=direct - 1) == "fft"
        assert choose_batch_kernel(100.0, 40.0, fft_units=direct) == "sparse"
        assert choose_batch_kernel(1000.0, 40.0, fft_units=200.0) == "rle"

    def test_measured_frontier_requires_all_three_ewmas(self):
        # Only two EWMAs warm: stay on the modeled comparison.
        assert choose_batch_kernel(
            100.0, 40.0, fft_units=1000.0, ns_sparse=1.0, ns_rle=1.0
        ) != "fft"
        # All three warm: measured nanoseconds decide.
        assert choose_batch_kernel(
            100.0, 40.0, fft_units=1000.0,
            ns_sparse=10.0, ns_rle=10.0, ns_fft=0.1,
        ) == "fft"
        assert choose_batch_kernel(
            10.0, 40.0, fft_units=10.0,
            ns_sparse=1.0, ns_rle=1.0, ns_fft=100.0,
        ) == "sparse"


class TestOverlapAddIncrement:
    """Incremental FFT pair vectors == full-window recompute."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 100), num_blocks=st.integers(1, 4),
           lag=st.integers(0, 80))
    def test_incremental_fft_equals_full_recompute(self, seed, num_blocks,
                                                   lag):
        rng = np.random.default_rng(seed)
        block_len = 24
        fft_corr = IncrementalCorrelator(
            max_lag=lag, num_blocks=num_blocks, quantum=QUANTUM
        )
        exact_corr = IncrementalCorrelator(
            max_lag=lag, num_blocks=num_blocks, quantum=QUANTUM
        )
        for step in range(num_blocks + 2):  # slide past the first eviction
            dense_x = rng.integers(0, 4, size=block_len).astype(float)
            dense_y = rng.integers(0, 4, size=block_len).astype(float)
            x_block = series(dense_x, start=step * block_len)
            y_block = series(dense_y, start=step * block_len)
            # The overlap-add step: only the new block's pair products
            # are computed, each cross pair through the FFT batch kernel
            # on absolute indices.
            vectors = [
                fft_batch_lag_products(p_block, [y_block], lag)[0]
                for p_block in fft_corr.pending_pair_blocks()
            ]
            vectors.append(fft_batch_lag_products(x_block, [y_block], lag)[0])
            fft_corr.append(x_block, y_block, pair_vectors=vectors)
            exact_corr.append(x_block, y_block)

            got = fft_corr.correlation()
            want = exact_corr.correlation()
            assert got.n == want.n
            assert got.degenerate == want.degenerate
            np.testing.assert_allclose(got.values, want.values, **FFT_TOL)

    def test_full_window_recompute_reference(self):
        """And the exact correlator itself equals correlate_dense over
        the concatenated window, closing the chain fft -> incremental ->
        full recompute."""
        rng = np.random.default_rng(3)
        corr = IncrementalCorrelator(max_lag=30, num_blocks=3, quantum=QUANTUM)
        for step in range(5):
            xb = series(rng.integers(0, 4, size=20).astype(float),
                        start=step * 20)
            yb = series(rng.integers(0, 4, size=20).astype(float),
                        start=step * 20)
            vectors = [
                fft_batch_lag_products(p, [yb], 30)[0]
                for p in corr.pending_pair_blocks()
            ]
            vectors.append(fft_batch_lag_products(xb, [yb], 30)[0])
            corr.append(xb, yb, pair_vectors=vectors)
        xw, yw = corr.window_series()
        want = correlate_dense(xw, yw, 30)
        got = corr.correlation()
        np.testing.assert_allclose(got.values, want.values, **FFT_TOL)


class TestCorrelateFftBatch:
    @given(xs=density_values, rows=st.lists(density_values, min_size=1,
                                            max_size=3))
    def test_matches_direct_batch_and_dense(self, xs, rows):
        n = max(2, min([len(xs)] + [len(r) for r in rows]))
        pad = lambda v: v[:n] if len(v) >= n else v + [0.0] * (n - len(v))
        x = series(pad(xs))
        ys = [series(pad(r)) for r in rows]
        got = correlate_fft_batch(x, ys)
        direct = correlate_batch(x, ys)
        assert len(got) == len(ys)
        for row, y in enumerate(ys):
            ref = correlate_dense(x, y, None)
            assert got[row].degenerate == ref.degenerate, f"row {row}"
            np.testing.assert_allclose(
                got[row].values, ref.values, err_msg=f"row {row} vs dense",
                **FFT_TOL,
            )
            np.testing.assert_allclose(
                got[row].values, direct[row].values,
                err_msg=f"row {row} vs batch", **FFT_TOL,
            )

    def test_window_mismatch_rejected(self):
        x = series([1.0] * 8)
        with pytest.raises(Exception):
            correlate_fft_batch(x, [series([1.0] * 8, start=3)])


def run_dense_engine(seed=4, end_time=14.0, classes=4, **engine_kwargs):
    """A genuinely dense workload: 120 req/s smeared over 5 quanta fills
    the blocks, pushing the direct kernels' pair estimates past the FFT
    kernel's fixed ``size * log2(size)`` cost so auto dispatch actually
    flips (``run_engine``'s 10 req/s stays in sparse territory)."""
    from repro.apps.manyclass import build_many_class

    deployment = build_many_class(
        classes=classes,
        quiet_fraction=0.0,
        seed=seed,
        request_rate=120.0,
        quiet_after=None,
        config=DENSE_CFG,
    )
    engine = E2EProfEngine(DENSE_CFG, **engine_kwargs)
    samples = []
    engine.subscribe_metrics(lambda now, result, sample: samples.append(sample))
    engine.attach(deployment.topology)
    deployment.run_until(end_time)
    engine.detach()
    assert engine.latest_result is not None
    return engine, samples


class TestEngineFftDispatch:
    """End-to-end: fft_dispatch changes cost, never analysis output."""

    def graphs_of(self, engine):
        return {k: g.to_dict() for k, g in engine.latest_result.graphs.items()}

    def test_force_matches_off_within_tolerance(self):
        off, _ = run_dense_engine(fft_dispatch="off")
        force, _ = run_dense_engine(fft_dispatch="force")
        g_off, g_force = self.graphs_of(off), self.graphs_of(force)
        assert set(g_off) == set(g_force)
        for key in g_off:
            edges_off = {(e["src"], e["dst"]): e["delays"]
                         for e in g_off[key]["edges"]}
            edges_force = {(e["src"], e["dst"]): e["delays"]
                           for e in g_force[key]["edges"]}
            assert set(edges_off) == set(edges_force), key
            for edge, delays in edges_off.items():
                np.testing.assert_allclose(
                    edges_force[edge], delays, atol=1e-9,
                    err_msg=f"{key} {edge}",
                )
        assert off.latest_result.stats.spikes == force.latest_result.stats.spikes

    def test_auto_routes_dense_rows_to_fft_and_matches_off(self):
        auto, _ = run_dense_engine(fft_dispatch="auto")
        off, _ = run_dense_engine(fft_dispatch="off")
        rows = sum(
            led.kernel(KERNEL_FFT_BATCH).rows for led in auto.ledger.history()
        )
        assert rows > 0, "dense workload must route rows to the FFT kernel"
        assert self.graphs_of(auto) == self.graphs_of(off)  # bit-identical:
        # modeled auto-routing picks a kernel per row, and on this
        # workload FFT-routed rows produce delays that quantize onto the
        # same spikes as the direct kernels.

    def test_off_never_touches_fft_kernel(self):
        engine, _ = run_dense_engine(fft_dispatch="off", end_time=12.0)
        assert all(
            led.kernel(KERNEL_FFT_BATCH).rows == 0
            for led in engine.ledger.history()
        )

    def test_auto_is_bit_identical_across_parallel_modes(self):
        kwargs = dict(end_time=12.0, fft_dispatch="auto")
        serial, s_samples = run_dense_engine(workers=1, **kwargs)
        threads, t_samples = run_dense_engine(parallel="threads", workers=3,
                                              **kwargs)
        procs, p_samples = run_dense_engine(parallel="processes", shards=2,
                                            **kwargs)
        base = self.graphs_of(serial)
        assert self.graphs_of(threads) == base
        assert self.graphs_of(procs) == base
        for other in (t_samples, p_samples):
            assert len(other) == len(s_samples)
            for s, o in zip(s_samples, other):
                assert s.correlations == o.correlations
                assert s.spikes == o.spikes

    def test_spectra_cache_warms_and_stays_bounded(self):
        engine, _ = run_dense_engine(fft_dispatch="force", end_time=16.0)
        cache = engine._spectra
        assert cache.hits > 0, "refresh overlap must re-serve cached spectra"
        # Eviction bounds residency to the live block history: with 2 s
        # blocks and a 6 s window no more than 3 blocks per series side
        # stay resident, so the cache cannot grow with run length.
        assert len(cache) <= 4 * (engine._num_blocks + 1) * 10


class TestFftDispatchPlumbing:
    def test_config_validates_mode(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(CFG, fft_dispatch="fast")

    def test_engine_validates_mode(self):
        with pytest.raises(AnalysisError):
            E2EProfEngine(CFG, fft_dispatch="fast")

    def test_config_flows_and_param_wins(self):
        assert E2EProfEngine(CFG).fft_dispatch == "auto"
        cfg = dataclasses.replace(CFG, fft_dispatch="off")
        assert E2EProfEngine(cfg).fft_dispatch == "off"
        assert E2EProfEngine(cfg, fft_dispatch="force").fft_dispatch == "force"

    def test_default_config_value(self):
        assert PathmapConfig().fft_dispatch == "auto"
