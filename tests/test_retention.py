"""Tests for bounded trace retention in the columnar collector.

Retention must keep resident memory flat under sustained ingest while
leaving every analysis over the retained horizon bit-identical to an
unbounded collector's -- eviction may only ever drop data the window can
no longer reach.
"""

import numpy as np
import pytest

from repro.config import PathmapConfig
from repro.errors import ConfigError, TraceError
from repro.obs import MetricsRegistry, snapshot
from repro.tracing.collector import TraceCollector

CFG = PathmapConfig(
    window=10.0,
    refresh_interval=5.0,
    quantum=1e-2,
    sampling_window=5e-2,
    max_transaction_delay=2.0,
    retention=30.0,
)


def series_key(series):
    """Comparable content of an RLE series."""
    return (
        series.start,
        series.length,
        series.quantum,
        series.starts.tolist(),
        series.counts.tolist(),
        series.values.tolist(),
    )


def synthetic_stream(seed=0, duration=300.0, rate=40.0):
    """Per-edge timestamp arrays of a three-edge synthetic workload."""
    rng = np.random.default_rng(seed)
    edges = [("C", "WS"), ("WS", "DB"), ("WS", "C")]
    return {
        edge: np.sort(rng.uniform(0.0, duration, size=int(duration * rate)))
        for edge in edges
    }


class TestRetentionConfig:
    def test_default_horizon(self):
        config = PathmapConfig(window=60.0, max_transaction_delay=10.0)
        assert config.retention_horizon == 3 * 60.0 + 10.0

    def test_explicit_retention_wins(self):
        assert CFG.retention_horizon == 30.0

    def test_retention_floor_enforced(self):
        with pytest.raises(ConfigError):
            PathmapConfig(window=60.0, max_transaction_delay=10.0, retention=69.0)

    def test_collector_rejects_non_positive_retention(self):
        with pytest.raises(TraceError):
            TraceCollector(retention=0.0)


class TestBoundedResidency:
    def test_resident_records_stay_flat_under_sustained_ingest(self):
        registry = MetricsRegistry(enabled=True)
        collector = TraceCollector(metrics=registry, retention=30.0)
        rng = np.random.default_rng(1)
        peak = 0
        # 100 simulated seconds at ~2000 records/s, batched per second.
        for second in range(100):
            stamps = rng.uniform(second, second + 1.0, size=2000)
            collector.ingest_batch("A", "B", stamps)
            collector.evict_expired()
            peak = max(peak, collector.record_count())
        stats = collector.ingest_stats()
        assert stats["records_ingested"] == 200_000
        assert stats["records_evicted"] + stats["resident_records"] == 200_000
        # Flat residency: never much more than retention * rate resident.
        assert peak <= 2000 * 32
        assert stats["resident_records"] <= 2000 * 32
        gauge = snapshot(registry)["collector_resident_records"][""]["value"]
        assert gauge == stats["resident_records"]

    def test_eviction_respects_horizon_exactly(self):
        collector = TraceCollector(retention=10.0)
        collector.ingest_batch("A", "B", np.arange(0.0, 100.0))
        collector.evict_expired()
        resident = collector.edge_timestamps("A", "B")
        # Newest is 99.0; everything >= 89.0 must survive.
        assert resident[0] >= 89.0 - 1e-9
        assert resident[-1] == 99.0
        assert 99.0 - resident[0] <= 10.0 + 1e-9

    def test_per_record_path_triggers_stride_eviction(self):
        from repro.tracing.collector import _EVICT_STRIDE

        collector = TraceCollector(retention=5.0)
        for i in range(_EVICT_STRIDE + 10):
            collector.ingest_point(float(i) * 0.01, "A", "B", True)
        # The automatic sweep fired at the stride boundary.
        assert collector.ingest_stats()["records_evicted"] > 0

    def test_window_materialization_evicts(self):
        collector = TraceCollector(retention=30.0)
        collector.ingest_batch("C", "WS", np.arange(0.0, 100.0))
        collector.window(CFG, end_time=100.0)
        assert collector.ingest_stats()["records_evicted"] > 0


class TestRetainedAnalysisUnchanged:
    def test_window_results_identical_to_unbounded_collector(self):
        stream = synthetic_stream()
        unbounded = TraceCollector(client_nodes=["C"])
        bounded = TraceCollector(client_nodes=["C"], retention=CFG.retention_horizon)
        rng = np.random.default_rng(2)
        for (src, dst), stamps in stream.items():
            for lo in range(0, stamps.size, 500):
                chunk = stamps[lo : lo + 500]
                unbounded.ingest_batch(src, dst, chunk)
                bounded.ingest_batch(src, dst, chunk)
                if rng.random() < 0.5:
                    bounded.evict_expired()
        assert bounded.ingest_stats()["records_evicted"] > 0
        end = 300.0
        window_a = unbounded.window(CFG, end_time=end)
        window_b = bounded.window(CFG, end_time=end)
        assert window_a.active_edges() == window_b.active_edges()
        assert window_a.front_end_nodes() == window_b.front_end_nodes()
        for src, dst in window_a.active_edges():
            assert series_key(window_a.edge_series(src, dst)) == series_key(
                window_b.edge_series(src, dst)
            )

    def test_batched_and_per_record_ingest_produce_identical_windows(self):
        stream = synthetic_stream(seed=5, duration=60.0)
        per_record = TraceCollector(client_nodes=["C"])
        batched = TraceCollector(client_nodes=["C"], retention=CFG.retention_horizon)
        for (src, dst), stamps in stream.items():
            for t in stamps:
                per_record.ingest_point(float(t), src, dst, True)
            shuffled = stamps.copy()
            np.random.default_rng(3).shuffle(shuffled)
            batched.ingest_batch(src, dst, shuffled)
        window_a = per_record.window(CFG, end_time=60.0)
        window_b = batched.window(CFG, end_time=60.0)
        assert window_a.active_edges() == window_b.active_edges()
        for src, dst in window_a.active_edges():
            assert series_key(window_a.edge_series(src, dst)) == series_key(
                window_b.edge_series(src, dst)
            )
