"""Tests for the refresh cost ledger (repro.obs.ledger).

Covers the recorder's unit behavior (EWMAs, stage/kernel tallies,
disabled no-op contract), the JSON round-trip of ledger records, and the
engine integration: every :class:`PathmapResult` of a live engine must
carry a complete ledger, flight-recorder frames and the Perfetto export
must reflect it, and the new stage histograms must reach the Prometheus
exposition.
"""

import json

import pytest

from repro import E2EProfEngine, PathmapConfig, build_rubis
from repro.analysis.top import render_profile, render_top
from repro.errors import ObservabilityError
from repro.obs import MetricsRegistry, chrome_trace
from repro.obs.ledger import (
    CORRELATION_KERNELS,
    DEFAULT_LEDGER_HISTORY,
    KERNEL_LEGACY,
    KERNEL_RLE,
    KERNEL_SPARSE_BATCH,
    PIPELINE_STAGES,
    STAGE_CORRELATE,
    STAGE_DFS,
    STAGE_INGEST,
    STAGE_PUBLISH,
    Ewma,
    KernelSample,
    LedgerRecorder,
    RefreshLedger,
    StageSample,
)

CFG = PathmapConfig(
    window=60.0,
    refresh_interval=20.0,
    quantum=1e-3,
    sampling_window=50e-3,
    max_transaction_delay=2.0,
    min_spike_height=0.10,
)


@pytest.fixture(scope="module")
def ledger_run():
    """A short instrumented RUBiS run; returns (engine, captured results)."""
    registry = MetricsRegistry(enabled=True)
    rubis = build_rubis(dispatch="affinity", seed=5, request_rate=10.0,
                        config=CFG)
    engine = E2EProfEngine(CFG, metrics=registry)
    engine.tracer.enable()
    results = []
    engine.subscribe(lambda now, result: results.append(result))
    engine.attach(rubis.topology)
    rubis.run_until(85.0)
    assert results
    return engine, results


class TestEwma:
    def test_first_sample_sets_value(self):
        ewma = Ewma(alpha=0.2)
        assert ewma.value is None
        assert ewma.update(10.0) == 10.0
        assert ewma.samples == 1

    def test_moves_toward_new_samples(self):
        ewma = Ewma(alpha=0.5)
        ewma.update(0.0)
        assert ewma.update(10.0) == 5.0
        assert ewma.update(10.0) == 7.5

    def test_constant_input_is_fixed_point(self):
        ewma = Ewma(alpha=0.2)
        for _ in range(50):
            ewma.update(3.25)
        assert ewma.value == 3.25

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_invalid_alpha_rejected(self, alpha):
        with pytest.raises(ObservabilityError):
            Ewma(alpha=alpha)


class TestLedgerRecorder:
    def test_complete_has_all_stages_and_kernels(self):
        rec = LedgerRecorder()
        rec.begin_refresh()
        rec.record_stage(STAGE_INGEST, 0.010, items=4)
        rec.record_kernel(KERNEL_RLE, rows=100, seconds=0.002,
                          work_units=400.0, bytes_touched=2400)
        ledger = rec.complete(10.0, 0, refresh_seconds=0.015,
                              skips=3, cache_hits=7)
        assert set(ledger.stages) == set(PIPELINE_STAGES)
        assert set(ledger.kernels) == set(CORRELATION_KERNELS)
        assert ledger.stage(STAGE_INGEST).items == 4
        assert ledger.stage(STAGE_INGEST).unit == "blocks"
        assert ledger.kernel(KERNEL_RLE).rows == 100
        assert ledger.kernel(KERNEL_RLE).ns_per_row == pytest.approx(20_000.0)
        assert ledger.skips == 3 and ledger.cache_hits == 7
        assert rec.latest is ledger and len(rec) == 1

    def test_stage_recording_is_additive(self):
        rec = LedgerRecorder()
        rec.begin_refresh()
        rec.record_stage(STAGE_PUBLISH, 0.001, items=2)
        rec.record_stage(STAGE_PUBLISH, 0.002, items=3)
        ledger = rec.complete(0.0, 0, refresh_seconds=0.0)
        assert ledger.stage(STAGE_PUBLISH).seconds == pytest.approx(0.003)
        assert ledger.stage(STAGE_PUBLISH).items == 5

    def test_idle_kernel_does_not_touch_ewma(self):
        rec = LedgerRecorder()
        rec.begin_refresh()
        rec.record_kernel(KERNEL_RLE, rows=10, seconds=0.001, work_units=40.0)
        rec.complete(0.0, 0, refresh_seconds=0.0)
        assert rec.ns_per_row(KERNEL_RLE) is not None
        assert rec.ns_per_unit(KERNEL_RLE) is not None
        # sparse batch never ran: EWMAs stay cold across refreshes
        rec.begin_refresh()
        rec.complete(1.0, 1, refresh_seconds=0.0)
        assert rec.ns_per_row(KERNEL_SPARSE_BATCH) is None
        assert rec.ns_per_unit(KERNEL_SPARSE_BATCH) is None

    def test_disabled_recorder_is_a_noop_with_complete_shape(self):
        rec = LedgerRecorder(enabled=False)
        rec.begin_refresh()
        rec.record_stage(STAGE_DFS, 1.0, items=10)
        rec.record_kernel(KERNEL_LEGACY, rows=10, seconds=1.0)
        ledger = rec.complete(5.0, 2, refresh_seconds=1.0)
        assert set(ledger.stages) == set(PIPELINE_STAGES)
        assert set(ledger.kernels) == set(CORRELATION_KERNELS)
        assert ledger.stage(STAGE_DFS).seconds == 0.0
        assert len(rec) == 0 and rec.latest is None

    def test_history_is_bounded(self):
        rec = LedgerRecorder(history=4)
        for i in range(10):
            rec.begin_refresh()
            rec.complete(float(i), i, refresh_seconds=0.0)
        history = rec.history()
        assert len(history) == 4
        assert [led.sequence for led in history] == [6, 7, 8, 9]
        assert [led.sequence for led in rec.history(2)] == [8, 9]

    def test_default_history_bound(self):
        assert LedgerRecorder()._history.maxlen == DEFAULT_LEDGER_HISTORY

    def test_export_is_json_able_and_key_ordered(self):
        rec = LedgerRecorder()
        rec.begin_refresh()
        rec.record_kernel(KERNEL_SPARSE_BATCH, rows=5, seconds=1e-4,
                          work_units=20.0)
        rec.complete(1.0, 0, refresh_seconds=1e-3)
        doc = rec.export()
        assert sorted(doc) == ["ewma", "ledgers"]
        assert list(doc["ewma"]) == sorted(CORRELATION_KERNELS)
        payload = json.dumps(doc)
        assert json.loads(payload) == doc


class TestRoundTrip:
    def _ledger(self):
        rec = LedgerRecorder()
        rec.begin_refresh()
        rec.record_stage(STAGE_INGEST, 0.01, items=8)
        rec.record_stage(STAGE_CORRELATE, 0.02, items=8)
        rec.record_stage(STAGE_DFS, 0.03, items=12)
        rec.record_stage(STAGE_PUBLISH, 0.001, items=1)
        rec.record_kernel(KERNEL_RLE, rows=40, seconds=0.015,
                          work_units=160.0, bytes_touched=960)
        return rec.complete(30.0, 3, refresh_seconds=0.06,
                            skips=2, cache_hits=5)

    def test_dataclass_round_trip(self):
        ledger = self._ledger()
        assert RefreshLedger.from_dict(ledger.to_dict()) == ledger

    def test_json_round_trip(self):
        ledger = self._ledger()
        doc = json.loads(json.dumps(ledger.to_dict()))
        assert RefreshLedger.from_dict(doc).to_dict() == ledger.to_dict()

    def test_to_dict_keys_deterministically_ordered(self):
        doc = self._ledger().to_dict()
        assert list(doc) == sorted(doc)
        assert list(doc["stages"]) == sorted(doc["stages"])
        assert list(doc["kernels"]) == sorted(doc["kernels"])
        for sample in doc["stages"].values():
            assert list(sample) == sorted(sample)
        for sample in doc["kernels"].values():
            assert list(sample) == sorted(sample)

    def test_sample_round_trips(self):
        stage = StageSample(seconds=0.5, items=3, unit="blocks")
        assert StageSample.from_dict(stage.to_dict()) == stage
        kernel = KernelSample(rows=7, seconds=0.1, work_units=2.0,
                              bytes_touched=112, ns_per_row=14e6,
                              ns_per_row_ewma=13e6)
        assert KernelSample.from_dict(kernel.to_dict()) == kernel

    def test_missing_keys_default(self):
        ledger = RefreshLedger.from_dict({"time": 1.0, "sequence": 2})
        assert ledger.stages == {} and ledger.kernels == {}
        assert ledger.stage(STAGE_DFS).seconds == 0.0
        assert ledger.kernel(KERNEL_RLE).rows == 0


class TestEngineIntegration:
    def test_every_result_carries_a_complete_ledger(self, ledger_run):
        engine, results = ledger_run
        for result in results:
            ledger = result.ledger
            assert isinstance(ledger, RefreshLedger)
            assert set(ledger.stages) == set(PIPELINE_STAGES)
            assert set(ledger.kernels) == set(CORRELATION_KERNELS)
            assert all(ledger.stage_seconds(s) >= 0.0 for s in PIPELINE_STAGES)

    def test_sequences_are_monotonic(self, ledger_run):
        engine, results = ledger_run
        sequences = [result.ledger.sequence for result in results]
        assert sequences == list(range(len(results)))
        assert engine.latest_ledger is results[-1].ledger

    def test_refresh_seconds_matches_engine(self, ledger_run):
        engine, results = ledger_run
        assert results[-1].ledger.refresh_seconds == engine.last_refresh_seconds

    def test_dfs_stage_counts_correlations(self, ledger_run):
        engine, results = ledger_run
        for result in results:
            assert (result.ledger.stage(STAGE_DFS).items
                    == result.stats.correlations)

    def test_kernels_account_for_work(self, ledger_run):
        engine, results = ledger_run
        rows = sum(result.ledger.kernel(k).rows
                   for result in results for k in CORRELATION_KERNELS)
        assert rows > 0
        for result in results:
            for name in CORRELATION_KERNELS:
                sample = result.ledger.kernel(name)
                if sample.rows:
                    assert sample.seconds >= 0.0
                    assert sample.ns_per_row is not None
                else:
                    assert sample.ns_per_row is None

    def test_publish_stage_filled_after_fanout(self, ledger_run):
        engine, results = ledger_run
        # history copies share the StageSample objects mutated post-fanout
        for ledger in engine.ledger.history():
            assert ledger.stage(STAGE_PUBLISH).items >= 1

    def test_flight_frames_carry_ledger_dicts(self, ledger_run):
        engine, _ = ledger_run
        dump = engine.dump_flight_record()
        assert dump["frames"]
        for frame in dump["frames"]:
            ledger = frame["ledger"]
            assert set(ledger["stages"]) == set(PIPELINE_STAGES)
            assert ledger["sequence"] == frame["sequence"]

    def test_chrome_trace_emits_counter_tracks(self, ledger_run):
        engine, _ = ledger_run
        trace = chrome_trace(engine.dump_flight_record())
        counters = [e for e in trace["traceEvents"] if e.get("ph") == "C"]
        names = {e["name"] for e in counters}
        assert {"ledger stage ms", "ledger kernel rows",
                "ledger skip/cache"} <= names
        stage_args = [e["args"] for e in counters
                      if e["name"] == "ledger stage ms"]
        assert all(set(args) == set(PIPELINE_STAGES) for args in stage_args)

    def test_stage_histograms_reach_prometheus(self, ledger_run):
        engine, _ = ledger_run
        text = engine.metrics.to_prometheus()
        for stage in PIPELINE_STAGES:
            assert f'engine_stage_seconds_bucket{{stage="{stage}"' in text
        assert "ledger_kernel_rows_total" in text

    def test_disabled_ledger_engine_still_attaches_ledgers(self):
        rubis = build_rubis(dispatch="affinity", seed=6, request_rate=10.0,
                            config=CFG)
        engine = E2EProfEngine(CFG, ledger=False)
        results = []
        engine.subscribe(lambda now, result: results.append(result))
        engine.attach(rubis.topology)
        rubis.run_until(45.0)
        assert results
        assert len(engine.ledger) == 0
        for result in results:
            assert set(result.ledger.stages) == set(PIPELINE_STAGES)
            assert result.ledger.stage(STAGE_DFS).seconds == 0.0


class TestTopRenderer:
    def test_empty_history_renders_placeholder(self):
        assert "no refreshes" in render_top([])

    def test_renders_stages_kernels_and_ratios(self, ledger_run):
        engine, _ = ledger_run
        frame = render_top(engine.ledger.history(),
                           engine.ledger.ewma_snapshot(), title="test run")
        assert frame.startswith("test run")
        for name in PIPELINE_STAGES + CORRELATION_KERNELS:
            assert name in frame
        assert "quiet skips" in frame and "cache hits" in frame

    def test_profile_includes_ewma_table(self, ledger_run):
        engine, _ = ledger_run
        text = render_profile(engine.ledger.history(),
                              engine.ledger.ewma_snapshot())
        assert "kernel cost model" in text
        assert "samples" in text


class TestSampleAdaptivityCounters:
    def test_adaptive_run_populates_counters(self):
        from repro.apps.manyclass import MANY_CLASS_CONFIG, build_many_class

        deployment = build_many_class(
            classes=6, quiet_fraction=0.5, seed=4, request_rate=10.0,
            quiet_after=5.0, config=MANY_CLASS_CONFIG,
        )
        engine = E2EProfEngine(MANY_CLASS_CONFIG, adaptive=True)
        samples = []
        engine.subscribe_metrics(
            lambda now, result, sample: samples.append(sample)
        )
        engine.attach(deployment.topology)
        deployment.run_until(18.0)
        engine.detach()
        assert samples
        assert any(s.autotune_recommendations > 0
                   or s.low_confidence_events > 0 for s in samples)
        # rewindow_clips are per-refresh deltas of the engine total
        assert sum(s.rewindow_clips for s in samples) == engine.rewindows
        doc = samples[-1].to_dict()
        for key in ("autotune_recommendations", "low_confidence_events",
                    "rewindow_clips"):
            assert key in doc

    def test_non_adaptive_run_reports_zeroes(self, ledger_run):
        engine, _ = ledger_run
        sample = engine.latest_sample
        assert sample.autotune_recommendations == 0
        assert sample.rewindow_clips == 0
