"""Tests for the flight recorder and the engine's always-on recording.

Covers the ring-buffer contract (bounds, eviction, self-consistent dumps
under contention), the engine integration (one frame per refresh, spans
and events captured when tracing is on, ``dump_flight_record``), and the
subscriber fan-out isolation regression the recorder helps diagnose.
"""

import json
import threading

import pytest

from repro.config import PathmapConfig
from repro.core.engine import E2EProfEngine
from repro.errors import ObservabilityError
from repro.obs import EVENT_SUBSCRIBER_ERROR
from repro.obs.flight import FlightRecorder, RefreshFrame
from repro.simulation.distributions import Erlang
from repro.simulation.nodes import StaticRouter
from repro.simulation.topology import Topology

CFG = PathmapConfig(
    window=20.0,
    refresh_interval=10.0,
    quantum=1e-3,
    sampling_window=10e-3,
    max_transaction_delay=1.0,
)


def chain_topology(seed=0):
    topo = Topology(seed=seed)
    topo.add_service_node("DB", Erlang(0.010, k=8), workers=8)
    topo.add_service_node(
        "WS", Erlang(0.004, k=8), workers=8, router=StaticRouter({}, default="DB")
    )
    client = topo.add_client("C", "cls", front_end="WS")
    topo.open_workload(client, rate=20.0)
    return topo


class TestFlightRecorder:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ObservabilityError):
            FlightRecorder(capacity=0)

    def test_ring_evicts_oldest(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(7):
            recorder.record(RefreshFrame(time=float(i), sequence=i, sample={}))
        assert len(recorder) == 3
        assert recorder.recorded == 7
        assert [f.sequence for f in recorder.frames()] == [4, 5, 6]
        assert recorder.latest().sequence == 6

    def test_frames_last_n(self):
        recorder = FlightRecorder(capacity=8)
        for i in range(5):
            recorder.record(RefreshFrame(time=float(i), sequence=i, sample={}))
        assert [f.sequence for f in recorder.frames(last=2)] == [3, 4]
        assert [f.sequence for f in recorder.frames(last=99)] == [0, 1, 2, 3, 4]

    def test_clear(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record(RefreshFrame(time=0.0, sequence=0, sample={}))
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.latest() is None

    def test_dump_shape_and_json_round_trip(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record(
            RefreshFrame(time=1.0, sequence=0, sample={"blocks_ingested": 2})
        )
        dump = json.loads(json.dumps(recorder.dump()))
        assert dump["capacity"] == 4
        assert dump["recorded"] == 1
        (frame,) = dump["frames"]
        assert frame["sample"] == {"blocks_ingested": 2}
        assert frame["spans"] == []
        assert frame["events"] == []

    def test_dump_self_consistent_under_contention(self):
        """Concurrent record() calls never tear a dump: every dumped
        frame is whole and frame sequences are monotonic."""
        recorder = FlightRecorder(capacity=64)
        stop = threading.Event()

        def writer(worker):
            i = 0
            while not stop.is_set():
                recorder.record(
                    RefreshFrame(
                        time=float(i), sequence=i, sample={"worker": worker}
                    )
                )
                i += 1

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(50):
                dump = recorder.dump()
                assert len(dump["frames"]) <= 64
                for frame in dump["frames"]:
                    assert set(frame) == {
                        "time", "sequence", "sample", "spans", "events",
                        "ledger",
                    }
                json.dumps(dump)  # always serializable
        finally:
            stop.set()
            for t in threads:
                t.join()


class TestEngineFlightRecording:
    def test_every_refresh_leaves_a_frame(self):
        engine = E2EProfEngine(CFG, flight_capacity=8)
        engine.attach(chain_topology())
        engine._topology.run_until(35.0)
        frames = engine.flight.frames()
        assert len(frames) == 3
        assert [f.sequence for f in frames] == [0, 1, 2]
        # Tracing off: frames are sample-only, but samples are real.
        for frame in frames:
            assert frame.spans == []
            assert frame.sample["blocks_ingested"] >= 1

    def test_flight_capacity_parameter_bounds_ring(self):
        engine = E2EProfEngine(CFG, flight_capacity=2)
        engine.attach(chain_topology())
        engine._topology.run_until(45.0)
        assert len(engine.flight) == 2
        assert engine.flight.recorded == 4

    def test_traced_run_captures_nested_spans_and_dump(self):
        engine = E2EProfEngine(CFG)
        engine.tracer.enable()
        engine.attach(chain_topology())
        engine._topology.run_until(25.0)
        dump = engine.dump_flight_record(last=1)
        (frame,) = dump["frames"]
        names = {s["name"] for s in frame["spans"]}
        assert {
            "engine.refresh",
            "engine.ingest",
            "tracer.flush",
            "engine.correlators",
            "engine.pathmap",
        } <= names
        by_id = {s["span_id"]: s for s in frame["spans"]}
        root = next(s for s in frame["spans"] if s["name"] == "engine.refresh")
        assert root["parent_id"] is None
        for span in frame["spans"]:
            if span is not root:
                assert by_id[span["parent_id"]] is not None
        json.dumps(dump)

    def test_dump_flight_record_last(self):
        engine = E2EProfEngine(CFG, flight_capacity=8)
        engine.attach(chain_topology())
        engine._topology.run_until(35.0)
        dump = engine.dump_flight_record(last=1)
        assert len(dump["frames"]) == 1
        assert dump["frames"][0]["sequence"] == 2


class TestSubscriberIsolation:
    def test_raising_subscriber_does_not_abort_refresh(self):
        """Regression: one bad subscriber used to abort the whole refresh
        and starve every subscriber after it."""
        engine = E2EProfEngine(CFG)
        engine.metrics.enable()
        seen = []

        def bad(now, result):
            raise RuntimeError("subscriber bug")

        engine.subscribe(bad)
        engine.subscribe(lambda now, result: seen.append(now))
        engine.attach(chain_topology())
        engine._topology.run_until(15.0)
        # The refresh completed and the later subscriber still ran.
        assert engine.latest_result is not None
        assert seen == [10.0]
        assert engine.subscriber_errors == 1
        snap = engine.metrics.snapshot()
        (state,) = snap["obs_subscriber_errors_total"].values()
        assert state["value"] == 1.0
        # The failure is a diagnostic event too.
        (event,) = engine.events.events(EVENT_SUBSCRIBER_ERROR)
        assert "RuntimeError" in event.attributes["error"]
        assert "bad" in event.attributes["subscriber"]

    def test_raising_metrics_subscriber_is_isolated(self):
        engine = E2EProfEngine(CFG)
        seen = []

        def bad(now, result, sample):
            raise ValueError("metrics subscriber bug")

        engine.subscribe_metrics(bad)
        engine.subscribe_metrics(lambda now, result, sample: seen.append(sample))
        engine.attach(chain_topology())
        engine._topology.run_until(15.0)
        assert len(seen) == 1
        assert engine.subscriber_errors == 1

    def test_subscriber_error_count_survives_disabled_registry(self):
        engine = E2EProfEngine(CFG)  # registry disabled
        engine.subscribe(lambda now, result: (_ for _ in ()).throw(RuntimeError()))
        engine.attach(chain_topology())
        engine._topology.run_until(15.0)
        assert engine.subscriber_errors == 1
