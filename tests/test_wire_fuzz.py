"""Fuzz and round-trip tests for the RLE wire codec (tracing.wire).

The codec's documented contract: ``decode_block`` returns a
:class:`RunLengthSeries` or raises :class:`TraceError` -- never a bare
``struct.error``, a series-construction error, or any other exception --
so a streaming analyzer can drop a bad block and keep its refresh loop
alive. Hypothesis hammers that contract with truncations and byte flips.
"""

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st

import struct
import zlib

from repro.core.rle import rle_encode
from repro.core.timeseries import DensityTimeSeries
from repro.errors import E2EProfError, TraceError
from repro.tracing.wire import (
    FRAME_MAGIC,
    FRAME_VERSION,
    BlockFrame,
    decode_block,
    decode_frame,
    encode_block,
    encode_frame,
)

QUANTUM = 1e-3

#: Float32-exact density values, so decode reproduces the series exactly
#: (the wire carries float32) and re-encoding is byte-identical.
wire_blocks = st.builds(
    lambda dense, start: rle_encode(
        DensityTimeSeries.from_dense(
            np.asarray(dense, dtype=np.float64), start, QUANTUM
        )
    ),
    dense=st.lists(
        st.one_of(
            st.just(0.0),
            st.integers(min_value=0, max_value=1024).map(lambda k: k / 8.0),
        ),
        min_size=0,
        max_size=80,
    ),
    start=st.integers(-10_000, 10_000),
)


class TestRoundTrip:
    @given(block=wire_blocks)
    def test_roundtrip_reproduces_series(self, block):
        decoded = decode_block(encode_block(block))
        assert decoded.start == block.start
        assert decoded.length == block.length
        assert decoded.quantum == block.quantum
        assert decoded.num_runs == block.num_runs
        np.testing.assert_array_equal(decoded.starts, block.starts)
        np.testing.assert_array_equal(decoded.counts, block.counts)
        np.testing.assert_array_equal(decoded.values, block.values)

    @given(block=wire_blocks)
    def test_reencode_is_byte_identical(self, block):
        payload = encode_block(block)
        assert encode_block(decode_block(payload)) == payload

    def test_empty_block_roundtrips(self):
        block = rle_encode(DensityTimeSeries.empty(5, 12, QUANTUM))
        payload = encode_block(block)
        decoded = decode_block(payload)
        assert decoded.num_runs == 0
        assert decoded.length == 12
        assert encode_block(decoded) == payload


class TestCorruption:
    def test_trace_error_is_an_e2eprof_error(self):
        assert issubclass(TraceError, E2EProfError)

    @given(block=wire_blocks, data=st.data())
    def test_any_truncation_raises_trace_error(self, block, data):
        payload = encode_block(block)
        cut = data.draw(st.integers(0, len(payload) - 1))
        with pytest.raises(TraceError):
            decode_block(payload[:cut])

    def test_every_single_byte_truncation_of_one_block(self):
        """Exhaustive prefix sweep on a representative block."""
        block = rle_encode(
            DensityTimeSeries.from_dense(
                [0.0, 2.0, 2.0, 0.0, 0.0, 1.5, 0.0, 3.0], 100, QUANTUM
            )
        )
        payload = encode_block(block)
        for cut in range(len(payload)):
            with pytest.raises(TraceError):
                decode_block(payload[:cut])

    @given(block=wire_blocks, data=st.data())
    def test_byte_flips_never_escape_trace_error(self, block, data):
        """A flipped byte either still decodes to a valid series (e.g. a
        flipped value bit) or raises the documented TraceError -- no other
        exception type may escape."""
        payload = bytearray(encode_block(block))
        pos = data.draw(st.integers(0, len(payload) - 1))
        flip = data.draw(st.integers(1, 255))
        payload[pos] ^= flip
        try:
            decoded = decode_block(bytes(payload))
        except TraceError:
            return
        # Survived: must be a structurally sound series.
        assert decoded.length >= 0
        assert decoded.num_runs >= 0
        assert np.all(decoded.counts >= 1)

    @given(block=wire_blocks, junk=st.binary(min_size=1, max_size=16))
    def test_trailing_junk_raises(self, block, junk):
        with pytest.raises(TraceError):
            decode_block(encode_block(block) + junk)

    def test_bad_magic_and_version(self):
        payload = bytearray(
            encode_block(rle_encode(DensityTimeSeries.empty(0, 4, QUANTUM)))
        )
        wrong_magic = b"XX" + bytes(payload[2:])
        with pytest.raises(TraceError):
            decode_block(wrong_magic)
        payload[2] = 99  # version byte
        with pytest.raises(TraceError):
            decode_block(bytes(payload))


#: Frame field strategies: identifiers plus arbitrary unicode to prove
#: the varint-length string codec holds for any node/edge naming scheme.
frame_names = st.text(min_size=0, max_size=12)

wire_frames = st.builds(
    lambda node, epoch, seq, src, dst, block, heartbeat: BlockFrame(
        node, epoch, seq, src, dst, None if heartbeat else block
    ),
    node=frame_names,
    epoch=st.integers(0, 2**40),
    seq=st.integers(0, 2**40),
    src=frame_names,
    dst=frame_names,
    block=wire_blocks,
    heartbeat=st.booleans(),
)


def _frame_with_body(body: bytes) -> bytes:
    """Assemble a prefix-valid frame around a hand-crafted body (the CRC
    is computed honestly, so only the body content is wrong)."""
    return struct.pack("<2sBI", FRAME_MAGIC, FRAME_VERSION, zlib.crc32(body)) + body


class TestFrameRoundTrip:
    @given(frame=wire_frames)
    def test_roundtrip_reproduces_frame(self, frame):
        decoded = decode_frame(encode_frame(frame))
        assert decoded.node == frame.node
        assert decoded.epoch == frame.epoch
        assert decoded.seq == frame.seq
        assert decoded.edge == frame.edge
        assert decoded.is_heartbeat == frame.is_heartbeat
        if not frame.is_heartbeat:
            assert decoded.block == frame.block

    @given(frame=wire_frames)
    def test_reencode_is_byte_identical(self, frame):
        payload = encode_frame(frame)
        assert encode_frame(decode_frame(payload)) == payload


class TestFrameCorruption:
    @given(frame=wire_frames, data=st.data())
    def test_any_truncation_raises_trace_error(self, frame, data):
        payload = encode_frame(frame)
        cut = data.draw(st.integers(0, len(payload) - 1))
        with pytest.raises(TraceError):
            decode_frame(payload[:cut])

    @given(frame=wire_frames, data=st.data())
    def test_any_single_byte_flip_raises_trace_error(self, frame, data):
        """The CRC-32 over the body makes *every* single-byte corruption a
        deterministic TraceError -- unlike the bare block codec, a flipped
        frame can never silently decode to different values."""
        payload = bytearray(encode_frame(frame))
        pos = data.draw(st.integers(0, len(payload) - 1))
        payload[pos] ^= data.draw(st.integers(1, 255))
        with pytest.raises(TraceError):
            decode_frame(bytes(payload))

    def test_every_single_byte_flip_of_one_frame(self):
        """Exhaustive single-byte-flip sweep on a representative frame."""
        block = rle_encode(
            DensityTimeSeries.from_dense(
                [0.0, 2.0, 2.0, 0.0, 0.0, 1.5, 0.0, 3.0], 100, QUANTUM
            )
        )
        payload = bytearray(encode_frame(BlockFrame("WS", 3, 7, "C1", "WS", block)))
        for pos in range(len(payload)):
            mutated = bytearray(payload)
            mutated[pos] ^= 0x55
            with pytest.raises(TraceError):
                decode_frame(bytes(mutated))

    def test_varint_overflow_with_valid_crc(self):
        """A hand-crafted frame whose epoch varint exceeds 64 bits passes
        the CRC (it was computed over the bad body) but must still fail
        with TraceError, not a hang or an integer blow-up."""
        body = bytes([0x01]) + b"\xff" * 10 + bytes([0x01])
        with pytest.raises(TraceError):
            decode_frame(_frame_with_body(body))

    def test_string_length_overrun_with_valid_crc(self):
        """A node-name length claiming more bytes than the body holds."""
        body = bytearray([0x01])  # heartbeat flags
        body += bytes([0x00, 0x00])  # epoch 0, seq 0
        body += bytes([0x7F])  # node length 127 with no bytes behind it
        with pytest.raises(TraceError):
            decode_frame(_frame_with_body(bytes(body)))

    def test_heartbeat_with_trailing_bytes_rejected(self):
        payload = encode_frame(BlockFrame("N", 0, 0, "", "", None))
        body = payload[7:] + b"\x00"
        with pytest.raises(TraceError):
            decode_frame(_frame_with_body(body))

    def test_negative_epoch_unencodable(self):
        with pytest.raises(TraceError):
            encode_frame(BlockFrame("N", -1, 0, "", "", None))
