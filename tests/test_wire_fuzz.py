"""Fuzz and round-trip tests for the RLE wire codec (tracing.wire).

The codec's documented contract: ``decode_block`` returns a
:class:`RunLengthSeries` or raises :class:`TraceError` -- never a bare
``struct.error``, a series-construction error, or any other exception --
so a streaming analyzer can drop a bad block and keep its refresh loop
alive. Hypothesis hammers that contract with truncations and byte flips.
"""

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st

from repro.core.rle import rle_encode
from repro.core.timeseries import DensityTimeSeries
from repro.errors import E2EProfError, TraceError
from repro.tracing.wire import decode_block, encode_block

QUANTUM = 1e-3

#: Float32-exact density values, so decode reproduces the series exactly
#: (the wire carries float32) and re-encoding is byte-identical.
wire_blocks = st.builds(
    lambda dense, start: rle_encode(
        DensityTimeSeries.from_dense(
            np.asarray(dense, dtype=np.float64), start, QUANTUM
        )
    ),
    dense=st.lists(
        st.one_of(
            st.just(0.0),
            st.integers(min_value=0, max_value=1024).map(lambda k: k / 8.0),
        ),
        min_size=0,
        max_size=80,
    ),
    start=st.integers(-10_000, 10_000),
)


class TestRoundTrip:
    @given(block=wire_blocks)
    def test_roundtrip_reproduces_series(self, block):
        decoded = decode_block(encode_block(block))
        assert decoded.start == block.start
        assert decoded.length == block.length
        assert decoded.quantum == block.quantum
        assert decoded.num_runs == block.num_runs
        np.testing.assert_array_equal(decoded.starts, block.starts)
        np.testing.assert_array_equal(decoded.counts, block.counts)
        np.testing.assert_array_equal(decoded.values, block.values)

    @given(block=wire_blocks)
    def test_reencode_is_byte_identical(self, block):
        payload = encode_block(block)
        assert encode_block(decode_block(payload)) == payload

    def test_empty_block_roundtrips(self):
        block = rle_encode(DensityTimeSeries.empty(5, 12, QUANTUM))
        payload = encode_block(block)
        decoded = decode_block(payload)
        assert decoded.num_runs == 0
        assert decoded.length == 12
        assert encode_block(decoded) == payload


class TestCorruption:
    def test_trace_error_is_an_e2eprof_error(self):
        assert issubclass(TraceError, E2EProfError)

    @given(block=wire_blocks, data=st.data())
    def test_any_truncation_raises_trace_error(self, block, data):
        payload = encode_block(block)
        cut = data.draw(st.integers(0, len(payload) - 1))
        with pytest.raises(TraceError):
            decode_block(payload[:cut])

    def test_every_single_byte_truncation_of_one_block(self):
        """Exhaustive prefix sweep on a representative block."""
        block = rle_encode(
            DensityTimeSeries.from_dense(
                [0.0, 2.0, 2.0, 0.0, 0.0, 1.5, 0.0, 3.0], 100, QUANTUM
            )
        )
        payload = encode_block(block)
        for cut in range(len(payload)):
            with pytest.raises(TraceError):
                decode_block(payload[:cut])

    @given(block=wire_blocks, data=st.data())
    def test_byte_flips_never_escape_trace_error(self, block, data):
        """A flipped byte either still decodes to a valid series (e.g. a
        flipped value bit) or raises the documented TraceError -- no other
        exception type may escape."""
        payload = bytearray(encode_block(block))
        pos = data.draw(st.integers(0, len(payload) - 1))
        flip = data.draw(st.integers(1, 255))
        payload[pos] ^= flip
        try:
            decoded = decode_block(bytes(payload))
        except TraceError:
            return
        # Survived: must be a structurally sound series.
        assert decoded.length >= 0
        assert decoded.num_runs >= 0
        assert np.all(decoded.counts >= 1)

    @given(block=wire_blocks, junk=st.binary(min_size=1, max_size=16))
    def test_trailing_junk_raises(self, block, junk):
        with pytest.raises(TraceError):
            decode_block(encode_block(block) + junk)

    def test_bad_magic_and_version(self):
        payload = bytearray(
            encode_block(rle_encode(DensityTimeSeries.empty(0, 4, QUANTUM)))
        )
        wrong_magic = b"XX" + bytes(payload[2:])
        with pytest.raises(TraceError):
            decode_block(wrong_magic)
        payload[2] = 99  # version byte
        with pytest.raises(TraceError):
            decode_block(bytes(payload))
