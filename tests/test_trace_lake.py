"""Tests for the tiered trace lake (`repro.lake`).

The lake is the collector's second storage tier: eviction spills
columnar chunks into time-indexed ``.rtb`` segments behind a crash-safe
JSON manifest, reads stitch mmap'd segments with resident chunks, and
correlator eviction materializes per-(class, edge) summaries.  The
contracts hammered here:

* decode returns the exact payload or raises ``TraceError`` -- never a
  different exception -- for every truncation, byte flip, and
  manifest/segment mismatch (mirroring ``test_ingest_codecs_fuzz.py``);
* stitched reads are **bitwise identical** to an unbounded collector's
  (hypothesis property, the invariant the whole tier rests on);
* spilling, compaction and querying are safe to interleave across
  threads;
* an engine wired to a lake records the ``spill`` ledger stage and
  materializes summaries whose folds agree with raw replays.
"""

import json
import tempfile
import threading

import numpy as np
import pytest

from repro.config import LakeConfig, PathmapConfig
from repro.core.engine import E2EProfEngine
from repro.errors import AnalysisError, ConfigError, TraceError
from repro.lake import (
    MANIFEST_NAME,
    BlockSummary,
    LakeManifest,
    SegmentMappingLRU,
    SegmentMeta,
    TraceLake,
    fold_summaries,
    load_manifest,
    read_segment,
    save_manifest,
    segment_filename,
    write_segment,
)
from repro.obs.ledger import PIPELINE_STAGES, STAGE_SPILL
from repro.simulation.distributions import Erlang
from repro.simulation.nodes import StaticRouter
from repro.simulation.topology import Topology
from repro.tracing.collector import TraceCollector

CFG = PathmapConfig(
    window=10.0,
    refresh_interval=5.0,
    quantum=1e-3,
    sampling_window=10e-3,
    max_transaction_delay=1.0,
    retention=31.0,
)


def chain_topology(seed=0):
    topo = Topology(seed=seed)
    topo.add_service_node("DB", Erlang(0.010, k=8), workers=8)
    topo.add_service_node(
        "WS", Erlang(0.004, k=8), workers=8, router=StaticRouter({}, default="DB")
    )
    client = topo.add_client("C", "cls", front_end="WS")
    topo.open_workload(client, rate=20.0)
    return topo, client


def series_key(series):
    return (
        series.start,
        series.length,
        series.quantum,
        series.starts.tolist(),
        series.counts.tolist(),
        series.values.tolist(),
    )


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------


class TestManifest:
    def test_missing_manifest_is_empty(self, tmp_path):
        manifest = load_manifest(tmp_path)
        assert manifest.segments == [] and manifest.summaries == []

    def test_round_trip(self, tmp_path):
        info = write_segment(
            tmp_path / segment_filename(0), "A", "B", True, np.arange(4.0)
        )
        meta = SegmentMeta(
            seq=0,
            path=segment_filename(0),
            src="A",
            dst="B",
            observed_at_destination=True,
            t_min=info.t_min,
            t_max=info.t_max,
            count=info.count,
            crc=info.crc,
            nbytes=info.nbytes,
        )
        manifest = LakeManifest(next_seq=1, segments=[meta], summaries=[])
        save_manifest(tmp_path, manifest)
        loaded = load_manifest(tmp_path)
        assert loaded.next_seq == 1
        assert loaded.segments == [meta]

    def test_bad_json_rejected(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json", encoding="utf-8")
        with pytest.raises(TraceError):
            load_manifest(tmp_path)

    def test_wrong_version_rejected(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps({"version": 99, "next_seq": 0, "segments": [],
                        "summaries": []}),
            encoding="utf-8",
        )
        with pytest.raises(TraceError):
            load_manifest(tmp_path)

    def test_manifest_byte_flips_never_escape_trace_error(self, tmp_path):
        save_manifest(tmp_path, LakeManifest(next_seq=0, segments=[],
                                             summaries=[]))
        blob = bytearray((tmp_path / MANIFEST_NAME).read_bytes())
        for pos in range(len(blob)):
            flipped = bytearray(blob)
            flipped[pos] ^= 0xFF
            (tmp_path / MANIFEST_NAME).write_bytes(bytes(flipped))
            try:
                load_manifest(tmp_path)
            except TraceError:
                pass  # the only exception the contract allows

    def test_duplicate_seq_rejected(self, tmp_path):
        row = {
            "seq": 0, "path": "seg-00000000.rtb", "src": "A", "dst": "B",
            "observed_at_destination": True, "t_min": 0.0, "t_max": 1.0,
            "count": 2, "crc": 0, "nbytes": 16,
        }
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps({"version": 1, "next_seq": 5,
                        "segments": [row, row], "summaries": []}),
            encoding="utf-8",
        )
        with pytest.raises(TraceError):
            load_manifest(tmp_path)


# ---------------------------------------------------------------------------
# Segment codec fuzz
# ---------------------------------------------------------------------------


def _segment(tmp_path, values=None):
    values = np.arange(16.0) if values is None else values
    path = tmp_path / segment_filename(0)
    info = write_segment(path, "A", "B", True, values)
    meta = SegmentMeta(
        seq=0,
        path=path.name,
        src="A",
        dst="B",
        observed_at_destination=True,
        t_min=info.t_min,
        t_max=info.t_max,
        count=info.count,
        crc=info.crc,
        nbytes=info.nbytes,
    )
    return path, meta, values


class TestSegmentFuzz:
    def test_round_trip(self, tmp_path):
        path, meta, values = _segment(tmp_path)
        got = read_segment(path, meta)
        assert np.array_equal(got, values)

    def test_empty_segment_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            write_segment(tmp_path / "x.rtb", "A", "B", True, np.empty(0))

    def test_missing_file(self, tmp_path):
        _, meta, _ = _segment(tmp_path)
        with pytest.raises(TraceError):
            read_segment(tmp_path / "nope.rtb", meta)

    def test_every_truncation_raises(self, tmp_path):
        path, meta, _ = _segment(tmp_path)
        blob = path.read_bytes()
        for size in range(len(blob)):
            (tmp_path / "t.rtb").write_bytes(blob[:size])
            with pytest.raises(TraceError):
                read_segment(tmp_path / "t.rtb", meta)

    def test_every_byte_flip_raises(self, tmp_path):
        path, meta, _ = _segment(tmp_path)
        blob = path.read_bytes()
        for pos in range(len(blob)):
            flipped = bytearray(blob)
            flipped[pos] ^= 0xFF
            (tmp_path / "f.rtb").write_bytes(bytes(flipped))
            with pytest.raises(TraceError):
                read_segment(tmp_path / "f.rtb", meta)

    def test_meta_mismatch_raises(self, tmp_path):
        import dataclasses

        path, meta, _ = _segment(tmp_path)
        for doctored in (
            dataclasses.replace(meta, count=meta.count + 1),
            dataclasses.replace(meta, crc=meta.crc ^ 0xDEAD),
        ):
            with pytest.raises(TraceError):
                read_segment(path, doctored)

    def test_trailing_garbage_raises(self, tmp_path):
        path, meta, _ = _segment(tmp_path)
        (tmp_path / "g.rtb").write_bytes(path.read_bytes() + b"\x00" * 8)
        with pytest.raises(TraceError):
            read_segment(tmp_path / "g.rtb", meta)


class TestMappingLRU:
    def test_capacity_and_hit_rate(self, tmp_path):
        metas = []
        for seq in range(3):
            path = tmp_path / segment_filename(seq)
            info = write_segment(path, "A", "B", True,
                                 np.arange(float(seq), float(seq) + 4.0))
            metas.append(
                SegmentMeta(
                    seq=seq, path=path.name, src="A", dst="B",
                    observed_at_destination=True, t_min=info.t_min,
                    t_max=info.t_max, count=info.count, crc=info.crc,
                    nbytes=info.nbytes,
                )
            )
        lru = SegmentMappingLRU(tmp_path, capacity=2)
        for meta in metas:
            lru.get(meta)
        assert len(lru) == 2
        assert lru.misses == 3 and lru.hits == 0
        # metas[0] was evicted; metas[2] is resident.
        assert np.array_equal(lru.get(metas[2]), np.arange(2.0, 6.0))
        assert lru.hits == 1
        lru.get(metas[0])
        assert lru.misses == 4
        assert 0.0 < lru.hit_rate < 1.0

    def test_invalidate(self, tmp_path):
        path, meta, _ = _segment(tmp_path)
        lru = SegmentMappingLRU(tmp_path, capacity=2)
        lru.get(meta)
        lru.invalidate(meta.path)
        assert len(lru) == 0


# ---------------------------------------------------------------------------
# TraceLake spill / query / compact
# ---------------------------------------------------------------------------


class TestTraceLake:
    def test_unflushed_buffers_are_visible(self, tmp_path):
        lake = TraceLake(tmp_path, segment_bytes=1 << 20)
        lake.spill("A", "B", True, np.arange(8.0))
        assert lake.segments() == []
        got = np.sort(lake.query("A", "B", True))
        assert np.array_equal(got, np.arange(8.0))
        assert lake.stats()["buffered_records"] == 8

    def test_segment_cut_at_threshold_and_range_query(self, tmp_path):
        lake = TraceLake(tmp_path, segment_bytes=128)
        for base in range(0, 100, 20):
            lake.spill("A", "B", True, np.arange(float(base), base + 20.0))
        assert len(lake.segments()) >= 2
        got = np.sort(lake.query("A", "B", True, start=15.0, end=35.0))
        assert np.array_equal(got, np.arange(15.0, 35.0))
        assert lake.query("A", "B", False).size == 0
        assert lake.query("A", "X", True).size == 0

    def test_flush_and_reopen(self, tmp_path):
        lake = TraceLake(tmp_path, segment_bytes=1 << 20)
        lake.spill("A", "B", True, np.arange(8.0))
        lake.spill("B", "C", False, np.arange(3.0))
        assert lake.flush() == 2
        lake.close()
        reopened = TraceLake(tmp_path)
        assert sorted(reopened.streams()) == [("A", "B", True),
                                              ("B", "C", False)]
        assert np.array_equal(np.sort(reopened.query("A", "B", True)),
                              np.arange(8.0))

    def test_compact_merges_per_stream(self, tmp_path):
        lake = TraceLake(tmp_path, segment_bytes=64)
        expected = {}
        for base in range(6):
            for stream in (("A", "B"), ("B", "C")):
                vals = np.arange(base * 10.0, base * 10.0 + 8.0)
                lake.spill(stream[0], stream[1], True, vals)
                expected.setdefault(stream, []).append(vals)
        lake.flush()
        before = len(lake.segments())
        assert before > 2
        merged = lake.compact(target_bytes=1 << 20)
        assert merged == 2
        assert len(lake.segments()) == 2
        for (src, dst), chunks in expected.items():
            got = np.sort(lake.query(src, dst, True))
            assert np.array_equal(got, np.concatenate(chunks))
        # Old segment files are gone; only the merged ones remain.
        assert len(list(tmp_path.glob("seg-*.rtb"))) == 2

    def test_compact_sweeps_orphans(self, tmp_path):
        lake = TraceLake(tmp_path, segment_bytes=1 << 20)
        lake.spill("A", "B", True, np.arange(4.0))
        lake.flush()
        orphan = tmp_path / "seg-00009999.rtb"
        write_segment(orphan, "X", "Y", True, np.arange(2.0))
        lake.compact()
        assert not orphan.exists()
        assert np.array_equal(np.sort(lake.query("A", "B", True)),
                              np.arange(4.0))

    def test_corrupt_segment_read_raises_trace_error(self, tmp_path):
        lake = TraceLake(tmp_path, segment_bytes=1 << 20)
        lake.spill("A", "B", True, np.arange(64.0))
        lake.flush()
        meta = lake.segments()[0]
        blob = bytearray((tmp_path / meta.path).read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        (tmp_path / meta.path).write_bytes(bytes(blob))
        with pytest.raises(TraceError):
            lake.query("A", "B", True)

    def test_concurrent_spill_compact_and_read(self, tmp_path):
        lake = TraceLake(tmp_path, segment_bytes=256)
        stop = threading.Event()
        errors = []
        written = [0]

        def writer():
            try:
                while not stop.is_set():
                    base = written[0] * 8.0
                    lake.spill("A", "B", True, np.arange(base, base + 8.0))
                    written[0] += 1
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            last = 0
            for step in range(200):
                got = lake.query("A", "B", True)
                assert got.size >= last
                last = got.size
                if step % 50 == 49:
                    lake.compact(target_bytes=1 << 16)
        finally:
            stop.set()
            thread.join()
        assert not errors
        total = np.sort(lake.query("A", "B", True))
        assert np.array_equal(total, np.arange(0.0, written[0] * 8.0))

    def test_stats_shape(self, tmp_path):
        lake = TraceLake(tmp_path)
        stats = lake.stats()
        for key in ("enabled", "segments", "spilled_records", "spilled_bytes",
                    "buffered_records", "mapping_hit_rate", "summary_rows"):
            assert key in stats
        assert stats["enabled"] is True


class TestLakeConfig:
    def test_defaults(self):
        config = LakeConfig(root="/tmp/x")
        assert config.segment_bytes == 256 * 1024
        assert config.summaries is True

    def test_validation(self):
        with pytest.raises(ConfigError):
            LakeConfig(segment_bytes=4)
        with pytest.raises(ConfigError):
            LakeConfig(mapping_cache=0)

    def test_from_config(self, tmp_path):
        lake = TraceLake.from_config(
            LakeConfig(root=str(tmp_path), segment_bytes=1024)
        )
        assert lake.segment_bytes == 1024
        with pytest.raises(TraceError):
            TraceLake.from_config(LakeConfig())


# ---------------------------------------------------------------------------
# Stitched reads == unbounded collector (the tier's core invariant)
# ---------------------------------------------------------------------------


class TestStitchedReads:
    EDGES = (("C", "WS"), ("WS", "DB"))

    def _fill(self, root, stamps, chunk_sizes, evict_every):
        """Unbounded and bounded+lake collectors fed identical chunks."""
        unbounded = TraceCollector(client_nodes=["C"])
        lake = TraceLake(root, segment_bytes=512)
        bounded = TraceCollector(client_nodes=["C"], retention=31.0, lake=lake)
        for src, dst in self.EDGES:
            lo = 0
            step = 0
            while lo < stamps.size:
                hi = min(stamps.size, lo + chunk_sizes[step % len(chunk_sizes)])
                unbounded.ingest_batch(src, dst, stamps[lo:hi])
                bounded.ingest_batch(src, dst, stamps[lo:hi])
                if step % evict_every == evict_every - 1:
                    bounded.evict_expired()
                lo = hi
                step += 1
        bounded.evict_expired()
        return unbounded, bounded

    def test_range_reads_and_windows_bitwise_equal(self):
        rng = np.random.default_rng(7)
        stamps = np.sort(rng.uniform(0.0, 200.0, size=4000))
        cfg = PathmapConfig(window=10.0, refresh_interval=5.0, quantum=1e-2,
                            sampling_window=5e-2, max_transaction_delay=1.0)
        with tempfile.TemporaryDirectory() as root:
            unbounded, bounded = self._fill(root, stamps, [37, 120, 5], 3)
            assert bounded.ingest_stats()["records_evicted"] > 0
            assert bounded.lake.stats()["spilled_records"] > 0
            for src, dst in self.EDGES:
                got = bounded.edge_timestamps_range(src, dst, 0.0, 201.0)
                want = np.sort(unbounded.edge_timestamps(src, dst))
                assert np.array_equal(got, want)
                mid = bounded.edge_timestamps_range(src, dst, 40.0, 90.0)
                ref = want[(want >= 40.0) & (want < 90.0)]
                assert np.array_equal(mid, ref)
            for end_time in (200.0, 120.0, 15.0):
                wa = unbounded.window(cfg, end_time=end_time)
                wb = bounded.window(cfg, end_time=end_time)
                assert wa.active_edges() == wb.active_edges()
                assert wa.front_end_nodes() == wb.front_end_nodes()
                for src, dst in wa.active_edges():
                    assert series_key(wa.edge_series(src, dst)) == series_key(
                        wb.edge_series(src, dst)
                    )

    def test_inverted_range_rejected(self, tmp_path):
        lake = TraceLake(tmp_path)
        collector = TraceCollector(retention=31.0, lake=lake)
        collector.ingest_batch("A", "B", np.arange(4.0))
        with pytest.raises(TraceError):
            collector.edge_timestamps_range("A", "B", 5.0, 1.0)

    def test_hypothesis_stitched_equals_unbounded(self):
        pytest.importorskip("hypothesis")
        from hypothesis import given, settings
        from hypothesis import strategies as st

        stamp_lists = st.lists(
            st.floats(min_value=0.0, max_value=150.0, allow_nan=False,
                      allow_infinity=False, width=64),
            min_size=5,
            max_size=400,
        )

        @settings(max_examples=20, deadline=None)
        @given(values=stamp_lists, chunk=st.integers(1, 60),
               evict_every=st.integers(1, 4))
        def check(values, chunk, evict_every):
            stamps = np.sort(np.asarray(values, dtype=np.float64))
            with tempfile.TemporaryDirectory() as root:
                unbounded, bounded = self._fill(
                    root, stamps, [chunk], evict_every
                )
                for src, dst in self.EDGES:
                    got = bounded.edge_timestamps_range(
                        src, dst, 0.0, float(stamps[-1]) + 1.0
                    )
                    want = np.sort(unbounded.edge_timestamps(src, dst))
                    assert np.array_equal(got, want)

        check()


# ---------------------------------------------------------------------------
# Summaries: materialization, folding, engine wiring
# ---------------------------------------------------------------------------


class TestSummaries:
    def _summary(self, block_start, lag=None, quiet=False):
        return BlockSummary(
            client="C", root="WS", src="WS", dst="DB",
            block_start=block_start, block_length=4, quantum=0.5,
            x_total=0.0 if quiet else 4.0, x_energy=0.0 if quiet else 6.0,
            y_total=0.0 if quiet else 4.0, y_energy=0.0 if quiet else 6.0,
            lag_products=None if quiet else np.asarray(lag, dtype=np.float64),
            spectrum=None, spectrum_size=None,
        )

    def test_round_trip_dict(self):
        summary = self._summary(0, [1.0, 2.0, 3.0])
        clone = BlockSummary.from_dict(summary.to_dict())
        assert clone.block_start == 0
        assert np.array_equal(clone.lag_products, summary.lag_products)

    def test_fold_requires_rows(self):
        from repro.errors import CorrelationError

        with pytest.raises(CorrelationError):
            fold_summaries([])

    def test_fold_quiet_rows_contribute_length_only(self):
        rows = [self._summary(0, [4.0, 2.0, 1.0]), self._summary(4, quiet=True)]
        series = fold_summaries(rows)
        assert series.n == 8
        assert not series.degenerate

    def test_engine_materializes_summaries_and_spill_stage(self, tmp_path):
        from repro.analysis.history import raw_span_estimate, span_estimate

        topo, _ = chain_topology()
        lake = TraceLake(tmp_path / "lake")
        sink = TraceCollector(client_nodes=["C"], retention=CFG.retention)
        engine = E2EProfEngine(CFG, capture_sink=sink, lake=lake)
        engine.attach(topo)
        topo.run_until(90.0)
        engine.close()

        stats = lake.stats()
        assert stats["spilled_records"] > 0
        assert stats["summary_rows"] > 0
        ledger = engine.ledger.latest
        assert STAGE_SPILL in ledger.stages
        assert set(PIPELINE_STAGES) <= set(ledger.stages)
        assert sink.ingest_stats()["lake"]["enabled"] is True

        est = span_estimate(lake, "C", "WS", "WS", "DB")
        assert est.source == "summaries"
        assert est.blocks > 0
        assert not est.degenerate
        raw = raw_span_estimate(lake, CFG, "C", "WS", "WS", "DB", 10.0, 55.0,
                                max_lag=1000)
        assert not raw.degenerate
        # The fold's O(max_lag/span) boundary approximation: the peak
        # delay agrees with an exact raw replay to within a few quanta.
        assert abs(est.delay - raw.delay) <= 0.02

        with pytest.raises(AnalysisError):
            span_estimate(lake, "C", "WS", "WS", "NOPE")

    def test_no_lake_means_no_spill_stage(self):
        topo, _ = chain_topology()
        engine = E2EProfEngine(CFG)
        engine.attach(topo)
        topo.run_until(30.0)
        assert STAGE_SPILL not in engine.ledger.latest.stages

    def test_collector_without_lake_reports_disabled(self):
        collector = TraceCollector(retention=31.0)
        collector.ingest_batch("A", "B", np.arange(4.0))
        assert collector.ingest_stats()["lake"] == {"enabled": False}
