"""Tests for service-graph diffing."""

import pytest

from repro.analysis.diff import diff_graphs
from repro.core.service_graph import ServiceGraph
from repro.errors import AnalysisError


def graph(ws_ts=0.003, ts_db=0.011, extra=None):
    g = ServiceGraph("C", "WS")
    g.add_edge("WS", "TS", [ws_ts])
    g.add_edge("TS", "DB", [ts_db])
    if extra:
        for (src, dst), delay in extra.items():
            g.add_edge(src, dst, [delay])
    return g


class TestDiff:
    def test_identical_graphs(self):
        diff = diff_graphs(graph(), graph())
        assert diff.unchanged
        assert "no structural" in diff.summary()

    def test_delay_shift_detected(self):
        diff = diff_graphs(graph(), graph(ts_db=0.051))
        assert not diff.unchanged
        significant = diff.significant_deltas()
        assert [d.edge for d in significant] == [("TS", "DB")]
        assert significant[0].change == pytest.approx(0.040)
        assert significant[0].relative == pytest.approx(0.040 / 0.011)

    def test_small_shift_filtered(self):
        diff = diff_graphs(graph(), graph(ts_db=0.0112))
        assert diff.significant_deltas() == []

    def test_structural_changes(self):
        before = graph(extra={("DB", "X"): 0.020})
        after = graph(extra={("TS", "Y"): 0.030})
        diff = diff_graphs(before, after)
        assert diff.removed_edges == {("DB", "X")}
        assert diff.added_edges == {("TS", "Y")}
        text = diff.summary()
        assert "disappeared: DB->X" in text
        assert "appeared:    TS->Y" in text

    def test_suspect_nodes(self):
        # TS's computation delay grows from 8 to 48 ms.
        diff = diff_graphs(graph(), graph(ts_db=0.051))
        assert diff.suspect_nodes() == ["TS"]
        assert "suspect node(s): TS" in diff.summary()

    def test_different_clients_rejected(self):
        other = ServiceGraph("C2", "WS")
        with pytest.raises(AnalysisError):
            diff_graphs(graph(), other)

    def test_incident_workflow(self, affinity_rubis):
        """Baseline window vs incident window of a real run: the diff
        should be clean (same topology, same delays up to noise)."""
        from repro.core.pathmap import compute_service_graphs
        from tests.conftest import FAST_CONFIG

        early = compute_service_graphs(
            affinity_rubis.collector.window(FAST_CONFIG, end_time=32.0, start_time=2.0),
            FAST_CONFIG,
        ).graph_for("C1")
        late = compute_service_graphs(
            affinity_rubis.collector.window(FAST_CONFIG, end_time=62.0, start_time=32.0),
            FAST_CONFIG,
        ).graph_for("C1")
        diff = diff_graphs(early, late)
        assert diff.added_edges == set()
        assert diff.removed_edges == set()
        assert diff.significant_deltas(absolute=0.005, relative=0.3) == []
