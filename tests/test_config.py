"""Unit tests for PathmapConfig validation and derived quantities."""

import dataclasses

import pytest

from repro.config import DELTA_CONFIG, RUBIS_CONFIG, PathmapConfig
from repro.errors import ConfigError


class TestValidation:
    def test_defaults_are_the_paper_rubis_settings(self):
        cfg = PathmapConfig()
        assert cfg.window == 180.0
        assert cfg.refresh_interval == 60.0
        assert cfg.quantum == 1e-3
        assert cfg.sampling_window == 50e-3
        assert cfg.max_transaction_delay == 60.0

    def test_rejects_non_positive_quantum(self):
        with pytest.raises(ConfigError):
            PathmapConfig(quantum=0.0)
        with pytest.raises(ConfigError):
            PathmapConfig(quantum=-1e-3)

    def test_rejects_non_positive_window(self):
        with pytest.raises(ConfigError):
            PathmapConfig(window=0.0)

    def test_rejects_refresh_longer_than_window(self):
        with pytest.raises(ConfigError):
            PathmapConfig(window=60.0, refresh_interval=61.0)

    def test_refresh_equal_to_window_is_allowed(self):
        cfg = PathmapConfig(window=60.0, refresh_interval=60.0)
        assert cfg.refresh_quanta == cfg.window_quanta

    def test_rejects_sampling_window_smaller_than_quantum(self):
        with pytest.raises(ConfigError):
            PathmapConfig(quantum=1e-3, sampling_window=0.5e-3)

    def test_rejects_sampling_window_not_multiple_of_quantum(self):
        with pytest.raises(ConfigError):
            PathmapConfig(quantum=1e-3, sampling_window=1.5e-3)

    def test_rejects_non_positive_transaction_bound(self):
        with pytest.raises(ConfigError):
            PathmapConfig(max_transaction_delay=0.0)

    def test_rejects_bad_spike_sigma(self):
        with pytest.raises(ConfigError):
            PathmapConfig(spike_sigma=0.0)

    def test_rejects_negative_resolution_window(self):
        with pytest.raises(ConfigError):
            PathmapConfig(resolution_window=-1.0)

    def test_rejects_zero_min_overlap(self):
        with pytest.raises(ConfigError):
            PathmapConfig(min_overlap_samples=0)

    def test_rejects_bad_min_spike_height(self):
        with pytest.raises(ConfigError):
            PathmapConfig(min_spike_height=-0.1)
        with pytest.raises(ConfigError):
            PathmapConfig(min_spike_height=1.0)
        # Default keeps the paper's exact rule.
        assert PathmapConfig().min_spike_height == 0.0


class TestDerivedQuantities:
    def test_window_quanta(self):
        cfg = PathmapConfig(window=2.0, refresh_interval=1.0, quantum=1e-3)
        assert cfg.window_quanta == 2000

    def test_refresh_quanta(self):
        cfg = PathmapConfig(window=2.0, refresh_interval=0.5, quantum=1e-3)
        assert cfg.refresh_quanta == 500

    def test_sampling_quanta_default_ratio(self):
        cfg = PathmapConfig()
        assert cfg.sampling_quanta == 50

    def test_max_lag_capped_by_window(self):
        cfg = PathmapConfig(window=1.0, refresh_interval=1.0, max_transaction_delay=10.0)
        assert cfg.max_lag_quanta == cfg.window_quanta - 1

    def test_max_lag_from_transaction_bound(self):
        cfg = PathmapConfig(window=10.0, refresh_interval=1.0, max_transaction_delay=2.0)
        assert cfg.max_lag_quanta == 2000

    def test_resolution_defaults_to_sampling_window(self):
        cfg = PathmapConfig()
        assert cfg.resolution_quanta == cfg.sampling_quanta

    def test_explicit_resolution_window(self):
        cfg = PathmapConfig(resolution_window=0.1)
        assert cfg.resolution_quanta == 100

    def test_with_window_rescales(self):
        cfg = PathmapConfig().with_window(60.0)
        assert cfg.window == 60.0
        assert cfg.refresh_interval <= 60.0
        # Other fields preserved.
        assert cfg.quantum == 1e-3

    def test_with_window_explicit_refresh(self):
        cfg = PathmapConfig().with_window(120.0, refresh_interval=30.0)
        assert cfg.refresh_interval == 30.0

    def test_frozen(self):
        cfg = PathmapConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.window = 10.0


class TestPresets:
    def test_rubis_preset_matches_paper(self):
        assert RUBIS_CONFIG.window == 180.0
        assert RUBIS_CONFIG.quantum == 1e-3
        assert RUBIS_CONFIG.sampling_window == 50e-3
        assert RUBIS_CONFIG.max_transaction_delay == 60.0

    def test_delta_preset_matches_paper(self):
        assert DELTA_CONFIG.window == 3600.0
        assert DELTA_CONFIG.quantum == 1.0
        assert DELTA_CONFIG.sampling_window == 50.0
