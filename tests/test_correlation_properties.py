"""Property tests: the four correlation kernels are interchangeable.

The paper's optimizations (sparse, RLE, FFT -- Section 3.5) are only
valid if they compute the *same* normalized cross-correlation as the
dense reference. Hypothesis generates adversarial density pairs; the
fixed edge cases cover the degenerate inputs the generators rarely hit
(all-zero signals, a single aligned spike, the max-lag boundary).
"""

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st

from repro.core.correlation import (
    batch_lag_products,
    correlate_batch,
    correlate_dense,
    correlate_fft,
    correlate_rle,
    correlate_sparse,
    sparse_lag_products,
)
from repro.core.rle import rle_encode
from repro.core.timeseries import DensityTimeSeries

QUANTUM = 1e-3

#: The direct variants reorder exact arithmetic; FFT goes through a
#: transform and earns a looser bound.
DIRECT_TOL = dict(rtol=1e-7, atol=1e-8)
FFT_TOL = dict(rtol=1e-5, atol=1e-6)

VARIANTS = [
    ("sparse", correlate_sparse, DIRECT_TOL),
    ("rle", correlate_rle, DIRECT_TOL),
    ("fft", correlate_fft, FFT_TOL),
]


def series(dense, start=0):
    return DensityTimeSeries.from_dense(
        np.asarray(dense, dtype=np.float64), start, QUANTUM
    )


def assert_variants_agree(x, y, max_lag=None):
    ref = correlate_dense(x, y, max_lag)
    for name, fn, tol in VARIANTS:
        got = fn(x, y, max_lag)
        assert got.n == ref.n, name
        assert got.degenerate == ref.degenerate, name
        assert got.quantum == ref.quantum, name
        np.testing.assert_allclose(
            got.values, ref.values, err_msg=f"method {name}", **tol
        )


#: Mostly-zero non-negative densities, like real sqrt-count signals.
#: Quarter-integers are exact in float64, so a constant signal has
#: *exactly* zero variance in every variant (all agree it's degenerate)
#: and any non-constant signal is well-conditioned -- arbitrary floats
#: would let 1e-16 variance residues turn the normalization into 0/0
#: noise that legitimately differs between summation orders.
density_values = st.lists(
    st.one_of(
        st.just(0.0),
        st.integers(min_value=0, max_value=200).map(lambda k: k / 4.0),
    ),
    min_size=2,
    max_size=96,
)


class TestPropertyAgreement:
    @given(xs=density_values, ys=density_values, lag=st.integers(0, 128))
    def test_all_variants_agree(self, xs, ys, lag):
        n = min(len(xs), len(ys))
        x = series(xs[:n])
        y = series(ys[:n])
        assert_variants_agree(x, y, max_lag=lag)

    @given(xs=density_values, ys=density_values)
    def test_full_lag_range_agrees(self, xs, ys):
        n = min(len(xs), len(ys))
        assert_variants_agree(series(xs[:n]), series(ys[:n]), max_lag=None)

    @given(
        xs=density_values,
        ys=density_values,
        start=st.integers(-1000, 1000),
        lag=st.integers(0, 64),
    )
    def test_window_start_is_irrelevant(self, xs, ys, start, lag):
        """Correlation depends on relative lag only, not absolute indices."""
        n = min(len(xs), len(ys))
        at_zero = correlate_sparse(series(xs[:n]), series(ys[:n]), lag)
        shifted = correlate_sparse(
            series(xs[:n], start), series(ys[:n], start), lag
        )
        np.testing.assert_allclose(shifted.values, at_zero.values, **DIRECT_TOL)
        assert_variants_agree(series(xs[:n], start), series(ys[:n], start), lag)

    @given(xs=density_values, lag=st.integers(0, 64))
    def test_rle_input_equals_sparse_input(self, xs, lag):
        """Feeding pre-encoded RLE blocks must not change any variant."""
        x = series(xs)
        y = series(list(reversed(xs)))
        ref = correlate_dense(x, y, lag)
        got = correlate_rle(rle_encode(x), rle_encode(y), lag)
        assert got.degenerate == ref.degenerate
        np.testing.assert_allclose(got.values, ref.values, **DIRECT_TOL)


class TestEdgeCases:
    def test_all_zero_is_degenerate_everywhere(self):
        x = series([0.0] * 40)
        y = series([0.0] * 40)
        ref = correlate_dense(x, y, 10)
        assert ref.degenerate
        assert not np.any(ref.values)
        assert_variants_agree(x, y, max_lag=10)

    def test_one_constant_signal_is_degenerate(self):
        x = series([3.0] * 30)  # zero variance
        y = series([0.0, 1.0, 0.0, 2.0] * 7 + [0.0, 1.0])
        assert correlate_dense(x, y, 5).degenerate
        assert_variants_agree(x, y, max_lag=5)

    def test_single_spike_pair_peaks_at_offset(self):
        n, offset = 64, 9
        xs = [0.0] * n
        ys = [0.0] * n
        xs[5] = 4.0
        ys[5 + offset] = 2.0
        x, y = series(xs), series(ys)
        ref = correlate_dense(x, y, n - 1)
        assert int(np.argmax(ref.values)) == offset
        assert_variants_agree(x, y, max_lag=n - 1)

    def test_max_lag_boundary(self):
        rng = np.random.default_rng(0)
        dense = rng.integers(0, 4, size=32).astype(float)
        x, y = series(dense), series(dense[::-1].copy())
        # Exactly n-1, and beyond n-1 (every variant must clip identically).
        for lag in (31, 32, 10_000):
            assert_variants_agree(x, y, max_lag=lag)
            assert correlate_dense(x, y, lag).max_lag == 31

    def test_zero_max_lag(self):
        x = series([1.0, 0.0, 2.0, 0.0])
        y = series([0.0, 2.0, 0.0, 1.0])
        assert_variants_agree(x, y, max_lag=0)
        assert correlate_sparse(x, y, 0).values.size == 1


#: Batches are small lists of densities sharing one window length.
batch_values = st.lists(density_values, min_size=0, max_size=5)


class TestBatchKernel:
    """The reference-grouped batch kernel against the per-pair kernels."""

    @given(xs=density_values, rows=batch_values, lag=st.integers(0, 128))
    def test_batch_rows_match_sparse_kernel_exactly(self, xs, rows, lag):
        """Each row of batch_lag_products is bitwise identical to the
        per-pair sparse kernel (same pair enumeration order, one
        bincount per batch) -- the engine relies on this to keep the
        batched refresh bit-identical to the per-pair path."""
        n = max(2, min([len(xs)] + [len(r) for r in rows] or [len(xs)]))
        x = series(xs[:n] if len(xs) >= n else xs + [0.0] * (n - len(xs)))
        ys = [
            series(r[:n] if len(r) >= n else r + [0.0] * (n - len(r)))
            for r in rows
        ]
        mat = batch_lag_products(x, ys, lag)
        assert mat.shape == (len(ys), lag + 1)
        for row, y in enumerate(ys):
            expected = sparse_lag_products(x, y, lag)
            assert np.array_equal(mat[row], expected), f"row {row}"

    @given(xs=density_values, rows=batch_values)
    def test_correlate_batch_agrees_with_all_variants(self, xs, rows):
        """correlate_batch rows agree with every per-pair kernel
        (dense reference plus sparse/rle/fft within their tolerances)."""
        n = max(2, min([len(xs)] + [len(r) for r in rows] or [len(xs)]))
        x = series(xs[:n] if len(xs) >= n else xs + [0.0] * (n - len(xs)))
        ys = [
            series(r[:n] if len(r) >= n else r + [0.0] * (n - len(r)))
            for r in rows
        ]
        got = correlate_batch(x, ys)
        assert len(got) == len(ys)
        for row, y in enumerate(ys):
            ref = correlate_dense(x, y, None)
            assert got[row].degenerate == ref.degenerate
            np.testing.assert_allclose(
                got[row].values, ref.values, err_msg=f"row {row} vs dense",
                **DIRECT_TOL,
            )
            for name, fn, tol in VARIANTS:
                np.testing.assert_allclose(
                    got[row].values,
                    fn(x, y, None).values,
                    err_msg=f"row {row} vs {name}",
                    **tol,
                )

    def test_empty_batch(self):
        x = series([1.0, 0.0, 2.0, 0.0])
        mat = batch_lag_products(x, [], 3)
        assert mat.shape == (0, 4)
        assert correlate_batch(x, []) == []

    def test_all_zero_rows_are_zero_and_degenerate(self):
        x = series([1.0, 0.0, 2.0, 0.0, 1.0, 0.0])
        quiet = series([0.0] * 6)
        mat = batch_lag_products(x, [quiet, quiet], 4)
        assert not np.any(mat)
        for corr in correlate_batch(x, [quiet]):
            assert corr.degenerate
            assert not np.any(corr.values)

    def test_quiet_x_zeroes_every_row(self):
        x = series([0.0] * 8)
        ys = [series([1.0] * 8), series([0.0, 2.0] * 4)]
        assert not np.any(batch_lag_products(x, ys, 5))

    def test_single_run_rows(self):
        """Single-spike and single-run blocks: the shapes RLE transport
        produces when a class emits one burst per window."""
        n = 32
        x_dense = [0.0] * n
        x_dense[4] = 3.0
        single_spike = [0.0] * n
        single_spike[11] = 2.0
        single_run = [0.0] * 8 + [1.5] * 16 + [0.0] * 8
        x = series(x_dense)
        ys = [series(single_spike), series(single_run)]
        mat = batch_lag_products(x, ys, n - 1)
        for row, y in enumerate(ys):
            assert np.array_equal(mat[row], sparse_lag_products(x, y, n - 1))
        # Spike-vs-spike peaks at their offset.
        assert int(np.argmax(mat[0])) == 7

    @given(xs=density_values, rows=batch_values, lag=st.integers(0, 64))
    def test_batch_accepts_rle_blocks(self, xs, rows, lag):
        """RLE-encoded inputs give the same matrix as sparse inputs."""
        n = max(2, min([len(xs)] + [len(r) for r in rows] or [len(xs)]))
        x = series(xs[:n] if len(xs) >= n else xs + [0.0] * (n - len(xs)))
        ys = [
            series(r[:n] if len(r) >= n else r + [0.0] * (n - len(r)))
            for r in rows
        ]
        from_sparse = batch_lag_products(x, ys, lag)
        from_rle = batch_lag_products(
            rle_encode(x), [rle_encode(y) for y in ys], lag
        )
        assert np.array_equal(from_sparse, from_rle)
