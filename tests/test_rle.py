"""Unit and property tests for run-length encoded series (Section 3.5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rle import Run, RunLengthSeries, rle_decode, rle_encode
from repro.core.timeseries import DensityTimeSeries
from repro.errors import SeriesError


def sparse_from(dense, start=0, quantum=1e-3):
    return DensityTimeSeries.from_dense(dense, start, quantum)


# Dense arrays with few distinct values, so runs actually occur.
dense_arrays = st.lists(
    st.sampled_from([0.0, 0.0, 1.0, 1.0, 2.0]), min_size=0, max_size=60
)


class TestRun:
    def test_rejects_bad_count(self):
        with pytest.raises(SeriesError):
            Run(0, 0, 1.0)

    def test_rejects_bad_value(self):
        with pytest.raises(SeriesError):
            Run(0, 1, 0.0)

    def test_end(self):
        assert Run(3, 4, 1.0).end == 7


class TestEncodeDecode:
    def test_simple_runs(self):
        s = sparse_from([1.0, 1.0, 1.0, 0.0, 2.0, 2.0])
        r = rle_encode(s)
        assert r.num_runs == 2
        runs = list(r)
        assert runs[0] == Run(0, 3, 1.0)
        assert runs[1] == Run(4, 2, 2.0)

    def test_value_change_breaks_run(self):
        s = sparse_from([1.0, 2.0, 1.0])
        r = rle_encode(s)
        assert r.num_runs == 3

    def test_gap_breaks_run(self):
        s = sparse_from([1.0, 0.0, 1.0])
        r = rle_encode(s)
        assert r.num_runs == 2

    def test_empty(self):
        s = DensityTimeSeries.empty(3, 10, 1e-3)
        r = rle_encode(s)
        assert r.num_runs == 0
        assert rle_decode(r) == s

    def test_lossy_tolerance(self):
        s = sparse_from([1.0, 1.05, 2.0])
        r = rle_encode(s, value_tolerance=0.1)
        assert r.num_runs == 2  # first two merge, storing the first value
        assert r.to_dense()[1] == 1.0

    @given(dense_arrays, st.integers(min_value=-5, max_value=5))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_is_exact(self, dense, start):
        s = DensityTimeSeries.from_dense(dense, start, 1e-3)
        r = rle_encode(s)
        assert rle_decode(r) == s

    @given(dense_arrays)
    @settings(max_examples=60, deadline=None)
    def test_statistics_match_sparse(self, dense):
        s = DensityTimeSeries.from_dense(dense, 0, 1e-3)
        r = rle_encode(s)
        assert r.total() == pytest.approx(s.total())
        assert r.energy() == pytest.approx(s.energy())
        assert r.mean() == pytest.approx(s.mean())
        assert r.variance() == pytest.approx(s.variance())
        assert r.nnz == s.nnz

    @given(dense_arrays)
    @settings(max_examples=60, deadline=None)
    def test_runs_are_maximal(self, dense):
        s = DensityTimeSeries.from_dense(dense, 0, 1e-3)
        runs = list(rle_encode(s))
        for a, b in zip(runs, runs[1:]):
            # Adjacent runs either have a gap or different values.
            assert b.start > a.end or a.value != b.value


class TestValidation:
    def test_rejects_overlapping_runs(self):
        with pytest.raises(SeriesError):
            RunLengthSeries([0, 2], [3, 2], [1.0, 1.0], 0, 10, 1e-3)

    def test_rejects_out_of_window(self):
        with pytest.raises(SeriesError):
            RunLengthSeries([8], [4], [1.0], 0, 10, 1e-3)

    def test_rejects_bad_values(self):
        with pytest.raises(SeriesError):
            RunLengthSeries([0], [2], [0.0], 0, 10, 1e-3)

    def test_rejects_bad_counts(self):
        with pytest.raises(SeriesError):
            RunLengthSeries([0], [0], [1.0], 0, 10, 1e-3)

    def test_adjacent_equal_value_runs_allowed_but_not_produced(self):
        # Validity does not require maximality (encode produces maximal).
        r = RunLengthSeries([0, 2], [2, 2], [1.0, 1.0], 0, 10, 1e-3)
        assert r.num_runs == 2


class TestOperations:
    def test_restricted_splits_runs(self):
        s = sparse_from([1.0] * 6)
        r = rle_encode(s).restricted(2, 2)
        assert r.num_runs == 1
        assert list(r)[0] == Run(2, 2, 1.0)

    def test_restricted_empty_region(self):
        r = rle_encode(sparse_from([1.0, 1.0])).restricted(5, 3)
        assert r.num_runs == 0
        assert r.length == 3

    def test_shifted(self):
        r = rle_encode(sparse_from([1.0, 1.0], start=4)).shifted(10)
        assert list(r)[0].start == 14
        assert r.start == 14

    def test_concatenated_merges_boundary_run(self):
        a = rle_encode(sparse_from([1.0, 1.0], start=0))
        b = rle_encode(sparse_from([1.0, 2.0], start=2))
        c = a.concatenated(b)
        assert c.num_runs == 2
        assert list(c)[0] == Run(0, 3, 1.0)

    def test_concatenated_rejects_gap(self):
        a = rle_encode(sparse_from([1.0], start=0))
        b = rle_encode(sparse_from([1.0], start=5))
        with pytest.raises(SeriesError):
            a.concatenated(b)

    def test_compression_factors(self):
        s = sparse_from([1.0] * 10 + [0.0] * 90)
        r = rle_encode(s)
        assert r.compression_factor() == 10.0  # r: nnz per run
        assert r.overall_compression() == 100.0  # k*r: quanta per run

    def test_to_dense(self):
        dense = [0.0, 1.0, 1.0, 0.0, 3.0]
        r = rle_encode(sparse_from(dense))
        assert np.array_equal(r.to_dense(), dense)
