"""Tests for the four cross-correlation implementations (Section 3.4).

The central property: dense (the literal Eq. 1 reference), sparse (burst
compression), RLE (run pairs), and FFT (Eq. 2) all compute the SAME
normalized correlation, so they are interchangeable inside pathmap.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.correlation import (
    correlate_dense,
    correlate_fft,
    correlate_rle,
    correlate_sparse,
    cross_correlate,
    fft_lag_products,
    rle_lag_products,
    sparse_lag_products,
)
from repro.core.rle import rle_encode
from repro.core.timeseries import DensityTimeSeries
from repro.errors import CorrelationError, SeriesError


def sparse_from(dense, start=0, quantum=1e-3):
    return DensityTimeSeries.from_dense(dense, start, quantum)


dense_arrays = st.lists(
    st.sampled_from([0.0, 0.0, 0.0, 1.0, 1.0, 2.0, 3.0]), min_size=4, max_size=80
)


class TestAgreement:
    @given(dense_arrays, dense_arrays, st.integers(min_value=0, max_value=90), st.randoms())
    @settings(max_examples=120, deadline=None)
    def test_all_variants_agree(self, dx, dy, max_lag, _):
        n = min(len(dx), len(dy))
        x = sparse_from(dx[:n])
        y = sparse_from(dy[:n])
        ref = correlate_dense(x, y, max_lag)
        for impl in (correlate_sparse, correlate_rle, correlate_fft):
            got = impl(x, y, max_lag)
            assert got.degenerate == ref.degenerate
            assert got.n == ref.n
            if not ref.degenerate:
                np.testing.assert_allclose(got.values, ref.values, atol=1e-9)

    def test_rle_inputs_accepted_everywhere(self):
        x = sparse_from([1.0, 0, 2, 2, 0, 1])
        y = sparse_from([0, 1.0, 0, 2, 2, 1])
        ref = correlate_dense(x, y, 3)
        got = correlate_rle(rle_encode(x), rle_encode(y), 3)
        np.testing.assert_allclose(got.values, ref.values, atol=1e-9)

    def test_misaligned_windows_are_intersected(self):
        x = sparse_from([1.0, 2, 0, 1, 0, 3], start=0)
        y = sparse_from([2.0, 0, 1, 1, 3, 0], start=2)
        ref = correlate_dense(x, y, 2)
        assert ref.n == 4  # overlap of [0,6) and [2,8)
        got = correlate_sparse(x, y, 2)
        np.testing.assert_allclose(got.values, ref.values, atol=1e-9)


class TestSemantics:
    def test_identical_signal_peaks_at_zero_lag(self):
        rng = np.random.default_rng(1)
        dense = rng.integers(0, 4, 500).astype(float)
        x = sparse_from(dense)
        corr = correlate_sparse(x, x, 50)
        assert int(np.argmax(corr.values)) == 0
        assert corr.values[0] == pytest.approx(1.0, abs=1e-9)

    def test_shifted_copy_peaks_at_shift(self):
        rng = np.random.default_rng(2)
        dense = (rng.random(400) < 0.2).astype(float)
        shift = 17
        shifted = np.concatenate([np.zeros(shift), dense[:-shift]])
        corr = correlate_sparse(sparse_from(dense), sparse_from(shifted), 60)
        assert int(np.argmax(corr.values)) == shift

    def test_independent_signals_have_low_correlation(self):
        rng = np.random.default_rng(3)
        x = sparse_from((rng.random(2000) < 0.1).astype(float))
        y = sparse_from((rng.random(2000) < 0.1).astype(float))
        corr = correlate_sparse(x, y, 100)
        assert np.abs(corr.values).max() < 0.25

    def test_values_bounded_by_one(self):
        rng = np.random.default_rng(4)
        for _ in range(10):
            x = sparse_from(rng.integers(0, 5, 100).astype(float))
            y = sparse_from(rng.integers(0, 5, 100).astype(float))
            corr = correlate_sparse(x, y, 30)
            # Eq.1 with full-window normalization stays in [-1, 1] up to
            # boundary effects that vanish for lag << n.
            assert np.all(corr.values <= 1.0 + 1e-9)

    def test_degenerate_constant_signal(self):
        x = sparse_from([1.0] * 20)
        y = sparse_from([0.0, 1.0] * 10)
        for impl in (correlate_dense, correlate_sparse, correlate_rle, correlate_fft):
            corr = impl(x, y, 5)
            assert corr.degenerate
            assert np.all(corr.values == 0.0)

    def test_degenerate_empty_signal(self):
        x = DensityTimeSeries.empty(0, 20, 1e-3)
        y = sparse_from([0.0, 1.0] * 10)
        corr = correlate_sparse(x, y, 5)
        assert corr.degenerate

    def test_lag_axis(self):
        x = sparse_from([1.0, 0, 2, 1])
        corr = correlate_sparse(x, x, 2)
        assert list(corr.lags) == [0, 1, 2]
        np.testing.assert_allclose(corr.lag_seconds(), [0.0, 1e-3, 2e-3])

    def test_max_lag_none_gives_full_range(self):
        x = sparse_from([1.0, 0, 2, 1])
        corr = correlate_dense(x, x)
        assert corr.max_lag == 3

    def test_max_lag_capped_at_window(self):
        x = sparse_from([1.0, 0, 2, 1])
        corr = correlate_sparse(x, x, 100)
        assert corr.max_lag == 3


class TestLagProducts:
    def test_sparse_raw_products(self):
        x = sparse_from([1.0, 2.0, 0.0])
        y = sparse_from([3.0, 0.0, 4.0])
        out = sparse_lag_products(x, y, 2)
        # S[0]=1*3, S[1]=2*4 (x[1]*y[2]), S[2]=1*4
        np.testing.assert_allclose(out, [3.0, 8.0, 4.0])

    def test_rle_matches_sparse_products(self):
        rng = np.random.default_rng(5)
        for _ in range(20):
            dx = rng.integers(0, 3, 50).astype(float)
            dy = rng.integers(0, 3, 50).astype(float)
            x, y = sparse_from(dx), sparse_from(dy)
            want = sparse_lag_products(x, y, 20)
            got = rle_lag_products(rle_encode(x), rle_encode(y), 20)
            np.testing.assert_allclose(got, want, atol=1e-9)

    def test_fft_matches_sparse_products(self):
        rng = np.random.default_rng(6)
        dx = rng.integers(0, 3, 64).astype(float)
        dy = rng.integers(0, 3, 64).astype(float)
        want = sparse_lag_products(sparse_from(dx), sparse_from(dy), 30)
        got = fft_lag_products(dx, dy, 30)
        np.testing.assert_allclose(got, want, atol=1e-6)

    def test_disjoint_windows_absolute_lags(self):
        # Cross-block products: x in [0,4), y in [4,8).
        x = sparse_from([1.0, 0, 0, 2.0], start=0)
        y = sparse_from([3.0, 0, 1.0, 0], start=4)
        out = sparse_lag_products(x, y, 6)
        # pairs: (idx0,val1)-(idx4,val3): lag 4 -> 3; (idx0)-(idx6,1): lag 6 -> 1
        # (idx3,2)-(idx4,3): lag 1 -> 6; (idx3,2)-(idx6,1): lag 3 -> 2
        np.testing.assert_allclose(out, [0, 6, 0, 2, 3, 0, 1])

    def test_negative_max_lag_rejected(self):
        x = sparse_from([1.0])
        with pytest.raises(CorrelationError):
            sparse_lag_products(x, x, -1)
        with pytest.raises(CorrelationError):
            rle_lag_products(rle_encode(x), rle_encode(x), -1)


class TestDispatcher:
    def test_auto_uses_rle_for_rle_inputs(self):
        x = rle_encode(sparse_from([1.0, 0, 2, 2]))
        corr = cross_correlate(x, x, 2)
        assert corr.values[0] == pytest.approx(1.0)

    def test_explicit_method(self):
        x = sparse_from([1.0, 0, 2, 2])
        for method in ("dense", "sparse", "rle", "fft"):
            corr = cross_correlate(x, x, 2, method=method)
            assert corr.values[0] == pytest.approx(1.0, abs=1e-6)

    def test_unknown_method(self):
        x = sparse_from([1.0, 0, 2])
        with pytest.raises(CorrelationError):
            cross_correlate(x, x, 2, method="quantum")

    def test_non_overlapping_windows_raise(self):
        x = sparse_from([1.0], start=0)
        y = sparse_from([1.0], start=100)
        for method in ("dense", "sparse", "rle", "fft"):
            with pytest.raises(SeriesError):
                cross_correlate(x, y, 2, method=method)
