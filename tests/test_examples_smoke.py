"""Smoke tests: the fast runnable examples must execute cleanly.

Only the quick examples run here (the longer ones -- live monitoring, SLA
scheduling, the Delta pipeline, the service demo -- exercise code paths
already covered by dedicated integration tests and take minutes)."""

import pathlib
import subprocess
import sys

import pytest

pytestmark = pytest.mark.slow

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "pubsub_overlay.py",
    "capacity_planning.py",
    "offline_trace_analysis.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), path
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_all_examples_have_docstrings_and_main():
    for path in sorted(EXAMPLES_DIR.glob("*.py")):
        source = path.read_text()
        assert source.lstrip().startswith('"""'), f"{path.name} lacks a docstring"
        assert 'if __name__ == "__main__":' in source, path.name
