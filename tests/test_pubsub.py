"""Integration tests: pathmap on a publish-subscribe overlay.

The paper's Section 5 names pub-sub systems as the next application
domain; these tests show the unmodified algorithm recovers per-topic
dissemination trees, including root-level fan-out (one inbound event,
multiple outbound messages)."""

import pytest

from repro.apps.pubsub import PUBSUB_ANALYSIS_CONFIG, build_pubsub
from repro.core.pathmap import compute_service_graphs


@pytest.fixture(scope="module")
def pubsub_result():
    deployment = build_pubsub(seed=17, publish_rate=20.0)
    deployment.run_until(62.0)
    window = deployment.window(end_time=61.0)
    return deployment, compute_service_graphs(window, PUBSUB_ANALYSIS_CONFIG)


class TestDisseminationTrees:
    def test_news_tree(self, pubsub_result):
        deployment, result = pubsub_result
        graph = result.graph_for("PUB-news")
        for edge in deployment.expected_edges["news"]:
            assert graph.has_edge(*edge), edge
        # The other branch carries no news.
        assert not graph.has_edge("B0", "BR")
        assert "SUB3" not in graph

    def test_alerts_tree_with_root_fanout(self, pubsub_result):
        deployment, result = pubsub_result
        graph = result.graph_for("PUB-alerts")
        for edge in deployment.expected_edges["alerts"]:
            assert graph.has_edge(*edge), edge
        # news-only leaf not reached by alerts.
        assert not graph.has_edge("BL", "SUB2")

    def test_no_reverse_edges(self, pubsub_result):
        _, result = pubsub_result
        for graph in result.graphs.values():
            assert not graph.has_edge("BL", "B0")
            assert not graph.has_edge("SUB1", "BL")

    def test_fanout_branches_have_consistent_delays(self, pubsub_result):
        _, result = pubsub_result
        graph = result.graph_for("PUB-alerts")
        left = graph.edge("B0", "BL").min_delay
        right = graph.edge("B0", "BR").min_delay
        # Both copies leave the root after the same ~4 ms processing.
        assert left == pytest.approx(right, abs=0.004)
        assert 0.002 < left < 0.012

    def test_per_hop_delays_accumulate(self, pubsub_result):
        _, result = pubsub_result
        graph = result.graph_for("PUB-news")
        assert (
            graph.edge("PUB-news", "B0").min_delay
            < graph.edge("B0", "BL").min_delay
            < graph.edge("BL", "SUB1").min_delay
        )

    def test_online_engine_on_pubsub(self):
        """The online engine works unchanged on the unidirectional
        overlay: per-topic trees refresh live."""
        from repro import E2EProfEngine

        deployment = build_pubsub(seed=18, publish_rate=20.0)
        engine = E2EProfEngine(PUBSUB_ANALYSIS_CONFIG)
        engine.attach(deployment.topology)
        deployment.run_until(65.0)
        result = engine.latest_result
        news = result.graph_for("PUB-news")
        assert news.has_edge("B0", "BL")
        assert news.has_edge("BL", "SUB1")
        alerts = result.graph_for("PUB-alerts")
        assert alerts.has_edge("B0", "BR")

    def test_shared_edge_carries_both_topics(self, pubsub_result):
        """BL -> SUB1 transports news and alerts; each topic's graph
        still labels it with its own (coincident) delay."""
        _, result = pubsub_result
        news = result.graph_for("PUB-news").edge("BL", "SUB1").min_delay
        alerts = result.graph_for("PUB-alerts").edge("BL", "SUB1").min_delay
        assert news == pytest.approx(alerts, abs=0.005)
