"""Conformance test for the Prometheus text exposition (format 0.0.4).

The output is compared against hand-written expected text so that every
formatting rule -- HELP/TYPE headers, label escaping, bucket cumulation,
the mandatory ``+Inf`` bucket, ``_sum``/``_count`` lines and non-finite
value spelling -- is pinned exactly, not just structurally.
"""

import math

from repro.obs import MetricsRegistry


def test_counter_gauge_histogram_exact_text():
    registry = MetricsRegistry(enabled=True, namespace="repro")

    refreshes = registry.counter("engine_refreshes_total", "Refreshes run")
    refreshes.inc(3)

    lag = registry.gauge("collector_lag_seconds", "Collector lag")
    lag.set(0.25)

    latency = registry.histogram(
        "refresh_seconds", "Refresh wall time", buckets=[0.1, 1.0]
    )
    latency.observe(0.05)   # <= 0.1
    latency.observe(0.5)    # <= 1.0
    latency.observe(2.0)    # overflow -> +Inf only

    expected = (
        "# HELP repro_collector_lag_seconds Collector lag\n"
        "# TYPE repro_collector_lag_seconds gauge\n"
        "repro_collector_lag_seconds 0.25\n"
        "# HELP repro_engine_refreshes_total Refreshes run\n"
        "# TYPE repro_engine_refreshes_total counter\n"
        "repro_engine_refreshes_total 3\n"
        "# HELP repro_refresh_seconds Refresh wall time\n"
        "# TYPE repro_refresh_seconds histogram\n"
        'repro_refresh_seconds_bucket{le="0.1"} 1\n'
        'repro_refresh_seconds_bucket{le="1"} 2\n'
        'repro_refresh_seconds_bucket{le="+Inf"} 3\n'
        "repro_refresh_seconds_sum 2.55\n"
        "repro_refresh_seconds_count 3\n"
    )
    assert registry.to_prometheus() == expected


def test_label_escaping_is_exact():
    registry = MetricsRegistry(enabled=True, namespace="repro")
    weird = registry.counter(
        "edges_total",
        "Edges seen",
        labels={"edge": 'WS->"DB"\\x\ny'},
    )
    weird.inc()
    expected = (
        "# HELP repro_edges_total Edges seen\n"
        "# TYPE repro_edges_total counter\n"
        'repro_edges_total{edge="WS->\\"DB\\"\\\\x\\ny"} 1\n'
    )
    assert registry.to_prometheus() == expected


def test_help_escaping_is_exact():
    registry = MetricsRegistry(enabled=True, namespace="repro")
    registry.counter("c_total", "line one\nline \\ two").inc()
    text = registry.to_prometheus()
    assert "# HELP repro_c_total line one\\nline \\\\ two\n" in text


def test_non_finite_values_spelled_per_spec():
    registry = MetricsRegistry(enabled=True, namespace="repro")
    registry.gauge("g_inf").set(math.inf)
    registry.gauge("g_neg_inf").set(-math.inf)
    registry.gauge("g_nan").set(math.nan)
    text = registry.to_prometheus()
    # The spec spells these exactly +Inf / -Inf / NaN; Python's repr
    # ("inf", "nan") would not parse back.
    assert "repro_g_inf +Inf\n" in text
    assert "repro_g_neg_inf -Inf\n" in text
    assert "repro_g_nan NaN\n" in text
    assert "inf\n" not in text.replace("+Inf", "").replace("-Inf", "")


def test_labeled_series_share_one_header():
    registry = MetricsRegistry(enabled=True, namespace="repro")
    registry.counter("hits_total", "Hits", labels={"node": "WS"}).inc(1)
    registry.counter("hits_total", "Hits", labels={"node": "DB"}).inc(2)
    text = registry.to_prometheus()
    assert text.count("# TYPE repro_hits_total counter") == 1
    assert 'repro_hits_total{node="DB"} 2\n' in text
    assert 'repro_hits_total{node="WS"} 1\n' in text


def test_empty_registry_renders_empty_string():
    assert MetricsRegistry(enabled=True).to_prometheus() == ""


def test_log_bucket_histogram_exact_text():
    """exponential_buckets-backed histograms follow the same exposition
    rules: sorted bounds, cumulative counts, mandatory +Inf."""
    registry = MetricsRegistry(enabled=True, namespace="repro")
    stage = registry.log_histogram(
        "stage_seconds", "Stage wall time",
        labels={"stage": "dfs"}, start=0.001, factor=10.0, count=3,
    )
    stage.observe(0.0005)  # <= 0.001
    stage.observe(0.005)   # <= 0.01
    stage.observe(5.0)     # overflow -> +Inf only

    expected = (
        "# HELP repro_stage_seconds Stage wall time\n"
        "# TYPE repro_stage_seconds histogram\n"
        'repro_stage_seconds_bucket{stage="dfs",le="0.001"} 1\n'
        'repro_stage_seconds_bucket{stage="dfs",le="0.01"} 2\n'
        'repro_stage_seconds_bucket{stage="dfs",le="0.1"} 2\n'
        'repro_stage_seconds_bucket{stage="dfs",le="+Inf"} 3\n'
        'repro_stage_seconds_sum{stage="dfs"} 5.0055\n'
        'repro_stage_seconds_count{stage="dfs"} 3\n'
    )
    assert registry.to_prometheus() == expected
