"""Tests for trace record types."""

import pytest

from repro.errors import TraceError
from repro.tracing.records import AccessLogRecord, CaptureRecord


class TestCaptureRecord:
    def test_observer_must_be_endpoint(self):
        with pytest.raises(TraceError):
            CaptureRecord(1.0, "A", "B", "C")

    def test_self_loop_rejected(self):
        with pytest.raises(TraceError):
            CaptureRecord(1.0, "A", "A", "A")

    def test_edge_and_side(self):
        record = CaptureRecord(1.0, "A", "B", "B")
        assert record.edge == ("A", "B")
        assert record.observed_at_destination
        assert not CaptureRecord(1.0, "A", "B", "A").observed_at_destination

    def test_ordering_by_timestamp(self):
        a = CaptureRecord(1.0, "A", "B", "A")
        b = CaptureRecord(2.0, "A", "B", "A")
        assert a < b

    def test_ground_truth_fields_not_compared(self):
        a = CaptureRecord(1.0, "A", "B", "A", request_id=1)
        b = CaptureRecord(1.0, "A", "B", "A", request_id=2)
        assert a == b


class TestAccessLogRecord:
    def test_valid_recv(self):
        record = AccessLogRecord(1.0, "S", 42)
        assert record.event == "recv"
        assert record.peer is None

    def test_send_requires_peer(self):
        with pytest.raises(TraceError):
            AccessLogRecord(1.0, "S", 42, event="send")

    def test_unknown_event(self):
        with pytest.raises(TraceError):
            AccessLogRecord(1.0, "S", 42, event="drop")

    def test_ordering(self):
        a = AccessLogRecord(1.0, "S", 1)
        b = AccessLogRecord(2.0, "S", 1)
        assert a < b
