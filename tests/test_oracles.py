"""Cross-validation against independent implementations (scipy).

Our four correlation kernels are tested against each other; these tests
check the *shared definition* against scipy's reference routines, so a
systematic error common to all four would still be caught.
"""

import numpy as np
import pytest

scipy_signal = pytest.importorskip("scipy.signal")

from repro.core.correlation import correlate_dense, fft_lag_products
from repro.core.timeseries import DensityTimeSeries


def sparse_from(dense, start=0):
    return DensityTimeSeries.from_dense(dense, start, 1e-3)


class TestAgainstScipy:
    def test_lag_products_match_scipy_correlate(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            n = int(rng.integers(16, 200))
            x = rng.integers(0, 4, n).astype(float)
            y = rng.integers(0, 4, n).astype(float)
            max_lag = int(rng.integers(1, n))
            ours = fft_lag_products(x, y, max_lag)
            # scipy.signal.correlate(y, x, 'full')[n-1+d] = sum x[i]*y[i+d]
            full = scipy_signal.correlate(y, x, mode="full")
            theirs = full[n - 1 : n + max_lag]
            np.testing.assert_allclose(ours, theirs, atol=1e-8)

    def test_normalized_correlation_matches_manual_pearson(self):
        rng = np.random.default_rng(1)
        n = 400
        xd = rng.integers(0, 3, n).astype(float)
        yd = np.concatenate([np.zeros(7), xd[:-7]]) + rng.integers(0, 2, n)
        corr = correlate_dense(sparse_from(xd), sparse_from(yd), 20)
        mx, my = xd.mean(), yd.mean()
        sx, sy = xd.std(), yd.std()
        for d in (0, 7, 15):
            manual = np.dot(xd[: n - d] - mx, yd[d:] - my) / (n * sx * sy)
            assert corr.values[d] == pytest.approx(manual, abs=1e-12)

    def test_peak_detection_agrees_with_scipy_find_peaks(self):
        rng = np.random.default_rng(2)
        from repro.core.correlation import CorrelationSeries
        from repro.core.spikes import detect_spikes

        values = rng.normal(0.0, 0.01, 600)
        for pos in (100, 350):
            values[pos] = 0.8
        series = CorrelationSeries(values, 1e-3, 600)
        ours = {s.lag for s in detect_spikes(series, sigma=3.0, resolution_quanta=10)}
        threshold = values.mean() + 3 * values.std()
        theirs, _ = scipy_signal.find_peaks(values, height=threshold, distance=10)
        assert ours == set(theirs)
