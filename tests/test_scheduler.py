"""Tests for E2EProf-driven path selection (Section 4.2)."""

import pytest

from repro.apps.dispatch import LatencyAwareRouter
from repro.core.pathmap import PathmapResult, PathmapStats
from repro.core.service_graph import ServiceGraph
from repro.core.spikes import Spike
from repro.errors import AnalysisError
from repro.management.scheduler import PathSelector, path_latency_via, response_latency


def graph_via(client, ts, e2e, root="WS"):
    """C -> WS -> ts -> DB and back, with end-to-end delay ``e2e``."""
    g = ServiceGraph(client, root)
    g.add_edge(root, ts, [0.005])
    g.add_edge(ts, "DB", [e2e / 2])
    spike = Spike(int(e2e * 1000), e2e, 0.9, 0.5)
    g.add_edge(root, client, [e2e], [spike])
    return g


def result_for(graphs):
    return PathmapResult(
        {(g.client, g.root): g for g in graphs}, PathmapStats()
    )


class TestHelpers:
    def test_path_latency_via(self):
        g = graph_via("C1", "TS1", 0.050)
        assert path_latency_via(g, "TS1") == pytest.approx(0.025)
        assert path_latency_via(g, "TS9") is None

    def test_response_latency_uses_strongest_spike(self):
        g = graph_via("C1", "TS1", 0.050)
        assert response_latency(g) == pytest.approx(0.050)

    def test_response_latency_missing_edge(self):
        g = ServiceGraph("C1", "WS")
        g.add_edge("WS", "TS1", [0.005])
        assert response_latency(g) is None


class TestPathSelector:
    def make(self):
        router = LatencyAwareRouter(["TS1", "TS2"])
        selector = PathSelector(
            router, "bidding", "comment",
            class_clients={"bidding": "C1", "comment": "C2"},
        )
        return router, selector

    def test_bootstrap_assigns_defaults(self):
        router, selector = self.make()
        selector.on_refresh(0.0, result_for([]))
        assert router.assignment("bidding") == "TS1"
        assert router.assignment("comment") == "TS2"
        assert selector.history == []  # bootstrap is not a measurement

    def test_steers_priority_to_faster_path(self):
        router, selector = self.make()
        selector.on_refresh(0.0, result_for([]))  # bootstrap: bid->TS1
        # bidding on TS1 measures 80ms; comment on TS2 measures 30ms.
        result = result_for([
            graph_via("C1", "TS1", 0.080),
            graph_via("C2", "TS2", 0.030),
        ])
        selector.on_refresh(60.0, result)
        assert router.assignment("bidding") == "TS2"
        assert router.assignment("comment") == "TS1"
        assert selector.history[-1].priority_target == "TS2"
        assert selector.history[-1].latencies == pytest.approx(
            {"TS1": 0.080, "TS2": 0.030}
        )

    def test_keeps_assignment_when_already_fastest(self):
        router, selector = self.make()
        selector.on_refresh(0.0, result_for([]))
        result = result_for([
            graph_via("C1", "TS1", 0.030),
            graph_via("C2", "TS2", 0.080),
        ])
        selector.on_refresh(60.0, result)
        assert router.assignment("bidding") == "TS1"

    def test_skips_on_insufficient_signal(self):
        router, selector = self.make()
        selector.on_refresh(0.0, result_for([]))
        result = result_for([graph_via("C1", "TS1", 0.080)])  # one path only
        selector.on_refresh(60.0, result)
        assert router.assignment("bidding") == "TS1"  # unchanged
        assert selector.history == []

    def test_needs_two_paths(self):
        router = LatencyAwareRouter(["TS1", "TS2"])
        with pytest.raises(AnalysisError):
            PathSelector(router, "a", "b", paths=["TS1"])


@pytest.mark.slow
class TestIntegration:
    """Abbreviated Table 1 scenario: selector beats static assignment when
    one path is persistently slower."""

    def test_selector_avoids_slow_path(self):
        from repro import E2EProfEngine, PathmapConfig, build_rubis

        cfg = PathmapConfig(window=15.0, refresh_interval=5.0, quantum=1e-3,
                            sampling_window=50e-3, max_transaction_delay=2.0)
        rubis = build_rubis(dispatch="latency_aware", seed=9, request_rate=10.0,
                            config=cfg,
                            service_means={"EJB1": 0.020, "EJB2": 0.020})
        # EJB2 is persistently slow.
        rubis.ejbs["EJB2"].set_extra_delay(lambda now: 0.080)
        engine = E2EProfEngine(cfg)
        engine.attach(rubis.topology)
        selector = PathSelector(
            rubis.dispatcher, "bidding", "comment",
            class_clients={"bidding": "C1", "comment": "C2"},
        )
        selector.attach(engine)
        rubis.run_until(240.0)
        # Bidding must end (and mostly stay) on the healthy path TS1.
        assert rubis.dispatcher.assignment("bidding") == "TS1"
        bid = rubis.clients["bidding"].mean_latency(since=60.0)
        com = rubis.clients["comment"].mean_latency(since=60.0)
        assert bid < com
