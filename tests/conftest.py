"""Shared fixtures.

Expensive end-to-end simulations are session-scoped so the many
integration tests that inspect their results don't re-run them.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import PathmapConfig, compute_service_graphs
from repro.apps.rubis import build_rubis

try:  # hypothesis is optional; property tests importorskip it themselves
    from hypothesis import HealthCheck, settings as hypothesis_settings

    # "ci" (the default) derandomizes so CI failures always reproduce;
    # set HYPOTHESIS_PROFILE=dev locally for fresh random examples.
    hypothesis_settings.register_profile(
        "ci",
        derandomize=True,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    hypothesis_settings.register_profile("dev", deadline=None)
    hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
except ImportError:  # pragma: no cover - container always has hypothesis
    pass

#: Analysis parameters shared by the integration fixtures: the paper's
#: tau/omega with a window sized for fast tests.
FAST_CONFIG = PathmapConfig(
    window=60.0,
    refresh_interval=20.0,
    quantum=1e-3,
    sampling_window=50e-3,
    max_transaction_delay=2.0,
    min_spike_height=0.10,
)


@pytest.fixture(autouse=True)
def _pinned_global_seeds():
    """Defense-in-depth determinism: every audited test passes explicit
    seeds (``default_rng(N)``), but any future code path that falls back
    to the *global* random state gets a fixed, per-test seed here rather
    than entropy from the OS. Keeps back-to-back suite runs bit-identical.
    """
    import random

    random.seed(0xE2EB0F)
    np.random.seed(0xE2EB0F)
    yield


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def affinity_rubis():
    """A RUBiS run with affinity dispatch (Figure 5 setup), 65 sim-seconds."""
    rubis = build_rubis(dispatch="affinity", seed=7, request_rate=10.0, config=FAST_CONFIG)
    rubis.run_until(65.0)
    return rubis


@pytest.fixture(scope="session")
def affinity_result(affinity_rubis):
    """Pathmap output over the affinity run."""
    window = affinity_rubis.window(end_time=63.0)
    return compute_service_graphs(window, affinity_rubis.config, method="rle")


@pytest.fixture(scope="session")
def roundrobin_rubis():
    """A RUBiS run with round-robin dispatch (Figure 6 setup)."""
    rubis = build_rubis(dispatch="round_robin", seed=8, request_rate=10.0, config=FAST_CONFIG)
    rubis.run_until(65.0)
    return rubis


@pytest.fixture(scope="session")
def roundrobin_result(roundrobin_rubis):
    window = roundrobin_rubis.window(end_time=63.0)
    return compute_service_graphs(window, roundrobin_rubis.config, method="rle")
