"""Consistent-hash shard map invariants.

The process-parallel correlate stage partitions (client, front_end)
class keys across worker processes with :class:`repro.core.shards.ShardMap`.
Correctness of the whole sharded refresh rests on a handful of map
properties, checked here under hypothesis:

* total coverage -- every key is owned by exactly one shard in range;
* determinism -- assignment is a pure function of (key, num_shards),
  stable across map instances (and therefore across processes);
* minimal movement -- growing ``n -> n + 1`` moves keys **only** onto
  the new shard (the structural guarantee behind "rebalance without
  recompute"), and the number moved is roughly ``K / N``;
* partition completeness -- ``partition()`` covers every key once,
  lists every shard, and preserves input order.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.core.shards import ShardMap, pack_blocks, unpack_blocks
from repro.errors import AnalysisError

#: Class keys as they appear in the engine: tuples of node-id strings.
node_ids = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_-.", min_size=1, max_size=16
)
class_keys = st.tuples(node_ids, node_ids)
key_lists = st.lists(class_keys, min_size=0, max_size=200, unique=True)
shard_counts = st.integers(min_value=1, max_value=8)


class TestOwnership:
    @given(keys=key_lists, shards=shard_counts)
    def test_every_key_owned_by_exactly_one_shard_in_range(self, keys, shards):
        map_ = ShardMap(shards)
        for key in keys:
            owner = map_.owner(key)
            assert 0 <= owner < shards

    @given(keys=key_lists, shards=shard_counts)
    def test_assignment_is_stable_and_idempotent(self, keys, shards):
        first = ShardMap(shards)
        second = ShardMap(shards)  # fresh instance: no per-process salt
        for key in keys:
            assert first.owner(key) == first.owner(key)
            assert first.owner(key) == second.owner(key)

    def test_single_shard_owns_everything(self):
        map_ = ShardMap(1)
        assert map_.owner(("client", "web")) == 0
        assert map_.owner(("x", "y")) == 0

    def test_invalid_shard_counts_rejected(self):
        with pytest.raises(AnalysisError):
            ShardMap(0)
        with pytest.raises(AnalysisError):
            ShardMap(-1)
        with pytest.raises(AnalysisError):
            ShardMap(2, vnodes=0)


class TestMinimalMovement:
    @given(keys=key_lists, shards=st.integers(min_value=1, max_value=7))
    def test_growth_moves_keys_only_to_the_new_shard(self, keys, shards):
        # Shard i's ring points depend only on i, so growing n -> n+1
        # adds points without moving any existing one: a key either
        # keeps its owner or lands on the new shard. Exact, not
        # probabilistic.
        before = ShardMap(shards)
        after = ShardMap(shards + 1)
        for key in keys:
            old, new = before.owner(key), after.owner(key)
            assert new == old or new == shards, key

    @given(keys=key_lists, shards=st.integers(min_value=1, max_value=7))
    def test_shrink_is_the_inverse_of_growth(self, keys, shards):
        # Removing the highest shard returns every displaced key to the
        # owner it had before that shard existed.
        small = ShardMap(shards)
        big = ShardMap(shards + 1)
        for key in keys:
            if big.owner(key) != shards:
                assert big.owner(key) == small.owner(key)

    @settings(max_examples=20)
    @given(shards=st.integers(min_value=1, max_value=7))
    def test_movement_fraction_is_about_k_over_n(self, shards):
        # With a fixed large key population, the expected share moved by
        # one growth step is K/(N+1); allow generous slack since 64
        # vnodes only roughly balance the ring.
        keys = [(f"client-{i}", f"svc-{i % 13}") for i in range(2000)]
        before = ShardMap(shards)
        after = ShardMap(shards + 1)
        moved = sum(1 for key in keys if before.owner(key) != after.owner(key))
        expected = len(keys) / (shards + 1)
        assert moved <= 3.0 * expected
        assert moved > 0  # the new shard takes ownership of something


class TestPartition:
    @given(keys=key_lists, shards=shard_counts)
    def test_partition_covers_every_key_exactly_once(self, keys, shards):
        map_ = ShardMap(shards)
        parts = map_.partition(keys)
        assert sorted(parts) == list(range(shards))  # every shard present
        flat = [key for shard in sorted(parts) for key in parts[shard]]
        assert sorted(flat) == sorted(keys)
        for shard, owned in parts.items():
            for key in owned:
                assert map_.owner(key) == shard

    @given(keys=key_lists, shards=shard_counts)
    def test_partition_preserves_input_order_within_shards(self, keys, shards):
        map_ = ShardMap(shards)
        parts = map_.partition(keys)
        for shard, owned in parts.items():
            expected = [key for key in keys if map_.owner(key) == shard]
            assert owned == expected


class TestBlockShipment:
    """pack/unpack must round-trip the columnar block arrays exactly."""

    def test_roundtrip_is_exact_and_zero_copy(self):
        import numpy as np

        from repro.core.rle import RunLengthSeries

        fresh = {
            ("a", "b"): RunLengthSeries(
                np.array([0, 5, 9], dtype=np.int64),
                np.array([2, 1, 3], dtype=np.int64),
                np.array([1.0, 2.5, 0.25]),
                start=0,
                length=20,
                quantum=1e-3,
            ),
            ("b", "c"): RunLengthSeries(
                np.array([3], dtype=np.int64),
                np.array([4], dtype=np.int64),
                np.array([7.0]),
                start=0,
                length=20,
                quantum=1e-3,
            ),
        }
        shm, header = pack_blocks(fresh)
        assert shm is not None
        try:
            out = unpack_blocks(shm, header)
            assert set(out) == set(fresh)
            for edge, block in fresh.items():
                got = out[edge]
                assert np.array_equal(got.starts, block.starts)
                assert np.array_equal(got.counts, block.counts)
                assert np.array_equal(got.values, block.values)
                assert (got.start, got.length, got.quantum) == (
                    block.start,
                    block.length,
                    block.quantum,
                )
                # Zero-copy: the unpacked arrays alias the segment.
                assert got.values.base is not None
            del out, got
        finally:
            shm.close()
            shm.unlink()

    def test_empty_shipment_skips_the_segment(self):
        shm, header = pack_blocks({})
        assert shm is None
        assert header == []
        assert unpack_blocks(None, header) == {}
