"""Performance regression guards.

The paper's entire point is that pathmap is cheap enough for *online*
use; these tests pin generous upper bounds on the costs that matter so a
performance regression fails CI rather than silently making the engine
fall behind its refresh interval.
"""

import time

import pytest

from repro import E2EProfEngine, PathmapConfig, build_rubis
from repro.core.pathmap import compute_service_graphs

pytestmark = pytest.mark.slow

CFG = PathmapConfig(
    window=180.0,
    refresh_interval=60.0,
    quantum=1e-3,
    sampling_window=50e-3,
    max_transaction_delay=2.0,
    min_spike_height=0.10,
)


@pytest.fixture(scope="module")
def three_minute_trace():
    rubis = build_rubis(dispatch="round_robin", seed=23, request_rate=10.0,
                        config=CFG)
    rubis.run_until(185.0)
    return rubis


class TestAnalysisBudget:
    def test_full_window_rle_analysis_under_budget(self, three_minute_trace):
        """3 minutes of 2-class traffic, full RLE analysis: must stay
        far below the 60 s refresh interval (generous 10x margin over
        typical ~0.5 s)."""
        window = three_minute_trace.window(end_time=183.0)
        started = time.perf_counter()
        result = compute_service_graphs(window, CFG, method="rle")
        elapsed = time.perf_counter() - started
        assert result.stats.graphs == 2
        assert elapsed < 6.0

    def test_engine_refresh_keeps_up(self, three_minute_trace):
        """Online per-refresh cost must be a small fraction of dW."""
        rubis = build_rubis(dispatch="round_robin", seed=24, request_rate=10.0,
                            config=CFG)
        engine = E2EProfEngine(CFG)
        engine.attach(rubis.topology)
        durations = []
        engine.subscribe(lambda now, res: durations.append(engine.last_refresh_seconds))
        rubis.run_until(305.0)
        assert durations
        assert max(durations) < CFG.refresh_interval / 10

    def test_simulation_throughput(self):
        """The DES substrate itself must stay fast enough for the long
        scenario tests (>= 20k events/second of wall clock)."""
        rubis = build_rubis(dispatch="affinity", seed=25, request_rate=20.0, config=CFG)
        started = time.perf_counter()
        rubis.run_until(60.0)
        elapsed = time.perf_counter() - started
        events = rubis.topology.sim.events_run
        assert events / elapsed > 20_000
