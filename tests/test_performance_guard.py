"""Performance regression guards.

The paper's entire point is that pathmap is cheap enough for *online*
use; these tests pin generous upper bounds on the costs that matter so a
performance regression fails CI rather than silently making the engine
fall behind its refresh interval.
"""

import time

import pytest

from repro import E2EProfEngine, PathmapConfig, build_rubis
from repro.core.pathmap import compute_service_graphs
from repro.obs.spans import NULL_SPAN, SpanTracer

pytestmark = pytest.mark.slow

CFG = PathmapConfig(
    window=180.0,
    refresh_interval=60.0,
    quantum=1e-3,
    sampling_window=50e-3,
    max_transaction_delay=2.0,
    min_spike_height=0.10,
)


@pytest.fixture(scope="module")
def three_minute_trace():
    rubis = build_rubis(dispatch="round_robin", seed=23, request_rate=10.0,
                        config=CFG)
    rubis.run_until(185.0)
    return rubis


class TestAnalysisBudget:
    def test_full_window_rle_analysis_under_budget(self, three_minute_trace):
        """3 minutes of 2-class traffic, full RLE analysis: must stay
        far below the 60 s refresh interval (generous 10x margin over
        typical ~0.5 s)."""
        window = three_minute_trace.window(end_time=183.0)
        started = time.perf_counter()
        result = compute_service_graphs(window, CFG, method="rle")
        elapsed = time.perf_counter() - started
        assert result.stats.graphs == 2
        assert elapsed < 6.0

    def test_engine_refresh_keeps_up(self, three_minute_trace):
        """Online per-refresh cost must be a small fraction of dW."""
        rubis = build_rubis(dispatch="round_robin", seed=24, request_rate=10.0,
                            config=CFG)
        engine = E2EProfEngine(CFG)
        engine.attach(rubis.topology)
        durations = []
        engine.subscribe(lambda now, res: durations.append(engine.last_refresh_seconds))
        rubis.run_until(305.0)
        assert durations
        assert max(durations) < CFG.refresh_interval / 10

    def test_disabled_tracing_overhead_under_five_percent(self):
        """The self-tracing contract: with the tracer off, every span
        site costs one attribute check plus a null context manager.
        Price that per-op cost, scale it by the spans a traced refresh
        actually opens, and demand the total stays under 5% of an
        untraced refresh."""
        tracer = SpanTracer()  # disabled
        ops = 200_000
        started = time.perf_counter()
        for _ in range(ops):
            with tracer.span("engine.refresh", refresh=0):
                pass
        per_op = (time.perf_counter() - started) / ops
        assert tracer.span("x") is NULL_SPAN  # stayed disabled

        # Spans per refresh, measured on a short traced run.
        rubis = build_rubis(dispatch="round_robin", seed=26, request_rate=10.0,
                            config=CFG)
        traced = E2EProfEngine(CFG)
        traced.tracer.enable()
        traced.attach(rubis.topology)
        rubis.run_until(65.0)
        frames = traced.flight.frames()
        assert frames
        spans_per_refresh = max(len(f.spans) for f in frames)

        # Mean untraced refresh cost on the same workload shape.
        rubis = build_rubis(dispatch="round_robin", seed=26, request_rate=10.0,
                            config=CFG)
        engine = E2EProfEngine(CFG)
        engine.attach(rubis.topology)
        durations = []
        engine.subscribe(lambda now, res: durations.append(engine.last_refresh_seconds))
        rubis.run_until(185.0)
        mean_refresh = sum(durations) / len(durations)

        assert per_op * spans_per_refresh < 0.05 * mean_refresh

    def test_batched_refresh_not_slower_on_quiet_heavy_workload(self):
        """The batched refresh (grouped kernels + quiet-edge skipping)
        must never lose to the legacy per-pair refresh on a workload
        where most classes go quiet -- its target regime. The bound is
        deliberately lenient (1.25x) to tolerate CI noise; the real
        speedup assertion lives in benchmarks/test_refresh_throughput.py."""
        from repro.apps.manyclass import build_many_class

        quiet_cfg = PathmapConfig(
            window=6.0,
            refresh_interval=2.0,
            quantum=1e-3,
            sampling_window=1e-3,
            max_transaction_delay=2.0,
            min_spike_height=0.10,
        )

        def median_refresh(batched: bool) -> float:
            dep = build_many_class(classes=12, quiet_fraction=0.75, seed=5,
                                   quiet_after=5.0, config=quiet_cfg)
            engine = E2EProfEngine(dep.config, batched=batched)
            samples = []
            engine.subscribe_metrics(lambda now, res, s: samples.append(s))
            engine.attach(dep.topology)
            dep.run_until(28.0)
            engine.detach()
            steady = sorted(s.refresh_seconds for s in samples[4:])
            return steady[len(steady) // 2]

        serial = min(median_refresh(batched=False) for _ in range(2))
        batched = min(median_refresh(batched=True) for _ in range(2))
        assert batched < serial * 1.25, (
            f"batched refresh regressed: {batched * 1000:.1f}ms vs "
            f"serial {serial * 1000:.1f}ms"
        )

    def test_batched_refresh_not_slower_on_dense_smeared_blocks(self):
        """Smeared sampling windows make blocks near-dense -- the sparse
        batch kernel's worst case (its cost scales with sample pairs, the
        RLE kernel's with run pairs). The engine's density dispatch must
        route those rows to the RLE kernel, so the batched engine may not
        lose to the legacy per-pair engine here either."""
        from repro.apps.manyclass import build_many_class

        dense_cfg = PathmapConfig(
            window=6.0,
            refresh_interval=2.0,
            quantum=1e-3,
            sampling_window=50e-3,
            max_transaction_delay=0.5,
            min_spike_height=0.10,
        )

        def median_refresh(batched: bool) -> float:
            dep = build_many_class(classes=6, quiet_fraction=0.0, seed=9,
                                   config=dense_cfg)
            engine = E2EProfEngine(dep.config, batched=batched)
            samples = []
            engine.subscribe_metrics(lambda now, res, s: samples.append(s))
            engine.attach(dep.topology)
            dep.run_until(20.0)
            engine.detach()
            steady = sorted(s.refresh_seconds for s in samples[2:])
            return steady[len(steady) // 2]

        serial = min(median_refresh(batched=False) for _ in range(2))
        batched = min(median_refresh(batched=True) for _ in range(2))
        assert batched < serial * 1.25, (
            f"batched refresh regressed on dense blocks: "
            f"{batched * 1000:.1f}ms vs serial {serial * 1000:.1f}ms"
        )

    def test_simulation_throughput(self):
        """The DES substrate itself must stay fast enough for the long
        scenario tests (>= 20k events/second of wall clock)."""
        rubis = build_rubis(dispatch="affinity", seed=25, request_rate=20.0, config=CFG)
        started = time.perf_counter()
        rubis.run_until(60.0)
        elapsed = time.perf_counter() - started
        events = rubis.topology.sim.events_run
        assert events / elapsed > 20_000
