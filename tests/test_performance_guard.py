"""Performance regression guards.

The paper's entire point is that pathmap is cheap enough for *online*
use; these tests pin generous upper bounds on the costs that matter so a
performance regression fails CI rather than silently making the engine
fall behind its refresh interval.
"""

import time

import pytest

from repro import E2EProfEngine, PathmapConfig, build_rubis
from repro.core.pathmap import compute_service_graphs
from repro.obs.spans import NULL_SPAN, SpanTracer

pytestmark = pytest.mark.slow

CFG = PathmapConfig(
    window=180.0,
    refresh_interval=60.0,
    quantum=1e-3,
    sampling_window=50e-3,
    max_transaction_delay=2.0,
    min_spike_height=0.10,
)


@pytest.fixture(scope="module")
def three_minute_trace():
    rubis = build_rubis(dispatch="round_robin", seed=23, request_rate=10.0,
                        config=CFG)
    rubis.run_until(185.0)
    return rubis


class TestAnalysisBudget:
    def test_full_window_rle_analysis_under_budget(self, three_minute_trace):
        """3 minutes of 2-class traffic, full RLE analysis: must stay
        far below the 60 s refresh interval (generous 10x margin over
        typical ~0.5 s)."""
        window = three_minute_trace.window(end_time=183.0)
        started = time.perf_counter()
        result = compute_service_graphs(window, CFG, method="rle")
        elapsed = time.perf_counter() - started
        assert result.stats.graphs == 2
        assert elapsed < 6.0

    def test_engine_refresh_keeps_up(self, three_minute_trace):
        """Online per-refresh cost must be a small fraction of dW."""
        rubis = build_rubis(dispatch="round_robin", seed=24, request_rate=10.0,
                            config=CFG)
        engine = E2EProfEngine(CFG)
        engine.attach(rubis.topology)
        durations = []
        engine.subscribe(lambda now, res: durations.append(engine.last_refresh_seconds))
        rubis.run_until(305.0)
        assert durations
        assert max(durations) < CFG.refresh_interval / 10

    def test_disabled_tracing_overhead_under_five_percent(self):
        """The self-tracing contract: with the tracer off, every span
        site costs one attribute check plus a null context manager.
        Price that per-op cost, scale it by the spans a traced refresh
        actually opens, and demand the total stays under 5% of an
        untraced refresh."""
        tracer = SpanTracer()  # disabled
        ops = 200_000
        started = time.perf_counter()
        for _ in range(ops):
            with tracer.span("engine.refresh", refresh=0):
                pass
        per_op = (time.perf_counter() - started) / ops
        assert tracer.span("x") is NULL_SPAN  # stayed disabled

        # Spans per refresh, measured on a short traced run.
        rubis = build_rubis(dispatch="round_robin", seed=26, request_rate=10.0,
                            config=CFG)
        traced = E2EProfEngine(CFG)
        traced.tracer.enable()
        traced.attach(rubis.topology)
        rubis.run_until(65.0)
        frames = traced.flight.frames()
        assert frames
        spans_per_refresh = max(len(f.spans) for f in frames)

        # Mean untraced refresh cost on the same workload shape.
        rubis = build_rubis(dispatch="round_robin", seed=26, request_rate=10.0,
                            config=CFG)
        engine = E2EProfEngine(CFG)
        engine.attach(rubis.topology)
        durations = []
        engine.subscribe(lambda now, res: durations.append(engine.last_refresh_seconds))
        rubis.run_until(185.0)
        mean_refresh = sum(durations) / len(durations)

        assert per_op * spans_per_refresh < 0.05 * mean_refresh

    def test_simulation_throughput(self):
        """The DES substrate itself must stay fast enough for the long
        scenario tests (>= 20k events/second of wall clock)."""
        rubis = build_rubis(dispatch="affinity", seed=25, request_rate=20.0, config=CFG)
        started = time.perf_counter()
        rubis.run_until(60.0)
        elapsed = time.perf_counter() - started
        events = rubis.topology.sim.events_run
        assert events / elapsed > 20_000
