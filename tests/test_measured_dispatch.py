"""Measured-cost kernel dispatch must change routing, never results.

``PathmapConfig.measured_dispatch`` swaps the density dispatch rule's
modeled RLE cost constant for the ledger's measured ns/unit EWMAs. Both
correlation kernels produce bitwise-identical lag products, so the only
observable difference is *which* kernel did the work -- pinned here with
a hypothesis property over workload seeds, plus forced-EWMA tests that
flip the dispatch both ways and still demand identical graphs.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.apps.manyclass import build_many_class  # noqa: E402
from repro.config import PathmapConfig  # noqa: E402
from repro.core.correlation import (  # noqa: E402
    MODELED_RLE_COST_RATIO,
    rle_dispatch_units,
    sparse_dispatch_units,
)
from repro.core.engine import E2EProfEngine  # noqa: E402
from repro.obs.ledger import (  # noqa: E402
    KERNEL_RLE,
    KERNEL_SPARSE_BATCH,
    Ewma,
)

CFG = PathmapConfig(
    window=6.0,
    refresh_interval=2.0,
    quantum=1e-3,
    sampling_window=1e-3,
    max_transaction_delay=1.0,
    min_spike_height=0.10,
)

MEASURED_CFG = PathmapConfig(
    window=6.0,
    refresh_interval=2.0,
    quantum=1e-3,
    sampling_window=1e-3,
    max_transaction_delay=1.0,
    min_spike_height=0.10,
    measured_dispatch=True,
)


def run_engine(seed=3, end_time=12.0, classes=4, config=CFG, warm=None,
               **engine_kwargs):
    """A many-class run with an engine attached; returns the engine."""
    deployment = build_many_class(
        classes=classes,
        quiet_fraction=0.5,
        seed=seed,
        request_rate=10.0,
        quiet_after=5.0,
        config=config,
    )
    engine = E2EProfEngine(config, **engine_kwargs)
    if warm is not None:
        # Warm the kernel cost EWMAs through the public recording path:
        # one synthetic pre-refresh per (kernel -> ns/unit) entry.
        engine.ledger.begin_refresh()
        for kernel, ns_per_unit in warm.items():
            engine.ledger.record_kernel(
                kernel, rows=1, seconds=ns_per_unit * 1e-9, work_units=1.0
            )
        engine.ledger.complete(0.0, -1, refresh_seconds=0.0)
    engine.attach(deployment.topology)
    deployment.run_until(end_time)
    engine.detach()
    assert engine.latest_result is not None
    return engine


def assert_identical_graphs(a, b):
    ra, rb = a.latest_result, b.latest_result
    assert set(ra.graphs) == set(rb.graphs)
    for key, graph in ra.graphs.items():
        assert rb.graphs[key].to_dict() == graph.to_dict(), key
    assert ra.stats.correlations == rb.stats.correlations
    assert ra.stats.spikes == rb.stats.spikes


class TestBitIdentity:
    @pytest.mark.parametrize("seed", [3, 11])
    def test_measured_equals_modeled(self, seed):
        modeled = run_engine(seed=seed, config=CFG)
        measured = run_engine(seed=seed, config=MEASURED_CFG)
        assert modeled.measured_dispatch is False
        assert measured.measured_dispatch is True
        assert_identical_graphs(modeled, measured)

    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_measured_equals_modeled_property(self, seed):
        modeled = run_engine(seed=seed, end_time=9.0, classes=3, config=CFG)
        measured = run_engine(seed=seed, end_time=9.0, classes=3,
                              config=MEASURED_CFG)
        assert_identical_graphs(modeled, measured)

    def test_parallel_measured_matches_serial_modeled(self):
        parallel_cfg = PathmapConfig(
            window=6.0, refresh_interval=2.0, quantum=1e-3,
            sampling_window=1e-3, max_transaction_delay=1.0,
            min_spike_height=0.10, measured_dispatch=True, workers=4,
        )
        serial = run_engine(seed=7, config=CFG)
        parallel = run_engine(seed=7, config=parallel_cfg)
        assert_identical_graphs(serial, parallel)


class TestForcedDispatchFlip:
    def test_cheap_sparse_ewma_routes_everything_to_sparse(self):
        engine = run_engine(
            seed=5, config=MEASURED_CFG,
            warm={KERNEL_SPARSE_BATCH: 1e-3, KERNEL_RLE: 1e9},
        )
        rows = {k: sum(led.kernel(k).rows for led in engine.ledger.history()
                       if led.sequence >= 0)  # skip the synthetic warm-up
                for k in (KERNEL_SPARSE_BATCH, KERNEL_RLE)}
        assert rows[KERNEL_SPARSE_BATCH] > 0
        assert rows[KERNEL_RLE] == 0
        assert_identical_graphs(engine, run_engine(seed=5, config=CFG))

    def test_cheap_rle_ewma_routes_everything_to_rle(self):
        engine = run_engine(
            seed=5, config=MEASURED_CFG,
            warm={KERNEL_SPARSE_BATCH: 1e9, KERNEL_RLE: 1e-3},
        )
        rows = {k: sum(led.kernel(k).rows for led in engine.ledger.history()
                       if led.sequence >= 0)  # skip the synthetic warm-up
                for k in (KERNEL_SPARSE_BATCH, KERNEL_RLE)}
        assert rows[KERNEL_RLE] > 0
        assert rows[KERNEL_SPARSE_BATCH] == 0
        assert_identical_graphs(engine, run_engine(seed=5, config=CFG))

    def test_cold_ewmas_fall_back_to_modeled_rule(self):
        """Until *both* kernels' ns/unit EWMAs are warm, measured
        dispatch must route exactly like the modeled rule."""
        modeled = run_engine(seed=13, config=CFG)
        measured = run_engine(seed=13, config=MEASURED_CFG)
        for a, b in zip(modeled.ledger.history(), measured.ledger.history()):
            if (measured.ledger.ns_per_unit(KERNEL_SPARSE_BATCH) is None
                    or measured.ledger.ns_per_unit(KERNEL_RLE) is None):
                for kernel in (KERNEL_SPARSE_BATCH, KERNEL_RLE):
                    assert a.kernel(kernel).rows == b.kernel(kernel).rows


class TestPlumbing:
    def test_config_flag_reaches_engine(self):
        assert E2EProfEngine(CFG).measured_dispatch is False
        assert E2EProfEngine(MEASURED_CFG).measured_dispatch is True

    def test_engine_param_overrides_config(self):
        assert E2EProfEngine(CFG, measured_dispatch=True).measured_dispatch is True
        assert E2EProfEngine(MEASURED_CFG,
                             measured_dispatch=False).measured_dispatch is False


class TestDispatchUnits:
    def test_sparse_units_formula(self):
        assert sparse_dispatch_units(10, 20, 100, 4) == pytest.approx(
            10 * 5 * 20 / 100
        )

    def test_sparse_units_guards_empty_span(self):
        assert sparse_dispatch_units(10, 20, 0, 4) == pytest.approx(10 * 5 * 20)

    def test_rle_units_formula(self):
        assert rle_dispatch_units(6, 7) == 42.0
        assert MODELED_RLE_COST_RATIO == 4.0


class TestEwmaConvergence:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=1e-3, max_value=1e6), min_size=1,
                    max_size=50),
           st.floats(min_value=0.05, max_value=1.0))
    def test_value_stays_within_sample_bounds(self, samples, alpha):
        ewma = Ewma(alpha=alpha)
        for sample in samples:
            ewma.update(sample)
        assert min(samples) <= ewma.value <= max(samples)
        assert ewma.samples == len(samples)

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=1e-3, max_value=1e6),
           st.floats(min_value=1e-3, max_value=1e6))
    def test_converges_to_constant_tail(self, start, target):
        ewma = Ewma(alpha=0.2)
        ewma.update(start)
        for _ in range(200):
            ewma.update(target)
        assert ewma.value == pytest.approx(target, rel=1e-6)
