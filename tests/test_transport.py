"""Unit tests for the fault-tolerant trace transport (tracing.transport).

Fast, deterministic coverage of every transport component in isolation
-- the chaos soak (test_transport_chaos) and hypothesis properties
(test_transport_properties) drive the same machinery end to end.
"""

import numpy as np
import pytest

from repro.config import PathmapConfig, TransportConfig
from repro.core.rle import RunLengthSeries
from repro.errors import TraceError
from repro.tracing.transport import (
    QUALITY_DEGRADED,
    QUALITY_FRESH,
    QUALITY_STALE,
    TRACER_DEAD,
    TRACER_LAGGING,
    TRACER_LIVE,
    DataQuality,
    FaultyChannel,
    FRESH_QUALITY,
    LivenessWatchdog,
    ReorderBuffer,
    TransportLink,
    TransportReceiver,
    overall_quality,
)
from repro.tracing.wire import BlockFrame, decode_frame, encode_frame

QUANTUM = 1e-3
BLOCK_QUANTA = 100


def make_block(start, seed=0):
    rng = np.random.default_rng(seed)
    dense = rng.random(BLOCK_QUANTA)
    from repro.core.rle import rle_encode
    from repro.core.timeseries import DensityTimeSeries

    return rle_encode(DensityTimeSeries.from_dense(dense, start, QUANTUM))


def make_frame(node="N", epoch=0, seq=0, src="A", dst="N", start=None):
    if start is None:
        start = seq * BLOCK_QUANTA
    return BlockFrame(node, epoch, seq, src, dst, make_block(start, seed=seq))


class TestDataQuality:
    def test_fresh_is_ok_with_zero_penalty(self):
        assert FRESH_QUALITY.ok
        assert FRESH_QUALITY.penalty == 0.0

    def test_degraded_penalty_is_gap_ratio(self):
        q = DataQuality(QUALITY_DEGRADED, 0.25)
        assert not q.ok
        assert q.penalty == 0.25

    def test_stale_penalty_saturates(self):
        assert DataQuality(QUALITY_STALE, 0.1).penalty == 1.0

    def test_overall_quality_is_one_minus_mean_penalty(self):
        qs = [FRESH_QUALITY, DataQuality(QUALITY_DEGRADED, 0.5)]
        assert overall_quality(qs) == pytest.approx(0.75)

    def test_overall_quality_empty_is_perfect(self):
        assert overall_quality([]) == 1.0

    def test_overall_quality_floors_at_zero(self):
        assert overall_quality([DataQuality(QUALITY_STALE, 1.0)]) == 0.0


class TestFaultyChannel:
    def test_default_channel_is_perfect_passthrough(self):
        ch = FaultyChannel()
        assert ch.faultless
        assert ch.send(b"abc") == [b"abc"]
        assert ch.advance() == []

    def test_bad_rate_rejected(self):
        with pytest.raises(TraceError):
            FaultyChannel(drop=1.5)
        with pytest.raises(TraceError):
            FaultyChannel(max_delay_rounds=0)

    def test_seed_determinism(self):
        def run(seed):
            ch = FaultyChannel(seed=seed, drop=0.3, duplicate=0.3, reorder=0.3)
            out = []
            for i in range(50):
                out.append(tuple(ch.send(bytes([i]))))
                if i % 5 == 4:
                    out.append(tuple(ch.advance()))
            return out

        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_down_black_holes_everything(self):
        ch = FaultyChannel(down=True)
        assert ch.send(b"x") == []
        assert ch.frames_dropped == 1

    def test_drop_one_means_nothing_delivered(self):
        ch = FaultyChannel(drop=1.0)
        for i in range(10):
            assert ch.send(bytes([i])) == []
        assert ch.frames_dropped == 10

    def test_duplicate_one_delivers_two_copies(self):
        ch = FaultyChannel(duplicate=1.0)
        assert ch.send(b"p") == [b"p", b"p"]

    def test_reorder_holds_exactly_one_round(self):
        ch = FaultyChannel(reorder=1.0)
        assert ch.send(b"a") == []
        assert ch.advance() == [b"a"]

    def test_delay_respects_max_rounds(self):
        ch = FaultyChannel(seed=3, delay=1.0, max_delay_rounds=3)
        for i in range(20):
            ch.send(bytes([i]))
        collected = []
        for _ in range(3):
            collected.extend(ch.advance())
        assert sorted(collected) == [bytes([i]) for i in range(20)]

    def test_corrupt_flips_bytes(self):
        ch = FaultyChannel(seed=1, corrupt=1.0)
        out = ch.send(b"payload-bytes")
        assert len(out) == 1 and out[0] != b"payload-bytes"
        assert len(out[0]) == len(b"payload-bytes")

    def test_set_faults_mid_run(self):
        ch = FaultyChannel(drop=1.0)
        assert ch.send(b"x") == []
        ch.set_faults(drop=0.0)
        assert ch.send(b"y") == [b"y"]
        assert ch.faultless

    def test_drain_releases_everything_held(self):
        ch = FaultyChannel(seed=2, delay=1.0, max_delay_rounds=3)
        ch.send(b"h")
        assert ch.drain() == [b"h"]
        assert ch.advance() == []


class TestTransportLink:
    def test_sequences_advance_per_edge(self):
        link = TransportLink("N")
        blocks = {("A", "N"): make_block(0), ("B", "N"): make_block(0)}
        first = [decode_frame(p) for p in link.encode_blocks(blocks)]
        second = [decode_frame(p) for p in link.encode_blocks(blocks)]
        seqs = {f.edge: f.seq for f in first if not f.is_heartbeat}
        assert seqs == {("A", "N"): 0, ("B", "N"): 0}
        seqs = {f.edge: f.seq for f in second if not f.is_heartbeat}
        assert seqs == {("A", "N"): 1, ("B", "N"): 1}

    def test_heartbeat_appended_each_round(self):
        link = TransportLink("N")
        frames = [decode_frame(p) for p in link.encode_blocks({})]
        assert len(frames) == 1
        assert frames[0].is_heartbeat
        assert frames[0].node == "N"

    def test_restart_bumps_epoch_and_resets_seqs(self):
        link = TransportLink("N")
        link.encode_blocks({("A", "N"): make_block(0)})
        link.restart()
        assert link.epoch == 1
        assert link.restarts == 1
        frames = [
            decode_frame(p)
            for p in link.encode_blocks({("A", "N"): make_block(100)})
        ]
        data = [f for f in frames if not f.is_heartbeat][0]
        assert data.epoch == 1
        assert data.seq == 0


class TestReorderBuffer:
    def test_in_order_delivery(self):
        buf = ReorderBuffer(("N", "A", "N"), lateness=2)
        for seq in range(5):
            out = buf.push(make_frame(seq=seq))
            assert [f.seq for f in out] == [seq]
        assert buf.delivered == 5
        assert buf.gaps == 0

    def test_reordered_pair_resequenced(self):
        buf = ReorderBuffer(("N", "A", "N"), lateness=2)
        assert buf.push(make_frame(seq=1)) == []
        out = buf.push(make_frame(seq=0))
        assert [f.seq for f in out] == [0, 1]
        assert buf.reordered == 1

    def test_duplicates_never_redelivered(self):
        buf = ReorderBuffer(("N", "A", "N"), lateness=2)
        buf.push(make_frame(seq=0))
        assert buf.push(make_frame(seq=0)) == []
        assert buf.duplicates == 1

    def test_gap_declared_past_lateness(self):
        buf = ReorderBuffer(("N", "A", "N"), lateness=1)
        buf.push(make_frame(seq=0))
        assert buf.push(make_frame(seq=2)) == []  # within lateness: wait
        out = buf.push(make_frame(seq=3))  # hole now too old
        assert [f.seq for f in out] == [2, 3]
        notices = buf.drain_gap_notices()
        assert [n.seq for n in notices] == [1]
        # block_start derived from the seq -> start anchor.
        assert notices[0].block_start == BLOCK_QUANTA

    def test_late_recovery_after_gap(self):
        buf = ReorderBuffer(("N", "A", "N"), lateness=0)
        buf.push(make_frame(seq=0))
        buf.push(make_frame(seq=2))  # declares gap at 1 immediately
        assert buf.gaps == 1
        out = buf.push(make_frame(seq=1))  # late arrival
        assert [f.seq for f in out] == [1]
        assert buf.late_recovered == 1
        # ... but only once.
        assert buf.push(make_frame(seq=1)) == []
        assert buf.duplicates == 1

    def test_stale_epoch_dropped_for_good(self):
        buf = ReorderBuffer(("N", "A", "N"), lateness=2)
        buf.push(make_frame(epoch=1, seq=0))
        assert buf.push(make_frame(epoch=0, seq=5)) == []
        assert buf.stale_epoch_drops == 1

    def test_epoch_switch_drains_old_then_resets(self):
        buf = ReorderBuffer(("N", "A", "N"), lateness=3)
        buf.push(make_frame(epoch=0, seq=0))
        buf.push(make_frame(epoch=0, seq=2))  # buffered, waiting for 1
        out = buf.push(make_frame(epoch=1, seq=0))
        # Old epoch's pending seq 2 drains first (declaring the hole at
        # 1), then the new epoch's seq 0.
        assert [(f.epoch, f.seq) for f in out] == [(0, 2), (1, 0)]
        assert [n.seq for n in buf.drain_gap_notices()] == [1]
        assert buf.epoch == 1

    def test_flush_drains_pending(self):
        buf = ReorderBuffer(("N", "A", "N"), lateness=5)
        buf.push(make_frame(seq=2))
        out = buf.flush()
        assert [f.seq for f in out] == [2]
        assert buf.gaps == 2  # seqs 0 and 1 declared lost


class TestLivenessWatchdog:
    def test_thresholds_validated(self):
        with pytest.raises(TraceError):
            LivenessWatchdog(stale_after=0.0, dead_after=1.0)
        with pytest.raises(TraceError):
            LivenessWatchdog(stale_after=2.0, dead_after=1.0)

    def test_state_progression(self):
        dog = LivenessWatchdog(stale_after=10.0, dead_after=20.0)
        dog.heartbeat("N", now=0.0)
        assert dog.status("N", 5.0).state == TRACER_LIVE
        assert dog.status("N", 15.0).state == TRACER_LAGGING
        assert dog.status("N", 25.0).state == TRACER_DEAD

    def test_heartbeat_revives(self):
        dog = LivenessWatchdog(stale_after=10.0, dead_after=20.0)
        dog.heartbeat("N", now=0.0)
        dog.heartbeat("N", now=30.0)
        assert dog.status("N", 31.0).state == TRACER_LIVE

    def test_unknown_node_is_dead(self):
        dog = LivenessWatchdog(stale_after=10.0, dead_after=20.0)
        assert dog.status("ghost", 0.0).state == TRACER_DEAD

    def test_register_starts_clock_without_heartbeat(self):
        dog = LivenessWatchdog(stale_after=10.0, dead_after=20.0)
        dog.register("N", now=0.0)
        assert dog.status("N", 5.0).state == TRACER_LIVE
        assert dog.status("N", 25.0).state == TRACER_DEAD


class TestTransportReceiver:
    def test_roundtrip_through_link(self):
        link = TransportLink("N")
        recv = TransportReceiver(TransportConfig(), refresh_interval=10.0)
        payloads = link.encode_blocks({("A", "N"): make_block(0)})
        for p in payloads:
            recv.receive(p, now=0.0)
        frames = recv.poll()
        assert len(frames) == 1
        assert frames[0].edge == ("A", "N")
        assert recv.heartbeats == 1
        assert recv.edge_owner(("A", "N")) == "N"
        assert recv.known_edges() == [("A", "N")]

    def test_corrupt_payload_counted_not_raised(self):
        recv = TransportReceiver(TransportConfig(), refresh_interval=10.0)
        recv.receive(b"garbage-not-a-frame", now=0.0)
        assert recv.corrupt_blocks == 1
        assert recv.poll() == []

    def test_corrupt_counter_in_metrics_registry(self):
        from repro.obs import MetricsRegistry, snapshot

        registry = MetricsRegistry(enabled=True)
        recv = TransportReceiver(
            TransportConfig(), refresh_interval=10.0, metrics=registry
        )
        payload = bytearray(encode_frame(make_frame(seq=0)))
        payload[7] ^= 0xFF  # breaks the CRC
        recv.receive(bytes(payload), now=0.0)
        snap = snapshot(registry)
        assert snap["transport_corrupt_blocks_total"][""]["value"] == 1

    def test_totals_aggregate_across_streams(self):
        recv = TransportReceiver(TransportConfig(lateness_blocks=0), 10.0)
        recv.receive(encode_frame(make_frame(src="A", seq=0)), 0.0)
        recv.receive(encode_frame(make_frame(src="A", seq=2)), 0.0)
        recv.receive(encode_frame(make_frame(src="B", seq=0)), 0.0)
        recv.receive(encode_frame(make_frame(src="B", seq=0)), 0.0)
        totals = recv.totals()
        assert totals["gaps"] == 1
        assert totals["duplicates"] == 1
        assert totals["delivered"] == 3
        notices = recv.drain_gap_notices()
        assert len(notices) == 1 and notices[0].edge == ("A", "N")


class TestEngineTransport:
    CFG = PathmapConfig(
        window=20.0, refresh_interval=10.0, quantum=1e-3,
        sampling_window=50e-3, max_transaction_delay=2.0,
        min_spike_height=0.10,
    )

    def _engine(self, seed=7, factory=None):
        from repro.apps.rubis import build_rubis
        from repro.core.engine import E2EProfEngine

        rubis = build_rubis(
            dispatch="affinity", seed=seed, request_rate=10.0, config=self.CFG
        )
        engine = E2EProfEngine(
            self.CFG, transport=TransportConfig(), channel_factory=factory
        )
        engine.attach(rubis.topology)
        return rubis, engine

    def test_perfect_channels_stay_fresh(self):
        rubis, engine = self._engine()
        rubis.run_until(45.0)
        assert engine.quality_score == 1.0
        assert engine.latest_result.quality == 1.0
        assert engine.latest_result.degraded_edges() == {}
        assert all(q.ok for q in engine.latest_edge_quality.values())
        assert engine.latest_result.stats.graphs == 2

    def test_transport_matches_direct_pull_paths(self):
        from repro.apps.rubis import build_rubis
        from repro.core.engine import E2EProfEngine

        rubis_a, engine_a = self._engine(seed=9)
        rubis_b = build_rubis(
            dispatch="affinity", seed=9, request_rate=10.0, config=self.CFG
        )
        engine_b = E2EProfEngine(self.CFG)
        engine_b.attach(rubis_b.topology)
        rubis_a.run_until(45.0)
        rubis_b.run_until(45.0)

        def paths(engine):
            return sorted(
                str(p)
                for g in engine.latest_result.graphs.values()
                for p in g.paths()
            )

        assert paths(engine_a) == paths(engine_b)

    def test_dead_tracer_marks_edges_stale(self):
        channels = {}

        def factory(node):
            channels[node] = FaultyChannel()
            return channels[node]

        rubis, engine = self._engine(factory=factory)
        rubis.run_until(25.0)
        channels["DS"].set_faults(down=True)
        rubis.run_until(75.0)
        statuses = engine._receiver.statuses(engine.latest_refresh_time)
        assert statuses["DS"].state == TRACER_DEAD
        stale = {
            edge
            for edge, q in engine.latest_edge_quality.items()
            if q.state == QUALITY_STALE
        }
        # Every edge whose signal the DS tracer owns goes stale.
        assert ("EJB1", "DS") in stale
        assert engine.quality_score < 1.0

    def test_restart_tracer_bumps_epoch(self):
        rubis, engine = self._engine()
        rubis.run_until(25.0)
        engine.restart_tracer("EJB1")
        rubis.run_until(45.0)
        summary = engine.transport_summary()
        assert summary["links"]["EJB1"]["epoch"] == 1
        assert summary["links"]["EJB1"]["restarts"] == 1
        # The refresh loop kept running through the restart.
        assert engine._refreshes == 4

    def test_transport_summary_shape(self):
        rubis, engine = self._engine()
        rubis.run_until(25.0)
        summary = engine.transport_summary()
        assert summary["enabled"] is True
        assert set(summary) >= {
            "quality_score", "totals", "tracers", "links", "channels",
            "degraded_edges",
        }
        import json

        json.dumps(summary)  # must be JSON-able

    def test_summary_disabled_without_transport(self):
        from repro.core.engine import E2EProfEngine

        engine = E2EProfEngine(self.CFG)
        assert engine.transport_summary() == {"enabled": False}

    def test_gap_events_published(self):
        def factory(node):
            return FaultyChannel(seed=5, drop=0.3)

        rubis, engine = self._engine(factory=factory)
        rubis.run_until(65.0)
        kinds = [
            event["kind"]
            for frame in engine.flight.dump()["frames"]
            for event in frame["events"]
        ]
        assert "transport_gap" in kinds
        assert "degraded_refresh" in kinds
