"""Tests for the Aguilera et al. baselines (convolution and nesting)."""

import numpy as np
import pytest

from repro.baselines.convolution import ConvolutionAnalyzer
from repro.baselines.nesting import nesting_analysis
from repro.config import PathmapConfig
from repro.errors import AnalysisError
from repro.tracing.records import CaptureRecord

from tests.test_pathmap_unit import CFG, SyntheticWindow, poisson_arrivals, shifted


class TestConvolution:
    def test_recovers_same_paths_as_pathmap(self):
        arrivals = poisson_arrivals(np.random.default_rng(0), 60.0, 4.0)
        edges = {
            ("C", "A"): list(arrivals),
            ("A", "B"): shifted(arrivals, 0.030),
            ("B", "D"): shifted(arrivals, 0.070),
        }
        window = SyntheticWindow(edges, {"C"}, CFG)
        result = ConvolutionAnalyzer(CFG).analyze(window)
        graph = result.graph_for("C")
        assert graph.edge_set() == {("C", "A"), ("A", "B"), ("B", "D")}
        assert graph.edge("B", "D").min_delay == pytest.approx(0.070, abs=0.005)

    def test_search_lag_cap(self):
        arrivals = poisson_arrivals(np.random.default_rng(1), 60.0, 4.0)
        edges = {
            ("C", "A"): list(arrivals),
            ("A", "B"): shifted(arrivals, 0.200),
        }
        window = SyntheticWindow(edges, {"C"}, CFG)
        # Cap the spike search below the true delay: edge must vanish.
        result = ConvolutionAnalyzer(CFG, max_lag=100).analyze(window)
        assert not result.graph_for("C").has_edge("A", "B")


def simulate_rpc_captures():
    """Delivery-side records of a two-level RPC: C->A->B, 100 requests."""
    rng = np.random.default_rng(2)
    records = []
    t = 0.0
    for i in range(100):
        t += float(rng.exponential(0.1))
        t_a = t + 0.001           # C->A delivered
        t_b = t_a + 0.010         # A->B delivered (A processed 10ms)
        t_back_a = t_b + 0.020    # B->A delivered (B processed 20ms)
        t_back_c = t_back_a + 0.005
        records += [
            CaptureRecord(t_a, "C", "A", "A", request_id=i),
            CaptureRecord(t_b, "A", "B", "B", request_id=i),
            CaptureRecord(t_back_a, "B", "A", "A", request_id=i),
            CaptureRecord(t_back_c, "A", "C", "A", request_id=i),
        ]
    return records


class TestNesting:
    def test_recovers_rpc_path(self):
        result = nesting_analysis(simulate_rpc_captures(), client_nodes=["C"])
        assert result.unmatched_messages == 0
        pattern = result.pattern_for(("C", "A", "B"))
        assert pattern.count == 100
        # Child call into B starts ~11ms after the root call.
        assert pattern.mean_delays[-1] == pytest.approx(0.010, abs=0.003)

    def test_client_filter(self):
        result = nesting_analysis(simulate_rpc_captures(), client_nodes=["X"])
        assert result.patterns() == []

    def test_no_filter_keeps_all_roots(self):
        result = nesting_analysis(simulate_rpc_captures())
        # Overlapping requests can fragment a few paths; the dominant
        # pattern must still be the true one.
        assert result.patterns()[0].nodes == ("C", "A", "B")

    def test_unmatched_messages_counted(self):
        records = [CaptureRecord(1.0, "A", "B", "B"), CaptureRecord(2.0, "A", "B", "B")]
        result = nesting_analysis(records)
        assert result.unmatched_messages == 2

    def test_pattern_lookup_missing(self):
        result = nesting_analysis(simulate_rpc_captures(), client_nodes=["C"])
        with pytest.raises(AnalysisError):
            result.pattern_for(("C", "X"))

    def test_fails_on_unidirectional_pipeline(self):
        """The nesting algorithm assumes call/return pairs; a one-way
        pipeline leaves everything unmatched (the reason the paper needs
        the correlation approach for Delta-like systems)."""
        records = []
        t = 0.0
        for i in range(20):
            t += 0.5
            records += [
                CaptureRecord(t, "Q", "VAL", "VAL", request_id=i),
                CaptureRecord(t + 1.0, "VAL", "ACCT", "ACCT", request_id=i),
            ]
        result = nesting_analysis(records, client_nodes=["Q"])
        # Nothing ever returns, so no call completes...
        assert result.total_calls == 0 or result.unmatched_messages > 0

    def test_nesting_on_simulated_rubis(self, affinity_rubis):
        """Cross-check: on RPC-style RUBiS traffic, nesting recovers the
        same bidding path pathmap finds."""
        records = [
            CaptureRecord(ts, src, dst, dst if dst not in ("C1", "C2") else src)
            for (src, dst) in affinity_rubis.collector.edges()
            for ts in affinity_rubis.collector.edge_timestamps(src, dst)
        ]
        result = nesting_analysis(records, client_nodes=["C1"])
        sequences = result.node_sequences()
        assert ("C1", "WS", "TS1", "EJB1", "DS") in sequences
