"""Tests for spike detection (Section 3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.correlation import CorrelationSeries
from repro.core.spikes import detect_spikes, earliest_spike, strongest_spike


def corr(values, quantum=1e-3, degenerate=False):
    return CorrelationSeries(np.asarray(values, float), quantum, len(values), degenerate)


def flat_with_spikes(n, spikes, base=0.0):
    values = np.full(n, base)
    for pos, height in spikes:
        values[pos] = height
    return values


class TestDetection:
    def test_single_spike(self):
        series = corr(flat_with_spikes(100, [(40, 1.0)]))
        spikes = detect_spikes(series)
        assert len(spikes) == 1
        assert spikes[0].lag == 40
        assert spikes[0].delay == pytest.approx(0.040)
        assert spikes[0].height == 1.0

    def test_threshold_is_mean_plus_sigma_std(self):
        values = flat_with_spikes(100, [(40, 1.0)])
        series = corr(values)
        threshold = values.mean() + 3 * values.std()
        spikes = detect_spikes(series, sigma=3.0)
        assert spikes[0].prominence == pytest.approx(1.0 - threshold)

    def test_below_threshold_ignored(self):
        # Noise floor high enough that a small bump fails mean+3sigma.
        rng = np.random.default_rng(0)
        values = rng.normal(0.2, 0.1, 500)
        values[100] = values.mean() + 1.0 * values.std()
        spikes = detect_spikes(corr(values), sigma=3.0)
        assert all(s.lag != 100 for s in spikes)

    def test_multiple_spikes_sorted_by_lag(self):
        series = corr(flat_with_spikes(200, [(150, 0.8), (30, 1.0)]))
        spikes = detect_spikes(series)
        assert [s.lag for s in spikes] == [30, 150]

    def test_plateau_reports_centre(self):
        values = np.zeros(50)
        values[20:23] = 1.0
        spikes = detect_spikes(corr(values))
        assert len(spikes) == 1
        assert spikes[0].lag == 21

    def test_endpoint_spikes_detected(self):
        spikes = detect_spikes(corr(flat_with_spikes(50, [(0, 1.0)])))
        assert spikes and spikes[0].lag == 0
        spikes = detect_spikes(corr(flat_with_spikes(50, [(49, 1.0)])))
        assert spikes and spikes[0].lag == 49

    def test_degenerate_series_has_no_spikes(self):
        series = corr(flat_with_spikes(100, [(40, 1.0)]), degenerate=True)
        assert detect_spikes(series) == []

    def test_flat_series_has_no_spikes(self):
        assert detect_spikes(corr(np.ones(100))) == []

    def test_too_short_series(self):
        assert detect_spikes(corr([1.0, 0.0])) == []

    def test_min_height_floor(self):
        # A tiny spike clears mean+3sigma on a near-flat series but not
        # the absolute floor.
        values = np.zeros(500)
        values[100] = 0.05
        assert detect_spikes(corr(values)) != []
        assert detect_spikes(corr(values), min_height=0.1) == []
        values[100] = 0.5
        assert detect_spikes(corr(values), min_height=0.1) != []

    def test_max_spikes_keeps_tallest(self):
        series = corr(flat_with_spikes(300, [(50, 0.5), (150, 1.0), (250, 0.8)]))
        spikes = detect_spikes(series, max_spikes=2)
        assert [s.lag for s in spikes] == [150, 250]


class TestResolutionWindow:
    def test_close_spikes_keep_tallest(self):
        series = corr(flat_with_spikes(100, [(40, 0.8), (43, 1.0)]))
        spikes = detect_spikes(series, resolution_quanta=10)
        assert [s.lag for s in spikes] == [43]

    def test_far_spikes_both_survive(self):
        series = corr(flat_with_spikes(100, [(20, 0.8), (60, 1.0)]))
        spikes = detect_spikes(series, resolution_quanta=10)
        assert [s.lag for s in spikes] == [20, 60]

    def test_resolution_one_keeps_all(self):
        series = corr(flat_with_spikes(100, [(40, 0.8), (42, 1.0)]))
        spikes = detect_spikes(series, resolution_quanta=1)
        assert [s.lag for s in spikes] == [40, 42]

    def test_chain_suppression_is_greedy_by_height(self):
        # 30(0.7) 35(1.0) 40(0.8): 35 wins its window, 30 and 40 both fall
        # within it and are suppressed.
        series = corr(flat_with_spikes(100, [(30, 0.7), (35, 1.0), (40, 0.8)]))
        spikes = detect_spikes(series, resolution_quanta=6)
        assert [s.lag for s in spikes] == [35]


class TestHelpers:
    def test_strongest_and_earliest(self):
        series = corr(flat_with_spikes(100, [(10, 0.8), (50, 1.0)]))
        spikes = detect_spikes(series)
        assert strongest_spike(spikes).lag == 50
        assert earliest_spike(spikes).lag == 10

    def test_helpers_on_empty(self):
        assert strongest_spike([]) is None
        assert earliest_spike([]) is None


class TestProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=199), min_size=1, max_size=5, unique=True),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_detected_spikes_respect_resolution(self, positions, resolution):
        values = flat_with_spikes(200, [(p, 1.0 + 0.01 * p) for p in positions])
        spikes = detect_spikes(corr(values), resolution_quanta=resolution)
        lags = [s.lag for s in spikes]
        assert lags == sorted(lags)
        for a, b in zip(lags, lags[1:]):
            assert b - a >= resolution

    @given(st.lists(st.floats(min_value=0, max_value=1), min_size=10, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_all_spikes_exceed_threshold(self, raw):
        values = np.asarray(raw)
        series = corr(values)
        spikes = detect_spikes(series, sigma=3.0)
        if values.std() > 0:
            threshold = values.mean() + 3 * values.std()
            for s in spikes:
                assert s.height > threshold
