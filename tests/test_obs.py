"""Tests for the repro.obs observability subsystem.

Covers the registry/instrument contracts (disabled-by-default, kind
clashes, labels, exposition), exact counting under thread contention,
the engine's MetricsSample fan-out, and the disabled-path overhead
guard the subsystem is designed around.
"""

import json
import threading
import time

import pytest

from repro.config import PathmapConfig
from repro.core.engine import E2EProfEngine
from repro.errors import E2EProfError, ObservabilityError
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    MetricsSample,
    snapshot,
    to_prometheus,
)
from repro.simulation.distributions import Erlang
from repro.simulation.nodes import StaticRouter
from repro.simulation.topology import Topology

CFG = PathmapConfig(
    window=20.0,
    refresh_interval=10.0,
    quantum=1e-3,
    sampling_window=10e-3,
    max_transaction_delay=1.0,
)


def chain_topology(seed=0):
    topo = Topology(seed=seed)
    topo.add_service_node("DB", Erlang(0.010, k=8), workers=8)
    topo.add_service_node(
        "WS", Erlang(0.004, k=8), workers=8, router=StaticRouter({}, default="DB")
    )
    client = topo.add_client("C", "cls", front_end="WS")
    topo.open_workload(client, rate=20.0)
    return topo


class TestRegistry:
    def test_disabled_by_default_and_records_nothing(self):
        reg = MetricsRegistry()
        assert not reg.enabled
        c = reg.counter("ops_total", "ops")
        g = reg.gauge("depth", "depth")
        h = reg.histogram("latency_seconds", "latency")
        c.inc(5)
        g.set(3.0)
        h.observe(0.2)
        with h.time():
            pass
        assert c.value == 0.0
        assert g.value == 0.0
        assert h.count == 0

    def test_enable_disable_toggles_recording(self):
        reg = MetricsRegistry()
        c = reg.counter("ops_total", "ops")
        reg.enable()
        c.inc()
        reg.disable()
        c.inc(100)
        assert c.value == 1.0

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry(enabled=True)
        assert reg.counter("x_total", "x") is reg.counter("x_total", "x")

    def test_kind_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("thing", "x")
        with pytest.raises(ObservabilityError):
            reg.gauge("thing", "x")

    def test_bad_metric_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            reg.counter("bad name!", "x")

    def test_observability_error_is_e2eprof_error(self):
        assert issubclass(ObservabilityError, E2EProfError)

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry(enabled=True)
        with pytest.raises(ObservabilityError):
            reg.counter("n_total", "x").inc(-1)

    def test_histogram_rejects_bad_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            reg.histogram("h", "x", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ObservabilityError):
            reg.histogram("h2", "x", buckets=())

    def test_labels_create_distinct_series(self):
        reg = MetricsRegistry(enabled=True)
        a = reg.counter("req_total", "reqs", labels={"cls": "a"})
        b = reg.counter("req_total", "reqs", labels={"cls": "b"})
        assert a is not b
        a.inc(2)
        b.inc(3)
        snap = snapshot(reg)["req_total"]
        assert {k: v["value"] for k, v in snap.items()} == {
            "cls=a": 2.0,
            "cls=b": 3.0,
        }

    def test_reset_zeroes_but_keeps_instruments(self):
        reg = MetricsRegistry(enabled=True)
        c = reg.counter("z_total", "x")
        c.inc(7)
        reg.reset()
        assert c.value == 0.0
        assert reg.counter("z_total", "x") is c

    def test_timer_records_elapsed(self):
        reg = MetricsRegistry(enabled=True)
        h = reg.histogram("sleep_seconds", "t", buckets=DEFAULT_LATENCY_BUCKETS)
        with h.time():
            time.sleep(0.002)
        assert h.count == 1
        assert 0.001 < h.sum < 1.0

    def test_snapshot_json_serializable(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("a_total", "a").inc()
        reg.histogram("b_seconds", "b").observe(0.01)
        reg.gauge("c", "c").set(4)
        json.dumps(snapshot(reg))  # must not raise


class TestPrometheusExposition:
    def test_text_format(self):
        reg = MetricsRegistry(enabled=True, namespace="repro")
        reg.counter("reqs_total", "Requests served", labels={"cls": "a"}).inc(3)
        reg.gauge("depth", "Window depth").set(2)
        h = reg.histogram("lat_seconds", "Latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = to_prometheus(reg)
        assert "# HELP repro_reqs_total Requests served" in text
        assert "# TYPE repro_reqs_total counter" in text
        assert 'repro_reqs_total{cls="a"} 3' in text
        assert "# TYPE repro_depth gauge" in text
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1"} 2' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_lat_seconds_count 2" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry(enabled=True)
        h = reg.histogram("v", "v", buckets=(1.0, 2.0, 3.0))
        for value in (0.5, 1.5, 2.5, 99.0):
            h.observe(value)
        assert list(h.cumulative_buckets().values()) == [1, 2, 3, 4]


class TestThreadSafety:
    def test_exact_totals_under_contention(self):
        reg = MetricsRegistry(enabled=True)
        shared = reg.counter("hammer_total", "x")
        hist = reg.histogram("hammer_seconds", "x")
        per_thread, threads = 20_000, 8
        barrier = threading.Barrier(threads)

        def hammer(i):
            # Half the threads race get-or-create against direct handles.
            mine = reg.counter("hammer_total", "x") if i % 2 else shared
            barrier.wait()
            for _ in range(per_thread):
                mine.inc()
                hist.observe(0.01)

        workers = [
            threading.Thread(target=hammer, args=(i,)) for i in range(threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert shared.value == per_thread * threads
        assert hist.count == per_thread * threads


class TestEngineSample:
    def test_metrics_subscribers_receive_samples(self):
        topo = chain_topology()
        reg = MetricsRegistry(enabled=True)
        engine = E2EProfEngine(CFG, wire_fidelity=True, metrics=reg)
        engine.attach(topo)
        samples = []
        engine.subscribe_metrics(lambda now, result, sample: samples.append((now, sample)))
        topo.run_until(25.0)
        assert [now for now, _ in samples] == [10.0, 20.0]
        last = samples[-1][1]
        assert isinstance(last, MetricsSample)
        assert last.time == 20.0
        assert last.refresh_seconds > 0
        assert last.blocks_ingested > 0
        assert last.wire_bytes > 0
        assert last.correlators > 0
        assert engine.latest_sample is last
        # The registry saw the same refreshes.
        snap = snapshot(reg)
        assert snap["engine_refreshes_total"][""]["value"] == 2.0
        assert snap["engine_refresh_seconds"][""]["count"] == 2
        assert snap["wire_blocks_decoded_total"][""]["value"] > 0
        json.dumps(last.to_dict())  # must not raise

    def test_samples_flow_even_with_disabled_registry(self):
        """MetricsSample is built from the engine's own cheap counters, so
        subscribers get it even when the registry never records."""
        topo = chain_topology()
        engine = E2EProfEngine(CFG)  # default registry, disabled
        engine.attach(topo)
        samples = []
        engine.subscribe_metrics(lambda now, result, sample: samples.append(sample))
        topo.run_until(15.0)
        assert len(samples) == 1
        assert samples[0].blocks_ingested > 0
        assert not engine.metrics.enabled
        # ...and the registry stayed silent.
        snap = snapshot(engine.metrics)
        assert snap["engine_refreshes_total"][""]["value"] == 0.0


@pytest.mark.slow
class TestOverheadGuard:
    def test_disabled_instrumentation_under_five_percent(self):
        """The ISSUE's bar: with the registry disabled (the default), the
        per-refresh cost of every instrument touch-point must stay below
        5% of the refresh itself.

        Measured as (disabled per-op cost) x (a generous upper bound on
        instrument ops per refresh, from an enabled run's own counters)
        against that run's mean refresh wall time.
        """
        # 1. Disabled fast-path cost per operation.
        reg = MetricsRegistry()  # disabled
        counter = reg.counter("bench_total", "bench")
        hist = reg.histogram("bench_seconds", "bench")
        n = 200_000
        start = time.perf_counter()
        for _ in range(n):
            counter.inc()
            hist.observe(0.1)
        per_op = (time.perf_counter() - start) / (2 * n)

        # 2. Instrument ops per refresh, from an enabled run.
        topo = chain_topology(seed=1)
        enabled = MetricsRegistry(enabled=True)
        engine = E2EProfEngine(CFG, wire_fidelity=True, metrics=enabled)
        engine.attach(topo)
        topo.run_until(25.0)
        snap = snapshot(enabled)

        def val(name):
            return snap[name][""]["value"] if name in snap else 0.0

        refreshes = val("engine_refreshes_total")
        assert refreshes == 2.0
        # Every call-site fires at most a handful of instrument ops; 10x
        # the per-event counters is a deliberate over-estimate.
        ops = (
            val("tracer_packets_observed_total")
            + val("tracer_blocks_flushed_total")
            + 10 * val("wire_blocks_encoded_total")
            + 10 * val("wire_blocks_decoded_total")
            + 2 * val("correlator_pair_products_total")
            + 2 * val("correlator_correlations_served_total")
            + val("correlator_evictions_total")
            + 2 * val("pathmap_correlations_total")
            + val("pathmap_nodes_visited_total")
            + val("pathmap_spikes_total")
            + 50 * refreshes
        )
        ops_per_refresh = ops / refreshes
        hist_state = snap["engine_refresh_seconds"][""]
        mean_refresh = hist_state["sum"] / hist_state["count"]

        overhead = per_op * ops_per_refresh
        assert overhead < 0.05 * mean_refresh, (
            f"disabled instrumentation would cost {overhead * 1e3:.3f} ms "
            f"of a {mean_refresh * 1e3:.1f} ms refresh "
            f"({per_op * 1e9:.0f} ns/op x {ops_per_refresh:.0f} ops)"
        )
