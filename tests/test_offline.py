"""Tests for offline sliding-window replay."""

import pytest

from repro import PathmapConfig, build_rubis
from repro.apps.faults import staircase_delay
from repro.core.change_detection import ChangeDetector
from repro.core.offline import analyze_sliding, replay_into
from repro.errors import AnalysisError

CFG = PathmapConfig(
    window=30.0,
    refresh_interval=30.0,
    quantum=1e-3,
    sampling_window=50e-3,
    max_transaction_delay=2.0,
)


@pytest.fixture(scope="module")
def recorded_run():
    """A recorded RUBiS run with a fault at t=60: trace at rest."""
    rubis = build_rubis(dispatch="affinity", seed=15, request_rate=10.0, config=CFG)
    rubis.ejbs["EJB1"].set_extra_delay(staircase_delay(0.030, 1e9, start=60.0))
    rubis.run_until(155.0)
    return rubis


class TestAnalyzeSliding:
    def test_refresh_schedule(self, recorded_run):
        times = [t for t, _ in analyze_sliding(recorded_run.collector, CFG, 0.0, 150.0)]
        assert times == [30.0, 60.0, 90.0, 120.0, 150.0]

    def test_lazy_early_stop(self, recorded_run):
        iterator = analyze_sliding(recorded_run.collector, CFG, 0.0, 150.0)
        first_time, first_result = next(iterator)
        assert first_time == 30.0
        assert first_result.graph_for("C1").has_edge("WS", "TS1")
        # Not consuming the rest is fine (lazy).

    def test_fault_visible_in_later_windows(self, recorded_run):
        results = dict(analyze_sliding(recorded_run.collector, CFG, 0.0, 150.0))
        before = results[30.0].graph_for("C1").node_delay("EJB1")
        after = results[120.0].graph_for("C1").node_delay("EJB1")
        assert after - before == pytest.approx(0.030, abs=0.006)

    def test_range_validation(self, recorded_run):
        with pytest.raises(AnalysisError):
            list(analyze_sliding(recorded_run.collector, CFG, 100.0, 100.0))
        with pytest.raises(AnalysisError):
            list(analyze_sliding(recorded_run.collector, CFG, 0.0, 10.0))


class TestReplayInto:
    def test_online_tooling_runs_offline(self, recorded_run):
        """The same ChangeDetector used online consumes the replay and
        flags the recorded fault."""
        detector = ChangeDetector(absolute_threshold=0.010,
                                  relative_threshold=0.2,
                                  baseline_refreshes=2)
        results = replay_into(
            recorded_run.collector, CFG, 0.0, 150.0, detector.record
        )
        assert len(results) == 5
        flagged = {event.edge for event in detector.events()}
        assert ("EJB1", "DS") in flagged or ("TS1", "EJB1") in flagged
