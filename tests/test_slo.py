"""Tests for SLO burn-rate and regression alerting (repro.obs.slo).

Synthetic-ledger tests pin the multi-window burn-rate logic (fire /
no-fire / cooldown) and the EWMA regression watch exactly; integration
tests seed a live engine with deliberately unreachable objectives and
baselines and require :data:`EVENT_SLO_BURN` / :data:`EVENT_PERF_REGRESSION`
on its event bus; loader tests parse the committed benchmark baselines.
"""

import pathlib

import pytest

from repro import E2EProfEngine, PathmapConfig, build_rubis
from repro.errors import ObservabilityError
from repro.obs import EventBus
from repro.obs.events import EVENT_PERF_REGRESSION, EVENT_SLO_BURN
from repro.obs.ledger import (
    STAGE_DFS,
    STAGE_INGEST,
    RefreshLedger,
    StageSample,
)
from repro.obs.slo import (
    DEFAULT_OBJECTIVE_SHARES,
    STAGE_REFRESH,
    RegressionWatch,
    SLOMonitor,
    StageObjective,
    default_objectives,
    ingest_baseline,
    load_baselines,
    refresh_baseline,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

CFG = PathmapConfig(
    window=60.0,
    refresh_interval=20.0,
    quantum=1e-3,
    sampling_window=50e-3,
    max_transaction_delay=2.0,
    min_spike_height=0.10,
)


def _ledger(sequence, refresh_seconds=0.0, **stage_seconds):
    """A synthetic ledger with the given per-stage wall times."""
    stages = {
        name: StageSample(seconds=seconds)
        for name, seconds in stage_seconds.items()
    }
    return RefreshLedger(
        time=float(sequence), sequence=sequence,
        refresh_seconds=refresh_seconds, stages=stages,
    )


class TestStageObjective:
    def test_error_budget(self):
        objective = StageObjective(STAGE_DFS, 0.5, target=0.95)
        assert objective.error_budget == pytest.approx(0.05)

    @pytest.mark.parametrize("seconds,target", [(0.0, 0.99), (-1.0, 0.99),
                                                (1.0, 0.0), (1.0, 1.0)])
    def test_validation(self, seconds, target):
        with pytest.raises(ObservabilityError):
            StageObjective(STAGE_DFS, seconds, target=target)

    def test_default_objectives_follow_shares(self):
        objectives = {o.stage: o for o in default_objectives(CFG)}
        assert set(objectives) == set(DEFAULT_OBJECTIVE_SHARES)
        for stage, share in DEFAULT_OBJECTIVE_SHARES.items():
            assert objectives[stage].objective_seconds == pytest.approx(
                share * CFG.refresh_interval
            )


class TestSLOMonitor:
    def _monitor(self, **kwargs):
        kwargs.setdefault("objectives",
                          [StageObjective(STAGE_REFRESH, 0.1, target=0.9)])
        kwargs.setdefault("fast_window", 4)
        kwargs.setdefault("slow_window", 8)
        return SLOMonitor(**kwargs)

    def test_sustained_breach_fires_both_windows(self):
        monitor = self._monitor()
        alerts = []
        for i in range(8):
            alerts += monitor.observe(float(i), _ledger(i, refresh_seconds=1.0))
        assert monitor.alerts >= 1
        first = alerts[0]
        assert first["stage"] == STAGE_REFRESH
        assert first["burn_fast"] >= monitor.burn_threshold
        assert first["burn_slow"] >= monitor.burn_threshold

    def test_healthy_stream_never_fires(self):
        monitor = self._monitor()
        for i in range(32):
            assert monitor.observe(float(i), _ledger(i, refresh_seconds=0.01)) == []
        assert monitor.alerts == 0

    def test_single_blip_is_suppressed(self):
        # one breach in a 10% error budget: burn rate 1/4/0.1 = 2.5 < 4
        monitor = self._monitor()
        for i in range(16):
            cost = 1.0 if i == 8 else 0.01
            monitor.observe(float(i), _ledger(i, refresh_seconds=cost))
        assert monitor.alerts == 0

    def test_cooldown_limits_alert_rate(self):
        monitor = self._monitor(cooldown=4)
        alerts = 0
        for i in range(12):
            alerts += len(monitor.observe(float(i), _ledger(i, refresh_seconds=1.0)))
        # breaching every refresh: first alert at the fast window, then
        # one per cooldown period at most
        assert 1 <= alerts <= 3

    def test_events_published_on_bus(self):
        bus = EventBus()
        monitor = self._monitor(events=bus)
        for i in range(8):
            monitor.observe(float(i), _ledger(i, refresh_seconds=1.0))
        kinds = {event.kind for event in bus.events()}
        assert EVENT_SLO_BURN in kinds
        event = bus.events(EVENT_SLO_BURN)[0]
        assert event.attributes["stage"] == STAGE_REFRESH

    def test_burn_rate_query(self):
        monitor = self._monitor()
        for i in range(4):
            monitor.observe(float(i), _ledger(i, refresh_seconds=1.0))
        assert monitor.burn_rate(STAGE_REFRESH) == pytest.approx(1.0 / 0.1)
        assert monitor.burn_rate("nope") is None

    def test_window_validation(self):
        with pytest.raises(ObservabilityError):
            SLOMonitor(fast_window=8, slow_window=4)
        with pytest.raises(ObservabilityError):
            SLOMonitor(burn_threshold=0.0)


class TestRegressionWatch:
    def test_sustained_slowdown_fires(self):
        watch = RegressionWatch({"refresh_seconds": 0.01}, tolerance=2.0,
                                min_samples=3)
        fired = []
        for i in range(6):
            fired += watch.observe(float(i), _ledger(i, refresh_seconds=0.1))
        assert watch.regressions >= 1
        first = fired[0]
        assert first["metric"] == "refresh_seconds"
        assert first["ratio"] > 2.0

    def test_within_tolerance_never_fires(self):
        watch = RegressionWatch({"refresh_seconds": 0.01}, tolerance=2.0,
                                min_samples=3)
        for i in range(16):
            assert watch.observe(float(i), _ledger(i, refresh_seconds=0.015)) == []
        assert watch.regressions == 0

    def test_stage_metric_name_resolution(self):
        watch = RegressionWatch({"stage_ingest_seconds": 0.001},
                                tolerance=2.0, min_samples=2)
        fired = []
        for i in range(4):
            fired += watch.observe(
                float(i), _ledger(i, **{STAGE_INGEST: 0.01})
            )
        assert fired and fired[0]["metric"] == "stage_ingest_seconds"

    def test_min_samples_gates_cold_start(self):
        watch = RegressionWatch({"refresh_seconds": 0.01}, tolerance=2.0,
                                min_samples=5)
        for i in range(4):
            assert watch.observe(float(i), _ledger(i, refresh_seconds=1.0)) == []

    def test_cooldown_spaces_events(self):
        watch = RegressionWatch({"refresh_seconds": 0.01}, tolerance=2.0,
                                min_samples=1, cooldown=8)
        fired = 0
        for i in range(10):
            fired += len(watch.observe(float(i), _ledger(i, refresh_seconds=1.0)))
        assert fired == 2  # i=0 and i=9 (cooldown 8 in between)

    def test_validation(self):
        with pytest.raises(ObservabilityError):
            RegressionWatch({"refresh_seconds": 0.01}, tolerance=1.0)
        with pytest.raises(ObservabilityError):
            RegressionWatch({"refresh_seconds": 0.0})


class TestEngineIntegration:
    def test_slow_stage_fires_burn_and_regression(self):
        """Seeded end-to-end alert path: objectives and baselines far
        below any real refresh cost, so every refresh breaches."""
        rubis = build_rubis(dispatch="affinity", seed=9, request_rate=10.0,
                            config=CFG)
        engine = E2EProfEngine(CFG)
        monitor = SLOMonitor(
            objectives=[StageObjective(STAGE_REFRESH, 1e-9, target=0.9)],
            fast_window=2, slow_window=2,
        ).subscribe_to(engine)
        watch = RegressionWatch({"refresh_seconds": 1e-9}, tolerance=1.5,
                                min_samples=2).subscribe_to(engine)
        engine.attach(rubis.topology)
        rubis.run_until(85.0)
        kinds = {event.kind for event in engine.events.events()}
        assert EVENT_SLO_BURN in kinds
        assert EVENT_PERF_REGRESSION in kinds
        assert monitor.alerts >= 1 and watch.regressions >= 1

    def test_healthy_engine_stays_quiet(self):
        rubis = build_rubis(dispatch="affinity", seed=9, request_rate=10.0,
                            config=CFG)
        engine = E2EProfEngine(CFG)
        monitor = SLOMonitor().subscribe_to(engine)  # default objectives
        engine.attach(rubis.topology)
        rubis.run_until(85.0)
        assert monitor.objectives  # defaulted from engine config
        kinds = {event.kind for event in engine.events.events()}
        assert EVENT_SLO_BURN not in kinds


class TestBaselineLoaders:
    def test_refresh_baseline_shape(self):
        doc = {"modes": {"batched": {"p50_seconds": 0.25}}}
        assert refresh_baseline(doc) == {"refresh_seconds": 0.25}

    def test_ingest_baseline_shape(self):
        doc = {"modes": {"batched": {"best_seconds": 2.0}},
               "workload": {"flush_rounds": 8}}
        assert ingest_baseline(doc) == {"stage_ingest_seconds": 0.25}

    def test_load_committed_baselines(self):
        baselines = load_baselines(
            refresh_path=str(REPO_ROOT / "BENCH_refresh.json"),
            ingest_path=str(REPO_ROOT / "BENCH_ingest.json"),
        )
        assert set(baselines) == {"refresh_seconds", "stage_ingest_seconds"}
        assert all(v > 0 for v in baselines.values())
        # the committed numbers must be loadable straight into a watch
        RegressionWatch(baselines)

    def test_load_nothing_is_empty(self):
        assert load_baselines() == {}
