"""The scenario suite: registry, seed determinism, scoring conventions.

Three layers are pinned here:

* the registry (:mod:`repro.scenarios.library`) -- named recipes
  resolve, list deterministically, and every builder stamps its seed;
* determinism -- building and simulating the same scenario twice at one
  seed produces bit-identical ground truth, and the full adaptive
  grading loop reproduces its score cell-for-cell (the benchmark
  scorecard depends on this);
* scoring conventions (:mod:`repro.scenarios.scoring`) -- empty-vs-empty
  is perfect silence, stale paths cost precision, and change-detection
  latency matching honours edge labels.

A three-scenario smoke of the harness itself runs in tier-1 (the full
matrix lives in ``benchmarks/test_scenario_matrix.py``).
"""

import pytest

from repro.errors import AnalysisError
from repro.scenarios import (
    ChangePoint,
    SCENARIOS,
    edge_f1,
    get_scenario,
    list_scenarios,
    run_scenario,
    score_refresh,
)
from repro.scenarios.runner import analyze_adaptive, grid_config
from repro.scenarios.scoring import detection_latencies


class TestRegistry:
    def test_known_scenarios_present(self):
        names = {scenario.name for scenario in list_scenarios()}
        assert {
            "steady_state",
            "fanout_mesh",
            "flash_crowd",
            "diurnal_cycle",
            "retry_storm",
            "cache_stampede",
            "canary_shift",
            "traffic_trough",
        } <= names

    def test_listing_is_sorted_and_complete(self):
        listed = [scenario.name for scenario in list_scenarios()]
        assert listed == sorted(SCENARIOS)

    def test_unknown_scenario_raises(self):
        with pytest.raises(AnalysisError):
            get_scenario("no_such_scenario")

    def test_build_stamps_seed(self):
        run = get_scenario("cache_stampede").build(seed=42)
        assert run.seed == 42
        assert run.name == "cache_stampede"

    def test_steady_flags(self):
        assert SCENARIOS["steady_state"].steady
        assert SCENARIOS["fanout_mesh"].steady
        assert not SCENARIOS["flash_crowd"].steady


class TestDeterminism:
    def test_ground_truth_is_seed_stable(self):
        runs = [
            get_scenario("cache_stampede").build(seed=3).simulate()
            for _ in range(2)
        ]
        edges = [
            run.truths["lookup"].traversed_edges("lookup") for run in runs
        ]
        assert edges[0] == edges[1]
        delays = [
            run.truths["lookup"].edge_delays(
                "lookup", next(iter(edges[0]))
            )
            for run in runs
        ]
        assert delays[0] == delays[1]

    def test_different_seeds_differ(self):
        a = get_scenario("cache_stampede").build(seed=0).simulate()
        b = get_scenario("cache_stampede").build(seed=1).simulate()
        assert a.truths["lookup"].traversed_edges("lookup") != b.truths[
            "lookup"
        ].traversed_edges("lookup")

    def test_adaptive_grading_reproduces_cell_for_cell(self):
        scores = [
            analyze_adaptive(get_scenario("cache_stampede").build(seed=0))
            for _ in range(2)
        ]
        assert scores[0].to_dict(include_cells=True) == scores[1].to_dict(
            include_cells=True
        )


class TestScoringConventions:
    def test_edge_f1_empty_vs_empty_is_perfect(self):
        assert edge_f1(set(), set()) == (1.0, 1.0, 1.0)

    def test_edge_f1_stale_paths_cost_precision(self):
        precision, recall, f1 = edge_f1({("A", "B")}, set())
        assert precision == 0.0
        assert f1 == 0.0

    def test_edge_f1_silence_against_real_traffic_costs_recall(self):
        precision, recall, f1 = edge_f1(set(), {("A", "B")})
        assert precision == 1.0
        assert recall == 0.0
        assert f1 == 0.0

    def test_edge_f1_partial_overlap(self):
        precision, recall, f1 = edge_f1(
            {("A", "B"), ("B", "C")}, {("A", "B"), ("C", "D")}
        )
        assert precision == 0.5
        assert recall == 0.5
        assert f1 == pytest.approx(0.5)

    def test_score_refresh_none_graph_in_trough_is_perfect_silence(self):
        run = get_scenario("traffic_trough").build(seed=0).simulate()
        # [18, 22) sits strictly inside the [14, 24) trough: the regional
        # class sent nothing, so a None graph is the *correct* answer.
        cell = score_refresh(
            None, run.truths["regional"], "regional", "C_RG", 18.0, 22.0
        )
        assert (cell.precision, cell.recall, cell.f1) == (1.0, 1.0, 1.0)
        assert cell.edges == []

    def test_detection_latency_edge_matching(self):
        points = [
            ChangePoint(10.0, "db slowdown", edge=("DB", "AP")),
            ChangePoint(20.0, "traffic shape"),
        ]
        detections = [
            (8.0, ("DB", "AP")),   # before the shift: ignored
            (14.0, ("FE", "AP")),  # wrong edge for point 1
            (16.0, ("DB", "AP")),  # match for point 1
            (24.0, None),          # matches the unlabeled point 2
        ]
        assert detection_latencies(points, detections) == [6.0, 4.0]

    def test_detection_horizon_cuts_off_matches(self):
        points = [ChangePoint(10.0, "shift")]
        assert detection_latencies(points, [(30.0, None)], horizon=20.0) == [
            None
        ]


class TestHarnessSmoke:
    """Tier-1 smoke: one steady, one bursty, one trough scenario run
    end-to-end through simulation, analysis and grading."""

    @pytest.mark.parametrize(
        "name,adaptive,floor",
        [
            ("steady_state", False, 0.90),
            ("cache_stampede", True, 0.90),
            ("traffic_trough", True, 0.90),
        ],
    )
    def test_scenario_scores_above_floor(self, name, adaptive, floor):
        run = get_scenario(name).build(seed=0)
        config = None if adaptive else grid_config(run, "fast")
        score = run_scenario(run, adaptive=adaptive, config=config)
        assert score.cells, "harness produced no graded cells"
        assert score.aggregate_f1 >= floor, score.to_dict()


class TestSuiteDeterminism:
    """Tier-1 determinism audit backstop: running the harness smoke
    twice back-to-back must reproduce every scorecard bit-for-bit (no
    hidden global-random or ordering dependence anywhere in the
    simulate -> analyze -> grade chain)."""

    SMOKE = [
        ("steady_state", False),
        ("cache_stampede", True),
        ("traffic_trough", True),
    ]

    def _scorecard(self) -> dict:
        card = {}
        for name, adaptive in self.SMOKE:
            run = get_scenario(name).build(seed=0)
            config = None if adaptive else grid_config(run, "fast")
            score = run_scenario(run, adaptive=adaptive, config=config)
            card[name] = score.to_dict(include_cells=True)
        return card

    def test_back_to_back_smoke_runs_are_identical(self):
        assert self._scorecard() == self._scorecard()
