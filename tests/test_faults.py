"""Tests for fault and perturbation injection."""

import numpy as np
import pytest

from repro.apps.faults import (
    RandomPerturbation,
    apply_perturbations,
    degrade_link,
    scheduled_delay,
    staircase_delay,
)
from repro.errors import SimulationError
from repro.simulation.des import Simulator
from repro.simulation.distributions import Constant
from repro.simulation.network import Fabric
from repro.simulation.nodes import ServiceNode


class TestStaircase:
    def test_steps_at_interval(self):
        delay = staircase_delay(step=0.010, interval=180.0, start=0.0)
        assert delay(0.0) == pytest.approx(0.010)
        assert delay(179.9) == pytest.approx(0.010)
        assert delay(180.0) == pytest.approx(0.020)
        assert delay(540.0) == pytest.approx(0.040)

    def test_zero_before_start(self):
        delay = staircase_delay(step=0.010, interval=60.0, start=120.0)
        assert delay(119.0) == 0.0
        assert delay(120.0) == pytest.approx(0.010)

    def test_cap(self):
        delay = staircase_delay(step=0.010, interval=10.0, max_delay=0.025)
        assert delay(1000.0) == 0.025

    def test_validation(self):
        with pytest.raises(SimulationError):
            staircase_delay(step=-0.01, interval=1.0)
        with pytest.raises(SimulationError):
            staircase_delay(step=0.01, interval=0.0)


class TestScheduled:
    def test_piecewise_lookup(self):
        delay = scheduled_delay([(0.0, 0.01), (10.0, 0.05), (20.0, 0.0)])
        assert delay(5.0) == 0.01
        assert delay(10.0) == 0.05
        assert delay(25.0) == 0.0

    def test_zero_before_first_breakpoint(self):
        delay = scheduled_delay([(10.0, 0.05)])
        assert delay(5.0) == 0.0

    def test_validation(self):
        with pytest.raises(SimulationError):
            scheduled_delay([])
        with pytest.raises(SimulationError):
            scheduled_delay([(10.0, 0.1), (5.0, 0.1)])
        with pytest.raises(SimulationError):
            scheduled_delay([(0.0, -0.1)])


class TestRandomPerturbation:
    def test_constant_within_epoch(self):
        pert = RandomPerturbation(np.random.default_rng(0), 0.0, 0.1, interval=60.0)
        assert pert(10.0) == pert(59.9)
        assert pert(60.0) != pert(59.9) or True  # may collide, but usually differs

    def test_values_in_range(self):
        pert = RandomPerturbation(np.random.default_rng(1), 0.02, 0.08, interval=10.0)
        values = [pert(t) for t in np.arange(0, 500, 10.0)]
        assert all(0.02 <= v <= 0.08 for v in values)

    def test_epochs_reproducible(self):
        pert = RandomPerturbation(np.random.default_rng(2), 0.0, 0.1, interval=60.0)
        first = pert(30.0)
        _ = pert(600.0)
        assert pert(30.0) == first  # epoch values are stable once drawn

    def test_drawn_schedule(self):
        pert = RandomPerturbation(np.random.default_rng(3), 0.0, 0.1, interval=60.0)
        pert(150.0)
        assert len(pert.drawn_schedule()) == 3  # epochs 0, 1, 2

    def test_negative_time(self):
        pert = RandomPerturbation(np.random.default_rng(4))
        assert pert(-5.0) == 0.0

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(SimulationError):
            RandomPerturbation(rng, 0.1, 0.05)
        with pytest.raises(SimulationError):
            RandomPerturbation(rng, 0.0, 0.1, interval=0.0)


class TestApplyHelpers:
    def _node(self):
        sim = Simulator()
        fabric = Fabric(sim, np.random.default_rng(0))
        return ServiceNode(sim, fabric, "N", Constant(0.010))

    def test_apply_perturbations(self):
        nodes = [self._node()]
        perts = apply_perturbations(nodes, np.random.default_rng(0), interval=30.0)
        assert len(perts) == 1
        assert nodes[0].extra_delay is perts[0]

    def test_degrade_link(self):
        node = self._node()
        fn = degrade_link(node, factor=3.0)
        assert node.extra_delay is fn
        assert fn(0.0) == pytest.approx(0.020)  # (3-1) * 10ms

    def test_degrade_validation(self):
        with pytest.raises(SimulationError):
            degrade_link(self._node(), factor=0.5)
