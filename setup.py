"""Legacy shim so `pip install -e .` works offline (no `wheel` package).

All real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
