"""Offline workflow: capture once, analyze many times (plus clock audit).

Enterprise diagnosis is often post-hoc: capture a trace window in
production, then slice and re-analyze it offline (that is how the paper
processed Delta's week-long log). This example:

1. records a RUBiS trace to a JSONL file,
2. reloads it into a fresh collector and analyzes two time slices,
3. audits clock skew between two servers from the same trace
   (Section 3.8) -- the database's clock is deliberately 80 ms ahead.

Run:  python examples/offline_trace_analysis.py
"""

import tempfile
from pathlib import Path

from repro import (
    PathmapConfig,
    TraceCollector,
    compute_service_graphs,
    estimate_clock_skew,
)
from repro.simulation.distributions import Erlang
from repro.simulation.nodes import StaticRouter
from repro.simulation.topology import Topology
from repro.tracing.storage import load_captures, write_capture_jsonl

CONFIG = PathmapConfig(
    window=60.0,
    refresh_interval=60.0,
    quantum=1e-3,
    sampling_window=5e-3,
    max_transaction_delay=2.0,
    min_spike_height=0.10,
)
DB_SKEW = 0.080  # the database clock runs 80 ms ahead
LINK = 0.0002    # known LAN one-way latency


def build_system() -> Topology:
    topo = Topology(seed=13)
    topo.add_service_node("DB", Erlang(0.010, k=8), workers=8, clock_skew=DB_SKEW)
    topo.add_service_node("AP", Erlang(0.008, k=8), workers=8,
                          router=StaticRouter({}, default="DB"))
    topo.add_service_node("WS", Erlang(0.003, k=8), workers=8,
                          router=StaticRouter({}, default="AP"))
    client = topo.add_client("C", "orders", front_end="WS")
    topo.open_workload(client, rate=20.0)
    return topo


def main() -> None:
    topo = build_system()
    topo.run_until(125.0)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "orders_trace.jsonl"
        count = write_capture_jsonl(path, topo.collector.export_records())
        print(f"wrote {count} capture records to {path.name} "
              f"({path.stat().st_size // 1024} KiB)")

        # A fresh analysis session, as if days later on another machine.
        offline = TraceCollector(client_nodes=["C"])
        offline.ingest_many(load_captures(path))

        for end in (61.0, 121.0):
            result = compute_service_graphs(
                offline.window(CONFIG, end_time=end), CONFIG
            )
            graph = result.graph_for("C")
            print(f"window ending t={end:.0f}s: orders path "
                  f"{' -> '.join(p.nodes[-1] for p in graph.paths()[:1]) or '?'} "
                  f"deepest delay {graph.end_to_end_delay()*1e3:.1f} ms "
                  f"over {len(graph.edges)} edges")

        # Clock audit: the AP->DB edge was captured at both endpoints.
        estimate = estimate_clock_skew(
            offline, "AP", "DB", CONFIG, end_time=121.0, network_delay=LINK
        )
        print(f"\nclock audit on AP->DB: estimated skew "
              f"{estimate.skew*1e3:+.1f} ms (injected {DB_SKEW*1e3:+.0f} ms, "
              f"spike height {estimate.spike_height:.2f})")
        print("note: pathmap's delay labels on edges into DB absorb this "
              "skew, which is why Section 3.8 recommends the audit.")


if __name__ == "__main__":
    main()
