"""Automated SLA-aware path selection (Section 4.2 / Table 1).

The web server's dispatcher is driven by live pathmap output: every
refresh, the priority class (bidding, with a tight latency SLA) is
steered onto whichever application-server path is currently faster, and
the background class (comment) takes the other. Compared against plain
round-robin under the same random EJB perturbations.

Run:  python examples/sla_path_selection.py
"""

import numpy as np

from repro import E2EProfEngine, PathmapConfig, build_rubis
from repro.apps.faults import RandomPerturbation
from repro.management.scheduler import PathSelector
from repro.management.sla import SLA, SLAMonitor

CONFIG = PathmapConfig(
    window=15.0,
    refresh_interval=5.0,
    quantum=1e-3,
    sampling_window=50e-3,
    max_transaction_delay=2.0,
    min_spike_height=0.10,
)
HORIZON = 10 * 60.0
MEASURE_FROM = 120.0
SEED = 5


def run(mode: str) -> dict:
    rubis = build_rubis(dispatch=mode, seed=SEED, request_rate=10.0,
                        config=CONFIG,
                        service_means={"EJB1": 0.020, "EJB2": 0.020})
    rng = np.random.default_rng(SEED + 100)
    for name in ("EJB1", "EJB2"):
        rubis.ejbs[name].set_extra_delay(
            RandomPerturbation(rng, 0.0, 0.100, interval=60.0)
        )
    selector = None
    if mode == "latency_aware":
        engine = E2EProfEngine(CONFIG)
        engine.attach(rubis.topology)
        selector = PathSelector(
            rubis.dispatcher, "bidding", "comment",
            class_clients={"bidding": "C1", "comment": "C2"},
        )
        selector.attach(engine)
    rubis.run_until(HORIZON)
    out = {
        "bidding": rubis.clients["bidding"].latencies(since=MEASURE_FROM),
        "comment": rubis.clients["comment"].latencies(since=MEASURE_FROM),
    }
    if selector is not None:
        out["decisions"] = len(selector.history)
    return out


def main() -> None:
    monitor = SLAMonitor([
        SLA("bidding", max_latency=0.130),          # tight, real-time-ish
        SLA("comment", max_latency=0.250),          # lax
    ])

    print("running round-robin under random EJB perturbations (0-100 ms/min)...")
    rr = run("round_robin")
    print("running E2EProf-driven path selection under the same faults...")
    e2e = run("latency_aware")
    print(f"  ({e2e['decisions']} scheduling decisions made)\n")

    for label, results in (("round-robin", rr), ("E2EProf", e2e)):
        statuses = monitor.evaluate(
            {cls: results[cls] for cls in ("bidding", "comment")}
        )
        print(f"{label}:")
        for status in statuses:
            verdict = "MET" if status.met else "VIOLATED"
            print(f"  {status.sla.service_class:8s} mean "
                  f"{status.measured*1e3:6.1f} ms  (SLA "
                  f"{status.sla.max_latency*1e3:.0f} ms: {verdict})")

    rr_bid = float(np.mean(rr["bidding"]))
    e2e_bid = float(np.mean(e2e["bidding"]))
    print(f"\nbidding latency: {rr_bid*1e3:.1f} ms -> {e2e_bid*1e3:.1f} ms "
          f"({(rr_bid-e2e_bid)/rr_bid:+.0%} vs round-robin), at the expense "
          "of the comment class -- the paper's Table 1 trade-off.")


if __name__ == "__main__":
    main()
