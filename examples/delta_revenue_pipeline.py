"""Diagnosing an enterprise event pipeline from access logs (Section 4.3).

The Delta Revenue Pipeline is a unidirectional, multi-queue event system
analyzed from *application-level access logs* (timestamp, server id,
request id) -- no packet captures, no instrumentation. This example:

1. generates an hour of pipeline traffic with a deliberately slowed
   database stage,
2. converts the access log into edge captures,
3. runs pathmap (tau = 1 s, omega = 50 s, the paper's Delta settings),
4. pinpoints the slow stage.

Run:  python examples/delta_revenue_pipeline.py
"""

from repro import build_delta, compute_service_graphs, find_bottlenecks
from repro.analysis.render import render_ascii
from repro.apps.delta import DELTA_ANALYSIS_CONFIG
from repro.config import PathmapConfig
from repro.tracing.access_log import access_log_to_captures
from repro.tracing.collector import TraceCollector

CONFIG = PathmapConfig(
    window=3600.0,
    refresh_interval=600.0,
    quantum=1.0,          # 1-second events, not millisecond packets
    sampling_window=50.0,
    max_transaction_delay=1200.0,
)


def main() -> None:
    print("building the Revenue Pipeline (5 queues, slow database x2.5)...")
    deployment = build_delta(
        seed=3,
        num_queues=5,
        events_per_hour=18_000.0,
        slow_db_factor=2.5,   # the fault to diagnose
        config=CONFIG,
    )
    deployment.run_until(3700.0)
    log = deployment.sorted_access_log()
    print(f"collected {len(log)} access-log records "
          f"({deployment.topology.fabric.messages_sent} events routed)")

    # The same analysis code consumes logs as consumes packet traces.
    collector = TraceCollector(client_nodes=["external"])
    collector.ingest_many(access_log_to_captures(log))
    window = collector.window(CONFIG, end_time=3650.0)
    result = compute_service_graphs(window, CONFIG)

    print(f"\nrecovered {len(result.graphs)} per-queue service graphs:\n")
    shown = 0
    for (client, root), graph in sorted(result.graphs.items()):
        if shown < 2:
            print(render_ascii(graph))
            print()
        shown += 1

    votes = {}
    for graph in result.graphs.values():
        if graph.node_delays():
            dominant = find_bottlenecks(graph).dominant()
            votes[dominant] = votes.get(dominant, 0) + 1
    culprit = max(votes, key=votes.get)
    print(f"diagnosis: dominant delay contributor across queues = {culprit} "
          f"(votes: {votes})")
    print("expected: RDB -- the stage we slowed down, matching the paper's "
          "'slow database server connection' finding")


if __name__ == "__main__":
    main()
