"""Pub-sub dissemination trees (the paper's Section 5 future work).

"Our near term future work will explore other areas and applications to
which the techniques presented in this paper can be applied. These
include network overlays and publish-subscribe systems."

Two publishers feed a broker tree; subscribers receive per-topic copies.
Pathmap, completely unchanged, recovers each topic's dissemination tree
-- including the fan-out at the root broker, where one inbound event
becomes two outbound messages.

Run:  python examples/pubsub_overlay.py
"""

from repro.analysis.render import render_ascii
from repro.apps.pubsub import PUBSUB_ANALYSIS_CONFIG, build_pubsub
from repro.core.pathmap import compute_service_graphs


def main() -> None:
    deployment = build_pubsub(seed=17, publish_rate=20.0)
    print("broker tree: B0 -> {BL -> {SUB1, SUB2}, BR -> {SUB3}}")
    print("topics: 'news' (BL branch only), 'alerts' (both branches)\n")
    deployment.run_until(62.0)

    result = compute_service_graphs(
        deployment.window(end_time=61.0), PUBSUB_ANALYSIS_CONFIG
    )
    for (publisher, root), graph in sorted(result.graphs.items()):
        print(render_ascii(graph, mark_bottlenecks=False))
        fanout = len(graph.successors(root))
        print(f"  root fan-out: {fanout} branch(es)\n")

    alerts = result.graph_for("PUB-alerts")
    print("checks:")
    print("  alerts reaches both branches:",
          alerts.has_edge("B0", "BL") and alerts.has_edge("B0", "BR"))
    news = result.graph_for("PUB-news")
    print("  news stays on the left branch:",
          news.has_edge("B0", "BL") and not news.has_edge("B0", "BR"))


if __name__ == "__main__":
    main()
