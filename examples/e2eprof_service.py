"""E2EProf as a pluggable service (paper Section 5, long-term vision).

"In the long term, we plan to deploy E2EProf as a basic service,
'pluggable' into any distributed system. When applications or services
subscribe to its interfaces, they henceforth, will receive real-time
information about their service paths and systems 'health' in general."

This example wires the full management plane onto the engine's
subscription API -- an SLA monitor, a change detector, an anomaly scorer
and a latency monitor all consume the same refresh stream -- then drives
the system through a mid-run degradation and prints each subscriber's
view of the incident.

Run:  python examples/e2eprof_service.py
"""

from repro import ChangeDetector, E2EProfEngine, PathmapConfig, build_rubis
from repro.analysis.reportgen import report_text
from repro.core.anomaly import AnomalyDetector
from repro.management.monitor import LatencyMonitor
from repro.management.sla import SLA, SLAMonitor

CONFIG = PathmapConfig(
    window=30.0,
    refresh_interval=30.0,
    quantum=1e-3,
    sampling_window=50e-3,
    max_transaction_delay=2.0,
    min_spike_height=0.10,
)
FAULT_AT = 120.0
HORIZON = 300.0


def main() -> None:
    rubis = build_rubis(dispatch="affinity", seed=21, request_rate=10.0,
                        config=CONFIG)
    engine = E2EProfEngine(CONFIG)
    engine.attach(rubis.topology)

    # Four independent subscribers on one refresh stream.
    changes = ChangeDetector(absolute_threshold=0.010, relative_threshold=0.2,
                             baseline_refreshes=2)
    anomalies = AnomalyDetector(min_std=0.002, warmup=2)
    latencies = LatencyMonitor()
    slas = SLAMonitor([SLA("bidding", max_latency=0.060)])

    changes.subscribe_to(engine)
    anomalies.subscribe_to(engine)
    latencies.subscribe_to(engine)

    def sla_check(now, result):
        lats = rubis.clients["bidding"].latencies_between(now - CONFIG.window, now)
        for status in slas.evaluate({"bidding": lats}):
            if not status.met:
                print(f"  [SLA] t={now:.0f}s bidding mean "
                      f"{status.measured*1e3:.1f} ms exceeds "
                      f"{status.sla.max_latency*1e3:.0f} ms target")

    engine.subscribe(sla_check)

    # The incident: EJB1 degrades by 40 ms at t=120.
    rubis.topology.sim.schedule_at(
        FAULT_AT, lambda: rubis.ejbs["EJB1"].set_extra_delay(lambda now: 0.040)
    )
    print(f"running {HORIZON:.0f}s with a 40 ms EJB1 degradation at "
          f"t={FAULT_AT:.0f}s...\n")
    rubis.run_until(HORIZON + 5)

    print("\nchange detector:")
    for event in changes.events()[:5]:
        print(f"  t={event.time:.0f}s {event.edge[0]}->{event.edge[1]}: "
              f"{event.previous*1e3:.1f} -> {event.current*1e3:.1f} ms")

    print("\nanomaly scorer (active alarms):")
    for class_key, edge in anomalies.active_alarms():
        state = anomalies.state(class_key, edge)
        print(f"  {edge[0]}->{edge[1]} score {state.last_score:+.1f}")

    key = ("C1", "WS")
    print("\nbidding end-to-end latency per refresh (ms):",
          [f"{lat*1e3:.0f}" for _, lat in latencies.latency_series(key)])

    print("\nfinal diagnosis report:\n")
    print(report_text(engine.latest_result))


if __name__ == "__main__":
    main()
