"""Online monitoring: track a degrading server in real time (Figure 7).

The online E2EProf engine refreshes the service graphs every minute from
RLE blocks streamed by per-node tracers. A fault is injected into EJB2
(its request processing slows by 15 ms every 3 minutes); the change
detector flags the affected edges while the healthy branch stays quiet.

Run:  python examples/rubis_live_monitoring.py
"""

import numpy as np

from repro import ChangeDetector, E2EProfEngine, PathmapConfig, build_rubis
from repro.apps.faults import staircase_delay

CONFIG = PathmapConfig(
    window=60.0,
    refresh_interval=60.0,
    quantum=1e-3,
    sampling_window=50e-3,
    max_transaction_delay=2.0,
    min_spike_height=0.10,
)


def main() -> None:
    rubis = build_rubis(dispatch="round_robin", seed=11, request_rate=10.0,
                        config=CONFIG)
    # The fault: EJB2 slows by 15 ms every 3 minutes, starting at t=120 s.
    rubis.ejbs["EJB2"].set_extra_delay(
        staircase_delay(step=0.015, interval=180.0, start=120.0)
    )

    engine = E2EProfEngine(CONFIG)
    engine.attach(rubis.topology)
    detector = ChangeDetector(absolute_threshold=0.008, relative_threshold=0.15)
    detector.subscribe_to(engine)

    def narrate(now, result):
        graph = result.graph_for("C1")
        ejb2 = graph.node_delay("EJB2")
        ejb1 = graph.node_delay("EJB1")
        fresh = [e for e in detector.events() if e.time == now]
        flags = ", ".join(f"{e.edge[0]}->{e.edge[1]}" for e in fresh) or "-"
        print(f"t={now:5.0f}s  EJB1={_ms(ejb1)}  EJB2={_ms(ejb2)}  changes: {flags}")

    engine.subscribe(narrate)

    print("online analysis, one line per refresh (dW = 60 s):")
    rubis.run_until(12 * 60.0 + 5)

    times, delays = detector.delay_series(("C1", "WS"), ("EJB2", "DS"))
    print("\nEJB2 cumulative-delay history (ms):",
          np.round(np.asarray(delays) * 1e3, 1).tolist())
    print(f"{len(detector.events())} change events recorded; all on the EJB2 branch:",
          sorted({e.edge for e in detector.events()}))

    # Render the Figure 7 plot as an SVG you can open in a browser.
    import tempfile

    from repro.analysis.svg import render_series_svg

    _, healthy = detector.delay_series(("C1", "WS"), ("EJB1", "DS"))
    n = min(len(delays), len(healthy))
    chart = render_series_svg(
        list(times[:n]),
        {"EJB2 branch (faulty)": list(delays[:n]),
         "EJB1 branch (healthy)": list(healthy[:n])},
        title="Figure 7 -- per-branch cumulative delay",
    )
    out = tempfile.NamedTemporaryFile(suffix=".svg", delete=False, mode="w")
    out.write(chart)
    out.close()
    print(f"\nFigure 7 chart written to {out.name}")


def _ms(value):
    return "  n/a " if value is None else f"{value * 1e3:5.1f}ms"


if __name__ == "__main__":
    main()
