"""Quickstart: discover service paths in a simulated multi-tier system.

Builds the paper's RUBiS testbed (web server -> 2x Tomcat -> 2x EJB ->
database) with two client classes, runs one minute of traffic, and lets
pathmap recover each class's causal service path -- delays, return path,
and bottleneck -- purely from passively captured packet timestamps.

Run:  python examples/quickstart.py
"""

from repro import PathmapConfig, build_rubis, compute_service_graphs, find_bottlenecks
from repro.analysis.render import render_ascii


def main() -> None:
    # One minute of traffic is plenty at 10 requests/second per class.
    config = PathmapConfig(
        window=60.0,             # sliding window W
        refresh_interval=60.0,   # dW
        quantum=1e-3,            # tau = 1 ms (paper's RUBiS setting)
        sampling_window=50e-3,   # omega = 50 ms
        max_transaction_delay=2.0,
        min_spike_height=0.10,
    )

    print("building RUBiS (affinity dispatch: bidding->TS1, comment->TS2)...")
    rubis = build_rubis(dispatch="affinity", seed=7, request_rate=10.0, config=config)
    rubis.run_until(62.0)
    print(f"simulated 62 s, {rubis.topology.fabric.messages_sent} messages on the wire")

    window = rubis.window(end_time=61.0)
    result = compute_service_graphs(window, config, method="rle")
    print(
        f"pathmap: {result.stats.correlations} correlations, "
        f"{result.stats.edges_discovered} causal edges, "
        f"{result.stats.elapsed_seconds:.2f}s\n"
    )

    for client in ("C1", "C2"):
        graph = result.graph_for(client)
        print(render_ascii(graph))
        report = find_bottlenecks(graph)
        print(f"  bottleneck: {report.dominant()} "
              f"({report.share(report.dominant()):.0%} of attributed delay)\n")


if __name__ == "__main__":
    main()
