"""Capacity planning from a measured service graph (paper Section 3.1).

"...service path analysis can pinpoint the bottleneck components in a
request path, and it can be used for provisioning, capacity planning,
enforcing SLAs, performance prediction, etc."

This example measures a RUBiS deployment, then answers two operator
questions with nothing but the black-box service graph:

1. *what-if*: how fast does bidding get if we double the EJB tier?
2. *planning*: what is the cheapest single-node upgrade that brings the
   path under a 25 ms target?

Finally it applies the recommended upgrade in the simulator and verifies
the prediction against reality.

Run:  python examples/capacity_planning.py
"""

from repro import PathmapConfig, build_rubis, compute_service_graphs
from repro.management.planning import path_hop_breakdown, plan_for_target, predict_latency

CONFIG = PathmapConfig(
    window=60.0, refresh_interval=60.0, quantum=1e-3,
    sampling_window=50e-3, max_transaction_delay=2.0,
    min_spike_height=0.10,
)
TARGET = 0.025  # 25 ms request-path target for bidding


def measure(service_means=None):
    rubis = build_rubis(dispatch="affinity", seed=7, request_rate=10.0,
                        config=CONFIG, service_means=service_means)
    rubis.run_until(62.0)
    result = compute_service_graphs(rubis.window(end_time=61.0), CONFIG)
    graph = result.graph_for("C1")
    path = max(graph.paths(), key=lambda p: p.total_delay)
    return graph, path


def main() -> None:
    graph, path = measure()
    print(f"measured bidding path: {' -> '.join(path.nodes)} "
          f"({path.total_delay*1e3:.1f} ms)")
    print("per-node attribution:",
          {n: f"{d*1e3:.1f}ms" for n, d in path_hop_breakdown(path).items()})

    doubled = predict_latency(graph, {"EJB1": 2.0}, path)
    print(f"\nwhat-if, EJB1 twice as fast: predicted "
          f"{doubled*1e3:.1f} ms (from {path.total_delay*1e3:.1f} ms)")

    options = plan_for_target(graph, target_latency=TARGET, path=path)
    if not options:
        print(f"no single-node upgrade reaches {TARGET*1e3:.0f} ms")
        return
    best = options[0]
    print(f"\nplan for a {TARGET*1e3:.0f} ms target:")
    for rec in options:
        print(f"  speed up {rec.node} by {rec.speedup:.2f}x "
              f"-> predicted {rec.predicted_latency*1e3:.1f} ms")

    # Apply the cheapest recommendation for real and re-measure.
    means = {"EJB1": 0.020 / best.speedup}
    _, upgraded_path = measure(service_means=means)
    print(f"\napplied: {best.node} sped up {best.speedup:.2f}x in the simulator")
    print(f"predicted {best.predicted_latency*1e3:.1f} ms, "
          f"measured {upgraded_path.total_delay*1e3:.1f} ms")


if __name__ == "__main__":
    main()
