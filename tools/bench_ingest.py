"""Benchmark collector ingest: per-record vs batched vs binary replay.

Captures a realistic trace from the synthetic many-class topology
(:mod:`repro.apps.manyclass`), then replays it through the trace
collector along three ingest paths and reports records/second as JSON:

* ``per_record``         -- the legacy path: one :class:`CaptureRecord`
  at a time into the Python-list store (``columnar=False``).
* ``per_record_columnar``-- the same record stream into the chunked
  columnar store (isolates the store change from the batch API).
* ``batched``            -- per-(edge, side) timestamp arrays grouped by
  flush interval into :meth:`TraceCollector.ingest_batch`, as the
  engine's capture-sink drain delivers them.
* ``binary_replay``      -- the trace re-read from the binary columnar
  file format (``.rtb``) and batch-ingested, the offline re-analysis
  path.

Every timing includes the post-ingest consolidation (the first
``edge_timestamps`` query per edge), so lazy sorting cannot hide cost.
The run also verifies that the per-record and batched collectors produce
bit-identical analysis windows, and soaks a retention-bounded collector
to show flat resident memory. Run from the repository root:

    PYTHONPATH=src python tools/bench_ingest.py            # full workload
    PYTHONPATH=src python tools/bench_ingest.py --quick    # CI-sized

The JSON lands in ``BENCH_ingest.json`` (override with ``--output``);
``benchmarks/test_ingest_throughput.py`` asserts the batched speedup on
the same machinery.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.apps.manyclass import build_many_class  # noqa: E402
from repro.config import PathmapConfig  # noqa: E402
from repro.tracing.collector import TraceCollector  # noqa: E402
from repro.tracing.storage import read_capture_binary, write_capture_binary  # noqa: E402

#: Window configuration for the equivalence check and the retention soak.
BENCH_INGEST_CONFIG = PathmapConfig(
    window=6.0,
    refresh_interval=2.0,
    quantum=1e-3,
    sampling_window=1e-3,
    max_transaction_delay=2.0,
)

#: Flush cadence used to group the record stream into batches -- one
#: batch per (edge, side) per interval, like the engine's per-refresh
#: capture-sink drain.
FLUSH_INTERVAL = 2.0


def build_workload(classes: int, seed: int, duration: float, request_rate: float):
    """Simulate the many-class topology and extract its capture trace.

    Returns ``(records, batch_rounds)``: the time-ordered per-record
    stream, and the same stream grouped into per-flush-interval
    ``{(src, dst, at_destination): ndarray}`` batch rounds.
    """
    deployment = build_many_class(
        classes=classes,
        quiet_fraction=0.0,
        seed=seed,
        request_rate=request_rate,
        quiet_after=None,
        config=BENCH_INGEST_CONFIG,
    )
    deployment.run_until(duration)
    records = deployment.topology.collector.export_records()
    rounds = []
    current: dict = {}
    boundary = FLUSH_INTERVAL
    for record in records:
        while record.timestamp >= boundary:
            if current:
                rounds.append(current)
                current = {}
            boundary += FLUSH_INTERVAL
        key = (record.src, record.dst, record.observed_at_destination)
        current.setdefault(key, []).append(record.timestamp)
    if current:
        rounds.append(current)
    batch_rounds = [
        {key: np.asarray(stamps, dtype=np.float64) for key, stamps in round_.items()}
        for round_ in rounds
    ]
    return records, batch_rounds


def _consolidate(collector: TraceCollector) -> None:
    """Force every lazy sort, so timings include consolidation."""
    for src, dst in collector.edges():
        collector.edge_timestamps(src, dst)
        collector.edge_timestamps(src, dst, prefer_destination=False)


def ingest_per_record(records, columnar: bool) -> TraceCollector:
    collector = TraceCollector(columnar=columnar)
    ingest = collector.ingest
    for record in records:
        ingest(record)
    _consolidate(collector)
    return collector


def ingest_batched(batch_rounds) -> TraceCollector:
    collector = TraceCollector()
    ingest_batch = collector.ingest_batch
    for round_ in batch_rounds:
        for (src, dst, at_destination), stamps in round_.items():
            ingest_batch(src, dst, stamps, at_destination)
    _consolidate(collector)
    return collector


def ingest_binary_replay(path, mmap: bool = False) -> TraceCollector:
    collector = TraceCollector()
    for batch in read_capture_binary(path, mmap=mmap):
        collector.ingest_batch(
            batch.src, batch.dst, batch.timestamps, batch.observed_at_destination
        )
    _consolidate(collector)
    return collector


def timed_rate(fn, record_count: int, repeats: int) -> dict:
    """Best records/second over ``repeats`` runs of ``fn`` (fresh state
    per run; the max strips one-off machine noise)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return {
        "records": record_count,
        "best_seconds": best,
        "records_per_second": record_count / best if best else float("inf"),
    }


def identical_windows(a: TraceCollector, b: TraceCollector, end_time: float) -> bool:
    """True when both collectors yield bit-identical analysis windows."""
    if a.edges() != b.edges():
        return False
    window_a = a.window(BENCH_INGEST_CONFIG, end_time=end_time)
    window_b = b.window(BENCH_INGEST_CONFIG, end_time=end_time)
    if window_a.active_edges() != window_b.active_edges():
        return False
    for src, dst in window_a.active_edges():
        series_a = window_a.edge_series(src, dst)
        series_b = window_b.edge_series(src, dst)
        if (
            series_a.start != series_b.start
            or series_a.length != series_b.length
            or not np.array_equal(series_a.starts, series_b.starts)
            or not np.array_equal(series_a.counts, series_b.counts)
            or not np.array_equal(series_a.values, series_b.values)
        ):
            return False
    return True


def retention_soak(batch_rounds, retention: float) -> dict:
    """Stream the workload into a bounded collector and watch residency."""
    collector = TraceCollector(retention=retention)
    peak = 0
    for round_ in batch_rounds:
        for (src, dst, at_destination), stamps in round_.items():
            collector.ingest_batch(src, dst, stamps, at_destination)
        collector.evict_expired()
        peak = max(peak, collector.record_count())
    stats = collector.ingest_stats()
    return {
        "retention_seconds": retention,
        "peak_resident_records": peak,
        "final_resident_records": stats["resident_records"],
        "records_evicted": stats["records_evicted"],
        "records_ingested": stats["records_ingested"],
        "resident_bounded": stats["records_evicted"] > 0
        and peak < stats["records_ingested"],
    }


def run_benchmark(classes: int, seed: int, duration: float, repeats: int,
                  request_rate: float = 100.0) -> dict:
    records, batch_rounds = build_workload(classes, seed, duration, request_rate)
    count = len(records)
    print(f"workload: {count} records over {len(batch_rounds)} flush rounds",
          flush=True)

    modes = {
        "per_record": lambda: ingest_per_record(records, columnar=False),
        "per_record_columnar": lambda: ingest_per_record(records, columnar=True),
        "batched": lambda: ingest_batched(batch_rounds),
    }
    results = {}
    for name, fn in modes.items():
        results[name] = timed_rate(fn, count, repeats)
        print(
            f"{name:20s} {results[name]['records_per_second']:12,.0f} records/s",
            flush=True,
        )

    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "bench.rtb"
        reference = ingest_batched(batch_rounds)
        file_bytes = None
        write_capture_binary(path, reference.export_batches())
        file_bytes = path.stat().st_size
        results["binary_replay"] = timed_rate(
            lambda: ingest_binary_replay(path), count, repeats
        )
        results["binary_replay"]["file_bytes"] = file_bytes
        print(
            f"{'binary_replay':20s} "
            f"{results['binary_replay']['records_per_second']:12,.0f} records/s "
            f"({file_bytes} bytes on disk)",
            flush=True,
        )
        # Same replay with the file memory-mapped: timestamp arrays are
        # zero-copy views into the page cache (read_capture_binary
        # mmap=True), bit-identical to the copying read.
        results["binary_replay_mmap"] = timed_rate(
            lambda: ingest_binary_replay(path, mmap=True), count, repeats
        )
        results["binary_replay_mmap"]["file_bytes"] = file_bytes
        print(
            f"{'binary_replay_mmap':20s} "
            f"{results['binary_replay_mmap']['records_per_second']:12,.0f} records/s",
            flush=True,
        )
        mmap_identical = identical_windows(
            ingest_binary_replay(path),
            ingest_binary_replay(path, mmap=True),
            end_time=duration,
        )

    equivalent = identical_windows(
        ingest_per_record(records, columnar=False),
        ingest_batched(batch_rounds),
        end_time=duration,
    )
    soak = retention_soak(
        batch_rounds, retention=BENCH_INGEST_CONFIG.retention_horizon
    )

    per_record = results["per_record"]["records_per_second"]
    batched = results["batched"]["records_per_second"]
    return {
        "workload": {
            "classes": classes,
            "seed": seed,
            "duration": duration,
            "request_rate": request_rate,
            "repeats": repeats,
            "records": count,
            "flush_rounds": len(batch_rounds),
            "flush_interval": FLUSH_INTERVAL,
        },
        "modes": results,
        "batched_speedup": batched / per_record if per_record else float("inf"),
        "identical_analysis_windows": equivalent,
        "mmap_identical_analysis_windows": mmap_identical,
        "retention_soak": soak,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized workload: fewer classes, shorter trace, one repeat",
    )
    parser.add_argument("--classes", type=int, default=None)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--request-rate", type=float, default=100.0)
    parser.add_argument("--duration", type=float, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path("BENCH_ingest.json"),
    )
    args = parser.parse_args(argv)
    if args.quick:
        classes = args.classes or 8
        duration = args.duration or 10.0
        repeats = args.repeats or 1
    else:
        classes = args.classes or 24
        duration = args.duration or 24.0
        repeats = args.repeats or 3
    doc = run_benchmark(
        classes=classes,
        seed=args.seed,
        duration=duration,
        repeats=repeats,
        request_rate=args.request_rate,
    )
    args.output.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    print(f"batched speedup over per-record ingest: {doc['batched_speedup']:.2f}x")
    print(f"identical analysis windows: {doc['identical_analysis_windows']}")
    print(f"[written to {args.output}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
