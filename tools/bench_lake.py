"""Benchmark the tiered trace lake: week-scale soak + summary-fold speedup.

Two sections, written as JSON into ``BENCH_lake.json``:

* ``soak`` -- a week of simulated ingest (hour-sized numpy batches per
  stream) through a retention-bounded collector spilling to a lake.
  Reports the resident-record ceiling, the process RSS growth, the
  lake's spill statistics, and a stitched-read bit-identity check
  against the synthetic source stream: flat memory with zero data loss
  is the tier's whole point.
* ``query_speedup`` -- an engine run materializes per-block correlation
  summaries into the lake, then a long-horizon delay query is answered
  twice: by folding the materialized summaries
  (:func:`repro.analysis.history.span_estimate`) and by re-correlating
  the raw spilled timestamps (:func:`raw_span_estimate`).  The ratio is
  the headline number ``benchmarks/test_lake_speedup.py`` gates (>= 5x).

Run from the repository root:

    PYTHONPATH=src python tools/bench_lake.py            # full workload
    PYTHONPATH=src python tools/bench_lake.py --quick    # CI-sized
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import resource
import statistics
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.analysis.history import raw_span_estimate, span_estimate  # noqa: E402
from repro.config import PathmapConfig  # noqa: E402
from repro.core.engine import E2EProfEngine  # noqa: E402
from repro.lake import TraceLake  # noqa: E402
from repro.simulation.distributions import Erlang  # noqa: E402
from repro.simulation.nodes import StaticRouter  # noqa: E402
from repro.simulation.topology import Topology  # noqa: E402
from repro.tracing.collector import TraceCollector  # noqa: E402

#: Analysis parameters for the speedup section: 5 s blocks, a two-block
#: window, 1 ms quanta and a 1 s transaction-delay bound.
BENCH_LAKE_CONFIG = PathmapConfig(
    window=10.0,
    refresh_interval=5.0,
    quantum=1e-3,
    sampling_window=10e-3,
    max_transaction_delay=1.0,
    retention=31.0,
)

#: Spans simulated by the soak: a full week, batched hour by hour.
WEEK_SECONDS = 7 * 24 * 3600.0
HOUR_SECONDS = 3600.0


def run_soak(
    simulated_seconds: float,
    rate_per_stream: float,
    streams: int,
    seed: int,
    retention: float = 61.0,
) -> dict:
    """Week-scale spill soak: flat residency, zero loss, bounded RSS."""
    rss_start_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    rng = np.random.default_rng(seed)
    edges = [(f"N{i}", f"N{i + 1}") for i in range(streams)]
    source = {edge: [] for edge in edges}
    with tempfile.TemporaryDirectory() as root:
        lake = TraceLake(root, segment_bytes=1 << 20)
        collector = TraceCollector(retention=retention, lake=lake)
        peak_resident = 0
        total = 0
        started = time.perf_counter()
        hours = int(round(simulated_seconds / HOUR_SECONDS))
        for hour in range(hours):
            base = hour * HOUR_SECONDS
            for edge in edges:
                count = rng.poisson(rate_per_stream * HOUR_SECONDS)
                stamps = np.sort(rng.uniform(base, base + HOUR_SECONDS, count))
                collector.ingest_batch(edge[0], edge[1], stamps)
                source[edge].append(stamps)
                total += count
            collector.evict_expired()
            peak_resident = max(peak_resident, collector.record_count())
        wall = time.perf_counter() - started
        # Bit-identity of a stitched read over a mid-week day against
        # the synthetic source stream (every value spilled exactly once).
        day_lo = simulated_seconds / 2.0
        day_hi = day_lo + 24 * 3600.0
        identical = True
        for edge in edges:
            reference = np.concatenate(source[edge])
            reference = reference[(reference >= day_lo) & (reference < day_hi)]
            got = collector.edge_timestamps_range(
                edge[0], edge[1], day_lo, day_hi
            )
            identical = identical and np.array_equal(got, np.sort(reference))
        stats = lake.stats()
        lake.close()
    rss_end_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # The collector may hold up to retention * rate resident per stream
    # plus one in-flight hour batch; 4x slack keeps the bound meaningful
    # without tripping on chunk granularity.
    bound = int(4 * streams * rate_per_stream * (retention + HOUR_SECONDS))
    return {
        "simulated_seconds": simulated_seconds,
        "streams": streams,
        "rate_per_stream": rate_per_stream,
        "retention_seconds": retention,
        "records_ingested": total,
        "resident_peak_records": peak_resident,
        "resident_bound_records": bound,
        "resident_flat": peak_resident <= bound,
        "stitched_read_bit_identical": identical,
        "ru_maxrss_start_kb": rss_start_kb,
        "ru_maxrss_end_kb": rss_end_kb,
        "spilled_records": stats["spilled_records"],
        "spilled_bytes": stats["spilled_bytes"],
        "segments": stats["segments"],
        "ingest_wall_seconds": wall,
        "records_per_second": total / wall if wall else float("inf"),
    }


def _chain_topology(seed: int, rate: float):
    topo = Topology(seed=seed)
    topo.add_service_node("DB", Erlang(0.010, k=8), workers=8)
    topo.add_service_node(
        "WS", Erlang(0.004, k=8), workers=8, router=StaticRouter({}, default="DB")
    )
    client = topo.add_client("C", "cls", front_end="WS")
    topo.open_workload(client, rate=rate)
    return topo


def run_query_speedup(
    duration: float,
    rate: float,
    seed: int,
    repeats: int,
) -> dict:
    """Materialize summaries via an engine run, then time fold vs raw."""
    config = BENCH_LAKE_CONFIG
    with tempfile.TemporaryDirectory() as root:
        lake = TraceLake(root)
        sink = TraceCollector(client_nodes=["C"], retention=config.retention)
        engine = E2EProfEngine(config, capture_sink=sink, lake=lake)
        topo = _chain_topology(seed, rate)
        engine.attach(topo)
        topo.run_until(duration)
        engine.close()

        span = (10.0, duration - 30.0)
        max_lag = int(round(config.max_transaction_delay / config.quantum))

        def time_query(fn):
            times = []
            result = None
            for _ in range(repeats):
                started = time.perf_counter()
                result = fn()
                times.append(time.perf_counter() - started)
            return statistics.median(times), result

        fold_seconds, fold = time_query(
            lambda: span_estimate(
                lake, "C", "WS", "WS", "DB",
                start=span[0], end=span[1], max_lag=max_lag,
            )
        )
        raw_seconds, raw = time_query(
            lambda: raw_span_estimate(
                lake, config, "C", "WS", "WS", "DB",
                span[0], span[1], max_lag=max_lag,
            )
        )
        stats = lake.stats()
    return {
        "workload": {
            "duration": duration,
            "request_rate": rate,
            "seed": seed,
            "repeats": repeats,
            "span": list(span),
            "max_lag": max_lag,
            "config": {
                "window": config.window,
                "refresh_interval": config.refresh_interval,
                "quantum": config.quantum,
                "sampling_window": config.sampling_window,
                "retention": config.retention,
            },
        },
        "summary_rows": stats["summary_rows"],
        "summary_fold": {
            "median_seconds": fold_seconds,
            "blocks_folded": fold.blocks,
            "delay_seconds": fold.delay,
        },
        "raw_replay": {
            "median_seconds": raw_seconds,
            "delay_seconds": raw.delay,
        },
        "delay_disagreement_seconds": abs(fold.delay - raw.delay),
        "speedup": raw_seconds / fold_seconds if fold_seconds else float("inf"),
    }


def environment_stamp() -> dict:
    return {
        "cores": os.cpu_count(),
        "numpy": np.__version__,
        "python": sys.version.split()[0],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized: one simulated day, shorter engine run, one repeat",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path("BENCH_lake.json"),
    )
    args = parser.parse_args(argv)
    if args.quick:
        soak_seconds = 24 * 3600.0
        streams, rate = 2, 5.0
        duration, repeats = 150.0, args.repeats or 3
    else:
        soak_seconds = WEEK_SECONDS
        streams, rate = 2, 5.0
        duration, repeats = 480.0, args.repeats or 5
    doc = {
        "soak": run_soak(
            simulated_seconds=soak_seconds,
            rate_per_stream=rate,
            streams=streams,
            seed=args.seed,
        )
    }
    soak = doc["soak"]
    print(
        f"soak: {soak['records_ingested']} records over "
        f"{soak['simulated_seconds'] / 3600.0:.0f}h, resident peak "
        f"{soak['resident_peak_records']} (bound {soak['resident_bound_records']}), "
        f"bit-identical={soak['stitched_read_bit_identical']}",
        flush=True,
    )
    doc["query_speedup"] = run_query_speedup(
        duration=duration, rate=40.0, seed=args.seed, repeats=repeats
    )
    speed = doc["query_speedup"]
    print(
        f"query: fold {speed['summary_fold']['median_seconds'] * 1000:.2f}ms vs "
        f"raw {speed['raw_replay']['median_seconds'] * 1000:.1f}ms -> "
        f"{speed['speedup']:.1f}x "
        f"(delay disagreement {speed['delay_disagreement_seconds'] * 1000:.1f}ms)",
        flush=True,
    )
    doc["environment"] = environment_stamp()
    merged = {}
    if args.output.exists():
        try:
            merged = json.loads(args.output.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            merged = {}
    merged.update(doc)
    args.output.write_text(json.dumps(merged, indent=2) + "\n", encoding="utf-8")
    print(f"[written to {args.output}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
