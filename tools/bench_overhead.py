"""Benchmark the always-on refresh ledger's overhead.

A/B-drives the online engine over the synthetic many-class topology with
the cost ledger enabled (the default) and disabled, and reports per-mode
refresh latencies plus the priced cost of the ledger's bookkeeping
operations. The ledger's contract is O(stages + kernel invocations) per
refresh -- this tool is how that "<5% of refresh cost" claim is produced
outside the test suite. Run from the repository root:

    PYTHONPATH=src python tools/bench_overhead.py            # full workload
    PYTHONPATH=src python tools/bench_overhead.py --quick    # CI-sized

The JSON lands in ``BENCH_overhead.json`` (override with ``--output``);
``benchmarks/test_ledger_overhead.py`` asserts the bound on the same
machinery.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.apps.manyclass import MANY_CLASS_CONFIG, build_many_class  # noqa: E402
from repro.core.engine import E2EProfEngine  # noqa: E402
from repro.obs.ledger import KERNEL_RLE, STAGE_INGEST, LedgerRecorder  # noqa: E402

#: Refreshes discarded from the front of every run (correlator warmup).
WARMUP_REFRESHES = 4


def run_mode(
    ledger: bool,
    classes: int,
    quiet_fraction: float,
    seed: int,
    end_time: float,
    request_rate: float = 8.0,
) -> dict:
    """One deployment + engine run; returns per-refresh latency stats."""
    deployment = build_many_class(
        classes=classes,
        quiet_fraction=quiet_fraction,
        seed=seed,
        request_rate=request_rate,
        quiet_after=5.0,
        config=MANY_CLASS_CONFIG,
    )
    engine = E2EProfEngine(deployment.config, ledger=ledger)
    costs = []
    engine.subscribe(
        lambda now, result: costs.append(engine.last_refresh_seconds)
    )
    started = time.perf_counter()
    engine.attach(deployment.topology)
    deployment.run_until(end_time)
    engine.detach()
    wall = time.perf_counter() - started
    measured = sorted(costs[WARMUP_REFRESHES:])
    if not measured:
        raise RuntimeError(
            f"no refreshes past warmup (end_time={end_time} too short)"
        )
    return {
        "refreshes": len(measured),
        "p50_seconds": statistics.median(measured),
        "p95_seconds": measured[min(len(measured) - 1, int(0.95 * len(measured)))],
        "mean_seconds": statistics.fmean(measured),
        "wall_seconds": wall,
    }


def price_recorder_ops(ops: int = 200_000) -> dict:
    """Per-call wall cost of the enabled recorder's hot operations."""
    recorder = LedgerRecorder()
    recorder.begin_refresh()
    timings = {}
    for name, call in (
        ("record_stage", lambda: recorder.record_stage(STAGE_INGEST, 1e-6, items=1)),
        ("record_kernel", lambda: recorder.record_kernel(
            KERNEL_RLE, rows=10, seconds=1e-6, work_units=40.0, bytes_touched=240)),
    ):
        started = time.perf_counter()
        for _ in range(ops):
            call()
        timings[f"{name}_ns"] = (time.perf_counter() - started) / ops * 1e9
    return timings


def run_benchmark(
    classes: int,
    quiet_fraction: float,
    seed: int,
    end_time: float,
    repeats: int,
) -> dict:
    results = {}
    for name, enabled in (("ledger_on", True), ("ledger_off", False)):
        runs = [
            run_mode(enabled, classes, quiet_fraction, seed, end_time)
            for _ in range(repeats)
        ]
        results[name] = min(runs, key=lambda r: r["p50_seconds"])
        print(
            f"{name:11s} p50={results[name]['p50_seconds'] * 1000:7.2f}ms "
            f"p95={results[name]['p95_seconds'] * 1000:7.2f}ms "
            f"({results[name]['refreshes']} refreshes)",
            flush=True,
        )
    on = results["ledger_on"]["p50_seconds"]
    off = results["ledger_off"]["p50_seconds"]
    return {
        "workload": {
            "classes": classes,
            "quiet_fraction": quiet_fraction,
            "seed": seed,
            "end_time": end_time,
            "repeats": repeats,
            "config": {
                "window": MANY_CLASS_CONFIG.window,
                "refresh_interval": MANY_CLASS_CONFIG.refresh_interval,
                "quantum": MANY_CLASS_CONFIG.quantum,
            },
        },
        "modes": results,
        "priced_ops": price_recorder_ops(),
        "overhead_ratio": on / off if off else float("inf"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized workload: fewer classes, one repeat per mode",
    )
    parser.add_argument("--classes", type=int, default=None)
    parser.add_argument("--quiet-fraction", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path("BENCH_overhead.json"),
    )
    args = parser.parse_args(argv)
    if args.quick:
        classes = args.classes or 16
        repeats = args.repeats or 1
        end_time = 20.0
    else:
        classes = args.classes or 40
        repeats = args.repeats or 2
        end_time = 30.0
    doc = run_benchmark(
        classes=classes,
        quiet_fraction=args.quiet_fraction,
        seed=args.seed,
        end_time=end_time,
        repeats=repeats,
    )
    args.output.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    print(f"ledger on/off p50 ratio: {doc['overhead_ratio']:.3f}")
    print(f"[written to {args.output}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
