"""Benchmark the online refresh across engine execution modes.

Drives N engine refreshes over the synthetic many-class topology
(:mod:`repro.apps.manyclass`) in three modes -- ``serial`` (legacy
per-pair appends), ``batched`` (reference-grouped kernels + quiet-edge
skipping), and ``batched+workers`` (the thread-pooled refresh) -- and
reports p50/p95 refresh latencies, correlator counts and skip ratios as
JSON. Run from the repository root:

    PYTHONPATH=src python tools/bench_refresh.py            # full workload
    PYTHONPATH=src python tools/bench_refresh.py --quick    # CI-sized

The JSON lands in ``BENCH_refresh.json`` (override with ``--output``);
``benchmarks/test_refresh_throughput.py`` asserts the batched speedup on
the same machinery.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.apps.manyclass import build_many_class  # noqa: E402
from repro.config import PathmapConfig  # noqa: E402
from repro.core.engine import E2EProfEngine  # noqa: E402

#: Analysis parameters shared by every mode: 2 s blocks, a three-block
#: window and a 2 s transaction-delay bound (max_lag = 2000 quanta).
BENCH_REFRESH_CONFIG = PathmapConfig(
    window=6.0,
    refresh_interval=2.0,
    quantum=1e-3,
    sampling_window=1e-3,
    max_transaction_delay=2.0,
    min_spike_height=0.10,
)

#: Refreshes discarded from the front of every run: they cover the warmup
#: period where every class is still active and correlators are created.
WARMUP_REFRESHES = 6


def run_mode(
    batched: bool,
    workers: int,
    classes: int,
    quiet_fraction: float,
    seed: int,
    end_time: float,
    request_rate: float = 20.0,
) -> dict:
    """One deployment + engine run; returns per-refresh latency stats."""
    deployment = build_many_class(
        classes=classes,
        quiet_fraction=quiet_fraction,
        seed=seed,
        request_rate=request_rate,
        quiet_after=5.0,
        config=BENCH_REFRESH_CONFIG,
    )
    engine = E2EProfEngine(deployment.config, batched=batched, workers=workers)
    samples = []
    engine.subscribe_metrics(lambda now, result, sample: samples.append(sample))
    started = time.perf_counter()
    engine.attach(deployment.topology)
    deployment.run_until(end_time)
    engine.detach()
    wall = time.perf_counter() - started
    measured = samples[WARMUP_REFRESHES:]
    if not measured:
        raise RuntimeError(
            f"no refreshes past warmup (end_time={end_time} too short)"
        )
    latencies = sorted(s.refresh_seconds for s in measured)
    skips = sum(s.correlator_skips for s in measured)
    last = measured[-1]
    return {
        "refreshes": len(measured),
        "p50_seconds": statistics.median(latencies),
        "p95_seconds": latencies[min(len(latencies) - 1, int(0.95 * len(latencies)))],
        "max_seconds": latencies[-1],
        "mean_seconds": statistics.fmean(latencies),
        "correlators": last.correlators,
        "skips_per_refresh": skips / len(measured),
        "correlation_cache_hits": sum(s.correlation_cache_hits for s in measured),
        "wall_seconds": wall,
    }


def best_of(repeats: int, **kwargs) -> dict:
    """Re-run a mode ``repeats`` times and keep the run with the lowest
    median latency (standard bench hygiene: the minimum over repeats
    strips one-off machine noise such as GC pauses or CPU migration)."""
    runs = [run_mode(**kwargs) for _ in range(repeats)]
    return min(runs, key=lambda r: r["p50_seconds"])


def run_benchmark(
    classes: int,
    quiet_fraction: float,
    seed: int,
    end_time: float,
    workers: int,
    repeats: int,
) -> dict:
    modes = {
        "serial": dict(batched=False, workers=1),
        "batched": dict(batched=True, workers=1),
        f"batched+{workers}w": dict(batched=True, workers=workers),
    }
    results = {}
    for name, mode in modes.items():
        results[name] = best_of(
            repeats,
            classes=classes,
            quiet_fraction=quiet_fraction,
            seed=seed,
            end_time=end_time,
            **mode,
        )
        print(
            f"{name:12s} p50={results[name]['p50_seconds'] * 1000:7.1f}ms "
            f"p95={results[name]['p95_seconds'] * 1000:7.1f}ms "
            f"correlators={results[name]['correlators']} "
            f"skips/refresh={results[name]['skips_per_refresh']:.0f}",
            flush=True,
        )
    serial = results["serial"]["p50_seconds"]
    batched = results["batched"]["p50_seconds"]
    return {
        "workload": {
            "classes": classes,
            "quiet_fraction": quiet_fraction,
            "seed": seed,
            "end_time": end_time,
            "request_rate": 20.0,
            "repeats": repeats,
            "config": {
                "window": BENCH_REFRESH_CONFIG.window,
                "refresh_interval": BENCH_REFRESH_CONFIG.refresh_interval,
                "quantum": BENCH_REFRESH_CONFIG.quantum,
                "max_transaction_delay": BENCH_REFRESH_CONFIG.max_transaction_delay,
            },
        },
        "modes": results,
        "batched_speedup": serial / batched if batched else float("inf"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized workload: fewer classes, one repeat per mode",
    )
    parser.add_argument("--classes", type=int, default=None)
    parser.add_argument("--quiet-fraction", type=float, default=None)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path("BENCH_refresh.json"),
    )
    args = parser.parse_args(argv)
    if args.quick:
        classes = args.classes or 16
        quiet_fraction = args.quiet_fraction or 0.75
        repeats = args.repeats or 1
        end_time = 24.0
    else:
        classes = args.classes or 40
        quiet_fraction = args.quiet_fraction or 0.9
        repeats = args.repeats or 2
        end_time = 40.0
    doc = run_benchmark(
        classes=classes,
        quiet_fraction=quiet_fraction,
        seed=args.seed,
        end_time=end_time,
        workers=args.workers,
        repeats=repeats,
    )
    args.output.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    print(f"batched speedup over serial: {doc['batched_speedup']:.2f}x")
    print(f"[written to {args.output}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
