"""Benchmark the online refresh across engine execution modes.

Drives N engine refreshes over the synthetic many-class topology
(:mod:`repro.apps.manyclass`) in three modes -- ``serial`` (legacy
per-pair appends), ``batched`` (reference-grouped kernels + quiet-edge
skipping), and ``batched+workers`` (the thread-pooled refresh) -- and
reports p50/p95 refresh latencies, correlator counts and skip ratios as
JSON. Run from the repository root:

    PYTHONPATH=src python tools/bench_refresh.py            # full workload
    PYTHONPATH=src python tools/bench_refresh.py --quick    # CI-sized

The JSON lands in ``BENCH_refresh.json`` (override with ``--output``);
``benchmarks/test_refresh_throughput.py`` asserts the batched speedup on
the same machinery.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import statistics
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.apps.manyclass import build_many_class  # noqa: E402
from repro.config import PathmapConfig  # noqa: E402
from repro.core.engine import E2EProfEngine  # noqa: E402

#: Analysis parameters shared by every mode: 2 s blocks, a three-block
#: window and a 2 s transaction-delay bound (max_lag = 2000 quanta).
BENCH_REFRESH_CONFIG = PathmapConfig(
    window=6.0,
    refresh_interval=2.0,
    quantum=1e-3,
    sampling_window=1e-3,
    max_transaction_delay=2.0,
    min_spike_height=0.10,
)

#: The dense-regime variant: every class stays active at a high request
#: rate and each message is smeared over a 5 ms sampling window, so
#: blocks approach full occupancy -- the flash-crowd / batch-surge shape
#: where the direct kernels' pair counts explode and the FFT batch
#: kernel's fixed ``size * log2(size)`` cost wins.
DENSE_REFRESH_CONFIG = PathmapConfig(
    window=6.0,
    refresh_interval=2.0,
    quantum=1e-3,
    sampling_window=5e-3,
    max_transaction_delay=2.0,
    min_spike_height=0.10,
)

#: Refreshes discarded from the front of every run: they cover the warmup
#: period where every class is still active and correlators are created.
WARMUP_REFRESHES = 6


def run_mode(
    batched: bool,
    workers: int,
    classes: int,
    quiet_fraction: float,
    seed: int,
    end_time: float,
    request_rate: float = 20.0,
    config: PathmapConfig = BENCH_REFRESH_CONFIG,
    fft_dispatch: str = "auto",
) -> dict:
    """One deployment + engine run; returns per-refresh latency stats."""
    deployment = build_many_class(
        classes=classes,
        quiet_fraction=quiet_fraction,
        seed=seed,
        request_rate=request_rate,
        quiet_after=5.0,
        config=config,
    )
    engine = E2EProfEngine(
        deployment.config,
        batched=batched,
        workers=workers,
        fft_dispatch=fft_dispatch,
    )
    samples = []
    engine.subscribe_metrics(lambda now, result, sample: samples.append(sample))
    started = time.perf_counter()
    engine.attach(deployment.topology)
    deployment.run_until(end_time)
    engine.detach()
    wall = time.perf_counter() - started
    measured = samples[WARMUP_REFRESHES:]
    if not measured:
        raise RuntimeError(
            f"no refreshes past warmup (end_time={end_time} too short)"
        )
    latencies = sorted(s.refresh_seconds for s in measured)
    skips = sum(s.correlator_skips for s in measured)
    last = measured[-1]
    ledger = engine.latest_ledger
    kernel_rows = (
        {name: sample.rows for name, sample in sorted(ledger.kernels.items())}
        if ledger is not None
        else {}
    )
    return {
        "refreshes": len(measured),
        "kernel_rows_last_refresh": kernel_rows,
        "p50_seconds": statistics.median(latencies),
        "p95_seconds": latencies[min(len(latencies) - 1, int(0.95 * len(latencies)))],
        "max_seconds": latencies[-1],
        "mean_seconds": statistics.fmean(latencies),
        "correlators": last.correlators,
        "skips_per_refresh": skips / len(measured),
        "correlation_cache_hits": sum(s.correlation_cache_hits for s in measured),
        "wall_seconds": wall,
    }


def best_of(repeats: int, **kwargs) -> dict:
    """Re-run a mode ``repeats`` times and keep the run with the lowest
    median latency (standard bench hygiene: the minimum over repeats
    strips one-off machine noise such as GC pauses or CPU migration)."""
    runs = [run_mode(**kwargs) for _ in range(repeats)]
    return min(runs, key=lambda r: r["p50_seconds"])


def run_benchmark(
    classes: int,
    quiet_fraction: float,
    seed: int,
    end_time: float,
    workers: int,
    repeats: int,
) -> dict:
    modes = {
        "serial": dict(batched=False, workers=1),
        "batched": dict(batched=True, workers=1),
        f"batched+{workers}w": dict(batched=True, workers=workers),
    }
    results = {}
    for name, mode in modes.items():
        results[name] = best_of(
            repeats,
            classes=classes,
            quiet_fraction=quiet_fraction,
            seed=seed,
            end_time=end_time,
            **mode,
        )
        print(
            f"{name:12s} p50={results[name]['p50_seconds'] * 1000:7.1f}ms "
            f"p95={results[name]['p95_seconds'] * 1000:7.1f}ms "
            f"correlators={results[name]['correlators']} "
            f"skips/refresh={results[name]['skips_per_refresh']:.0f}",
            flush=True,
        )
    serial = results["serial"]["p50_seconds"]
    batched = results["batched"]["p50_seconds"]
    return {
        "workload": {
            "classes": classes,
            "quiet_fraction": quiet_fraction,
            "seed": seed,
            "end_time": end_time,
            "request_rate": 20.0,
            "repeats": repeats,
            "config": {
                "window": BENCH_REFRESH_CONFIG.window,
                "refresh_interval": BENCH_REFRESH_CONFIG.refresh_interval,
                "quantum": BENCH_REFRESH_CONFIG.quantum,
                "max_transaction_delay": BENCH_REFRESH_CONFIG.max_transaction_delay,
            },
        },
        "modes": results,
        "batched_speedup": serial / batched if batched else float("inf"),
    }


def run_dense_benchmark(
    classes: int,
    request_rate: float,
    seed: int,
    end_time: float,
    repeats: int,
) -> dict:
    """The dense-regime A/B: batched refresh with the FFT kernel off
    (``direct`` -- every row on the sparse/RLE kernels, the pre-FFT
    baseline) versus on (``fft`` -- the density dispatch routes dense
    rows to the batched FFT kernel with cached spectra)."""
    modes = {
        "direct": dict(fft_dispatch="off"),
        "fft": dict(fft_dispatch="auto"),
    }
    results = {}
    for name, mode in modes.items():
        results[name] = best_of(
            repeats,
            batched=True,
            workers=1,
            classes=classes,
            quiet_fraction=0.0,
            seed=seed,
            end_time=end_time,
            request_rate=request_rate,
            config=DENSE_REFRESH_CONFIG,
            **mode,
        )
        print(
            f"dense/{name:6s} p50={results[name]['p50_seconds'] * 1000:7.1f}ms "
            f"p95={results[name]['p95_seconds'] * 1000:7.1f}ms "
            f"kernel_rows={results[name]['kernel_rows_last_refresh']}",
            flush=True,
        )
    direct = results["direct"]["p50_seconds"]
    fft = results["fft"]["p50_seconds"]
    return {
        "workload": {
            "classes": classes,
            "quiet_fraction": 0.0,
            "seed": seed,
            "end_time": end_time,
            "request_rate": request_rate,
            "repeats": repeats,
            "config": {
                "window": DENSE_REFRESH_CONFIG.window,
                "refresh_interval": DENSE_REFRESH_CONFIG.refresh_interval,
                "quantum": DENSE_REFRESH_CONFIG.quantum,
                "sampling_window": DENSE_REFRESH_CONFIG.sampling_window,
                "max_transaction_delay": DENSE_REFRESH_CONFIG.max_transaction_delay,
            },
        },
        "modes": results,
        "fft_speedup": direct / fft if fft else float("inf"),
    }


def environment_stamp() -> dict:
    """Hardware/library context the numbers depend on, stamped into the
    JSON so committed results are self-explaining (a 1-core container
    shows worker parity, not speedup; numpy's pocketfft version sets the
    FFT kernel's constant factors)."""
    return {
        "cores": os.cpu_count(),
        "numpy": np.__version__,
        "python": sys.version.split()[0],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized workload: fewer classes, one repeat per mode",
    )
    parser.add_argument("--classes", type=int, default=None)
    parser.add_argument("--quiet-fraction", type=float, default=None)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path("BENCH_refresh.json"),
    )
    parser.add_argument(
        "--skip-dense",
        action="store_true",
        help="skip the dense-regime FFT A/B section",
    )
    args = parser.parse_args(argv)
    if args.quick:
        classes = args.classes or 16
        quiet_fraction = args.quiet_fraction or 0.75
        repeats = args.repeats or 1
        end_time = 24.0
        dense_classes, dense_rate, dense_end = 12, 120.0, 16.0
    else:
        classes = args.classes or 40
        quiet_fraction = args.quiet_fraction or 0.9
        repeats = args.repeats or 2
        end_time = 40.0
        dense_classes, dense_rate, dense_end = 40, 120.0, 20.0
    doc = run_benchmark(
        classes=classes,
        quiet_fraction=quiet_fraction,
        seed=args.seed,
        end_time=end_time,
        workers=args.workers,
        repeats=repeats,
    )
    if not args.skip_dense:
        doc["dense"] = run_dense_benchmark(
            classes=dense_classes,
            request_rate=dense_rate,
            seed=args.seed,
            end_time=dense_end,
            repeats=repeats,
        )
    doc["environment"] = environment_stamp()
    # Merge into an existing results file (other tools own sections of
    # the same JSON -- bench_shards.py writes the "shards" key).
    merged = {}
    if args.output.exists():
        try:
            merged = json.loads(args.output.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            merged = {}
    merged.update(doc)
    args.output.write_text(json.dumps(merged, indent=2) + "\n", encoding="utf-8")
    print(f"batched speedup over serial: {doc['batched_speedup']:.2f}x")
    if "dense" in doc:
        print(f"dense fft speedup over direct kernels: {doc['dense']['fft_speedup']:.2f}x")
    print(f"[written to {args.output}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
