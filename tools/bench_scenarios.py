"""Benchmark the scenario accuracy matrix: adaptive vs the static grid.

Simulates every labeled scenario once per analysis mode and grades the
discovered service graphs against the simulator's exact ground truth
(:mod:`repro.scenarios`). Modes are ``adaptive`` (the self-tuning
closed loop) and the three static resolutions the paper's operator
would have to pick blind (``fast``/``medium``/``slow``). Run from the
repository root:

    PYTHONPATH=src python tools/bench_scenarios.py           # full matrix
    PYTHONPATH=src python tools/bench_scenarios.py --quick   # CI-sized

The JSON lands in ``BENCH_scenarios.json`` (override with ``--output``).
Every accuracy field is deterministic for a given seed -- simulation,
analysis and scoring are all seeded and unthreaded -- so the committed
file is reproducible bit-for-bit apart from ``elapsed_seconds``.
``benchmarks/test_scenario_matrix.py`` asserts the headline claims
(adaptive beats every static config on aggregate F1; steady scenarios
unregressed) on the same machinery.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Dict, List, Optional, Sequence

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.scenarios import get_scenario, list_scenarios  # noqa: E402
from repro.scenarios.runner import (  # noqa: E402
    STATIC_GRID,
    analyze_adaptive,
    analyze_static,
    grid_config,
)

#: All analysis modes the matrix sweeps, adaptive first.
ALL_MODES = ("adaptive",) + tuple(sorted(STATIC_GRID))

#: The --quick subset: every scenario except the 128-node mesh (which
#: dominates runtime) while still spanning steady, bursty, path-variant
#: and coarse-regime behaviours.
QUICK_SCENARIOS = (
    "steady_state",
    "flash_crowd",
    "retry_storm",
    "cache_stampede",
    "canary_shift",
    "traffic_trough",
)


def score_one(name: str, mode: str, seed: int) -> dict:
    """Simulate and grade one scenario under one mode; returns the
    score dict plus wall-clock ``elapsed_seconds``."""
    run = get_scenario(name).build(seed=seed)
    started = time.perf_counter()
    if mode == "adaptive":
        score = analyze_adaptive(run)
    else:
        score = analyze_static(run, grid_config(run, mode), mode=mode)
    row = score.to_dict(include_cells=False)
    row["steady"] = run.steady
    row["elapsed_seconds"] = round(time.perf_counter() - started, 3)
    return row


def score_matrix(
    names: Sequence[str],
    modes: Sequence[str] = ALL_MODES,
    seed: int = 0,
    verbose: bool = False,
) -> dict:
    """The full scenarios x modes scorecard document."""
    scores: List[dict] = []
    for name in names:
        for mode in modes:
            row = score_one(name, mode, seed)
            scores.append(row)
            if verbose:
                print(
                    f"{name:16s} {mode:8s} f1={row['aggregate_f1']:.3f} "
                    f"p={row['aggregate_precision']:.3f} "
                    f"r={row['aggregate_recall']:.3f} "
                    f"({row['elapsed_seconds']:.1f}s)",
                    file=sys.stderr,
                )
    aggregates: Dict[str, float] = {}
    steady_aggregates: Dict[str, Optional[float]] = {}
    for mode in modes:
        rows = [r for r in scores if r["mode"] == mode]
        aggregates[mode] = round(
            sum(r["aggregate_f1"] for r in rows) / len(rows), 4
        )
        steady = [r for r in rows if r["steady"]]
        steady_aggregates[mode] = (
            round(sum(r["aggregate_f1"] for r in steady) / len(steady), 4)
            if steady
            else None
        )
    return {
        "generator": "tools/bench_scenarios.py",
        "seed": seed,
        "scenarios": list(names),
        "modes": list(modes),
        "scores": scores,
        "aggregate_f1_by_mode": aggregates,
        "steady_aggregate_f1_by_mode": steady_aggregates,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized subset (skips the fan-out mesh)")
    parser.add_argument("--output", default="BENCH_scenarios.json")
    args = parser.parse_args(argv)

    names = (
        list(QUICK_SCENARIOS)
        if args.quick
        else [scenario.name for scenario in list_scenarios()]
    )
    doc = score_matrix(names, ALL_MODES, seed=args.seed, verbose=True)
    payload = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    pathlib.Path(args.output).write_text(payload, encoding="utf-8")
    print(f"wrote {args.output}", file=sys.stderr)
    for mode in ALL_MODES:
        print(f"  {mode:8s} aggregate f1 {doc['aggregate_f1_by_mode'][mode]:.4f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
