"""Benchmark the sharded refresh: threads vs worker processes.

Drives N engine refreshes over a dense many-class topology in three
modes -- ``serial``, ``threads`` (the GIL-bound thread pool) and
``processes`` (consistent-hash correlator shards over
``multiprocessing.shared_memory``) -- and reports p50/p95 refresh
latencies plus the process-over-threads speedup as JSON. Run from the
repository root:

    PYTHONPATH=src python tools/bench_shards.py           # full workload
    PYTHONPATH=src python tools/bench_shards.py --quick   # CI-sized

Results merge into the ``shards`` section of ``BENCH_refresh.json``
(override with ``--output``); ``benchmarks/test_shard_speedup.py``
gates the speedup on the same machinery. The ``cores`` field records
the machine the numbers came from -- process sharding cannot beat
threads on a single-core box, and the gate skips there.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import statistics
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.apps.manyclass import build_many_class  # noqa: E402
from repro.config import PathmapConfig  # noqa: E402
from repro.core.engine import E2EProfEngine  # noqa: E402

#: Analysis parameters for the dense workload: 2 s blocks, three-block
#: window, 2 s transaction-delay bound. Every class stays active
#: (``quiet_fraction=0``), so the correlate stage dominates each refresh
#: -- the regime process sharding targets.
BENCH_SHARDS_CONFIG = PathmapConfig(
    window=6.0,
    refresh_interval=2.0,
    quantum=1e-3,
    sampling_window=1e-3,
    max_transaction_delay=2.0,
    min_spike_height=0.10,
)

#: Refreshes discarded from the front of every run (correlator warmup).
WARMUP_REFRESHES = 4


def run_mode(
    parallel: str,
    workers: int,
    shards: int,
    classes: int,
    seed: int,
    end_time: float,
    request_rate: float = 20.0,
) -> dict:
    """One deployment + engine run; returns per-refresh latency stats."""
    deployment = build_many_class(
        classes=classes,
        quiet_fraction=0.0,
        seed=seed,
        request_rate=request_rate,
        quiet_after=end_time,
        config=BENCH_SHARDS_CONFIG,
    )
    engine = E2EProfEngine(
        deployment.config, parallel=parallel, workers=workers, shards=shards
    )
    samples = []
    engine.subscribe_metrics(lambda now, result, sample: samples.append(sample))
    started = time.perf_counter()
    engine.attach(deployment.topology)
    deployment.run_until(end_time)
    engine.detach()
    wall = time.perf_counter() - started
    measured = samples[WARMUP_REFRESHES:]
    if not measured:
        raise RuntimeError(
            f"no refreshes past warmup (end_time={end_time} too short)"
        )
    latencies = sorted(s.refresh_seconds for s in measured)
    last = measured[-1]
    return {
        "refreshes": len(measured),
        "p50_seconds": statistics.median(latencies),
        "p95_seconds": latencies[min(len(latencies) - 1, int(0.95 * len(latencies)))],
        "max_seconds": latencies[-1],
        "mean_seconds": statistics.fmean(latencies),
        "correlators": last.correlators,
        "wall_seconds": wall,
    }


def best_of(repeats: int, **kwargs) -> dict:
    """Keep the run with the lowest median latency over ``repeats``."""
    runs = [run_mode(**kwargs) for _ in range(repeats)]
    return min(runs, key=lambda r: r["p50_seconds"])


def run_benchmark(
    classes: int, seed: int, end_time: float, lanes: int, repeats: int
) -> dict:
    modes = {
        "serial": dict(parallel="serial", workers=1, shards=1),
        f"threads-{lanes}": dict(parallel="threads", workers=lanes, shards=1),
        f"processes-{lanes}": dict(parallel="processes", workers=1, shards=lanes),
    }
    results = {}
    for name, mode in modes.items():
        results[name] = best_of(
            repeats, classes=classes, seed=seed, end_time=end_time, **mode
        )
        print(
            f"{name:14s} p50={results[name]['p50_seconds'] * 1000:7.1f}ms "
            f"p95={results[name]['p95_seconds'] * 1000:7.1f}ms "
            f"correlators={results[name]['correlators']}",
            flush=True,
        )
    threads = results[f"threads-{lanes}"]["p50_seconds"]
    procs = results[f"processes-{lanes}"]["p50_seconds"]
    serial = results["serial"]["p50_seconds"]
    return {
        "workload": {
            "classes": classes,
            "quiet_fraction": 0.0,
            "seed": seed,
            "end_time": end_time,
            "request_rate": 20.0,
            "lanes": lanes,
            "repeats": repeats,
            "config": {
                "window": BENCH_SHARDS_CONFIG.window,
                "refresh_interval": BENCH_SHARDS_CONFIG.refresh_interval,
                "quantum": BENCH_SHARDS_CONFIG.quantum,
                "max_transaction_delay": BENCH_SHARDS_CONFIG.max_transaction_delay,
            },
        },
        "cores": os.cpu_count(),
        "modes": results,
        "processes_over_threads": threads / procs if procs else float("inf"),
        "processes_over_serial": serial / procs if procs else float("inf"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized workload: fewer classes, one repeat per mode",
    )
    parser.add_argument("--classes", type=int, default=None)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--lanes",
        type=int,
        default=4,
        help="thread workers / shard processes to compare (default 4)",
    )
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path("BENCH_refresh.json"),
        help="JSON file whose 'shards' section receives the results",
    )
    args = parser.parse_args(argv)
    if args.quick:
        classes = args.classes or 12
        repeats = args.repeats or 1
        end_time = 18.0
    else:
        classes = args.classes or 40
        repeats = args.repeats or 2
        end_time = 30.0
    doc = run_benchmark(
        classes=classes,
        seed=args.seed,
        end_time=end_time,
        lanes=args.lanes,
        repeats=repeats,
    )
    merged = {}
    if args.output.exists():
        merged = json.loads(args.output.read_text(encoding="utf-8"))
    merged["shards"] = doc
    args.output.write_text(json.dumps(merged, indent=2) + "\n", encoding="utf-8")
    print(
        f"processes over threads: {doc['processes_over_threads']:.2f}x "
        f"(over serial: {doc['processes_over_serial']:.2f}x, "
        f"{doc['cores']} cores)"
    )
    print(f"[written to {args.output}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
