"""FIG5 -- Figure 5: service graphs under affinity-based server selection.

Regenerates the paper's figure as delay-labelled ASCII path chains with
the bottleneck (EJB) tier marked, and benchmarks the pathmap analysis
that produces it.

Expected shape (paper): bidding takes C1 -> WS -> TS1 -> EJB1 -> DS and
back; comment takes C2 -> WS -> TS2 -> EJB2 -> DS and back; the EJB
servers are the dominant delay contributors (grey).
"""

from repro.analysis.render import render_ascii
from repro.apps.rubis import EXPECTED_AFFINITY_PATHS
from repro.core.pathmap import compute_service_graphs

from conftest import BENCH_CONFIG, write_result


def test_fig5_affinity_service_graphs(benchmark, rubis_affinity):
    window = rubis_affinity.window(end_time=183.0)
    result = benchmark(compute_service_graphs, window, BENCH_CONFIG, "rle")

    lines = ["Figure 5 -- service graphs, affinity-based server selection"]
    for client in ("C1", "C2"):
        graph = result.graph_for(client)
        lines.append("")
        lines.append(render_ascii(graph))
    write_result("fig5_affinity_paths.txt", "\n".join(lines))

    # The paper's headline: paths recovered exactly.
    for service_class, client in (("bidding", "C1"), ("comment", "C2")):
        graph = result.graph_for(client)
        for edge in EXPECTED_AFFINITY_PATHS[service_class]:
            assert graph.has_edge(*edge)
    assert result.graph_for("C1").node_delay("EJB1") > result.graph_for("C1").node_delay("TS1")
