"""FIG9 -- Figure 9: execution time of service-path analysis.

The paper compares the cost of computing the round-robin service graphs
for growing sliding windows ``W``, across:

* ``no compression``  -- direct correlation with the T_u bound only
  (dense series),
* ``burst compression`` -- non-zero entries only (sparse),
* ``RLE compression``  -- run-length encoded series,
* ``FFT-based``        -- the Eq. 2 / convolution baseline (FFTW there,
  numpy.fft here),
* ``incremental``      -- per-refresh cost with cached block correlators
  (flat in W).

Expected shape: direct variants scale linearly in W with
RLE <= burst <= no-compression work; the incremental per-refresh cost is
roughly constant in W. Wall-clock rankings of FFT differ from the paper
(numpy's FFT runs at C speed while the direct kernels pay numpy dispatch
overheads), so the table also reports an **operation-count proxy** --
inner-product terms touched per full analysis -- which reproduces the
paper's ordering directly.
"""

import time

import numpy as np
import pytest

from repro import E2EProfEngine, PathmapConfig, build_rubis
from repro.analysis.render import render_comparison_table
from repro.core.correlation import _as_rle, _as_sparse
from repro.core.pathmap import compute_service_graphs

from conftest import write_result

WINDOWS = [60.0, 120.0, 240.0, 480.0]
HORIZON = 500.0
RATE = 2.0  # req/s per class: bursty, sparse traffic as in the paper

#: Shared analysis parameters (T_u tightened to 1 s so the dense variant
#: stays tractable in pure Python at W = 8 min).
BASE = PathmapConfig(
    window=WINDOWS[0],
    refresh_interval=60.0,
    quantum=1e-3,
    sampling_window=50e-3,
    max_transaction_delay=1.0,
)


@pytest.fixture(scope="module")
def trace():
    # Multi-packet messages (the paper's back-to-back transaction packets)
    # make the traffic bursty: dense packet clusters between quiet zones.
    rubis = build_rubis(dispatch="round_robin", seed=21, request_rate=RATE,
                        packets_per_message=4, config=BASE)
    rubis.run_until(HORIZON)
    return rubis


def _analysis_windows(rubis, window_seconds):
    cfg = BASE.with_window(window_seconds, refresh_interval=60.0)
    return cfg, rubis.collector.window(cfg, end_time=HORIZON - 2.0)


def _op_proxy(window, cfg, method):
    """Inner-product terms touched by one full analysis with ``method``."""
    total = 0
    d_max = cfg.max_lag_quanta
    for src, dst in window.active_edges():
        series = window.edge_series(src, dst)
        sparse = _as_sparse(series)
        n = sparse.length
        if method == "dense":
            total += n * (d_max + 1)
        elif method == "sparse":
            nnz_density = sparse.nnz / max(n, 1)
            total += int(sparse.nnz * nnz_density * d_max)
        elif method == "rle":
            rle = _as_rle(series)
            runs_density = rle.num_runs / max(n, 1)
            total += int(rle.num_runs * runs_density * d_max * 4)
        elif method == "fft":
            size = 1
            while size < 2 * n:
                size <<= 1
            total += int(3 * size * np.log2(size))
    return total


def _measure(rubis, window_seconds, method):
    cfg, window = _analysis_windows(rubis, window_seconds)
    started = time.perf_counter()
    result = compute_service_graphs(window, cfg, method=method)
    elapsed = time.perf_counter() - started
    return elapsed, result, _op_proxy(window, cfg, method)


def _incremental_refresh_cost(window_seconds):
    """Mean per-refresh engine cost at steady state for this W."""
    cfg = BASE.with_window(window_seconds, refresh_interval=60.0)
    rubis = build_rubis(dispatch="round_robin", seed=21, request_rate=RATE,
                        config=cfg)
    engine = E2EProfEngine(cfg)
    engine.attach(rubis.topology)
    durations = []
    engine.subscribe(lambda now, res: durations.append(engine.last_refresh_seconds))
    rubis.run_until(HORIZON)
    steady = durations[max(0, len(durations) - 3):]
    return float(np.mean(steady))


def test_fig9_analysis_time(benchmark, trace):
    methods = ["dense", "sparse", "rle", "fft"]
    rows = []
    ops_rows = []
    timings = {}
    opcounts = {}
    for w in WINDOWS:
        row = [f"{w:.0f}"]
        ops_row = [f"{w:.0f}"]
        for method in methods:
            elapsed, result, ops = _measure(trace, w, method)
            timings[(w, method)] = elapsed
            opcounts[(w, method)] = ops
            row.append(f"{elapsed:.3f}")
            ops_row.append(f"{ops:.2e}")
        inc = _incremental_refresh_cost(w)
        timings[(w, "incremental")] = inc
        row.append(f"{inc:.3f}")
        rows.append(row)
        ops_rows.append(ops_row)

    table = render_comparison_table(
        ["W (s)", "no compression", "burst", "RLE", "FFT", "incremental/refresh"],
        rows,
        title="Figure 9 -- execution time of service path analysis (seconds)",
    )
    ops_table = render_comparison_table(
        ["W (s)", "no compression", "burst", "RLE", "FFT"],
        ops_rows,
        title="operation-count proxy (inner-product terms per analysis)",
    )
    write_result("fig9_analysis_time.txt", table + "\n\n" + ops_table)

    # Benchmark the RLE analysis at the largest window (the paper's
    # recommended configuration).
    cfg, window = _analysis_windows(trace, WINDOWS[-1])
    benchmark(compute_service_graphs, window, cfg, "rle")

    w_max = WINDOWS[-1]
    # Shape 1: RLE beats burst beats no-compression at the largest window.
    assert timings[(w_max, "rle")] < timings[(w_max, "sparse")]
    assert timings[(w_max, "sparse")] < timings[(w_max, "dense")]
    # Shape 2: direct variants grow with W (roughly linearly).
    assert timings[(w_max, "dense")] > 2.0 * timings[(WINDOWS[0], "dense")]
    # Shape 3: incremental per-refresh cost is ~flat in W.
    assert timings[(w_max, "incremental")] < 3.0 * timings[(WINDOWS[0], "incremental")]
    # Shape 4 (paper's op-count claim): optimized direct touches far fewer
    # terms than both the unoptimized direct and the FFT.
    for w in WINDOWS:
        assert opcounts[(w, "rle")] < opcounts[(w, "fft")] < opcounts[(w, "dense")]
