"""PERF -- process-sharded refresh vs the GIL-bound thread pool.

The thread-pooled refresh only overlaps the numpy kernel interiors
(those release the GIL); the Python halves of correlator upkeep and the
pathmap DFS still serialize. Process sharding partitions whole
correlator groups by service class across worker processes -- block
shipment rides `multiprocessing.shared_memory`, so workers read the
columnar arrays zero-copy -- and only the tiny per-shard pathmap
partials cross back.

Gate: on the dense 40-class workload (every class active, correlate
stage dominant) with >= 4 physical lanes, the process-sharded refresh's
median latency beats threads by >= 2x. The comparison is meaningless on
fewer cores (both degrade to time-slicing one CPU), so the gate skips
there -- `tools/bench_shards.py` still records honest numbers with the
core count attached.

Results land in ``benchmarks/results/shard_speedup.txt``.
"""

import os
import pathlib
import sys

import pytest

from repro.analysis.render import render_comparison_table

from conftest import write_result

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tools"))

from bench_shards import best_of  # noqa: E402

CLASSES = 40
SEED = 7
END_TIME = 30.0
LANES = 4
REPEATS = 2

pytestmark = pytest.mark.slow


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="process-over-threads speedup needs >= 4 cores to manifest",
)
def test_processes_beat_threads_by_2x_on_dense_workload():
    modes = {
        "serial": dict(parallel="serial", workers=1, shards=1),
        f"threads-{LANES}": dict(parallel="threads", workers=LANES, shards=1),
        f"processes-{LANES}": dict(parallel="processes", workers=1, shards=LANES),
    }
    results = {}
    for name, mode in modes.items():
        results[name] = best_of(
            REPEATS, classes=CLASSES, seed=SEED, end_time=END_TIME, **mode
        )

    rows = [
        (
            name,
            f"{r['p50_seconds'] * 1000:.1f}",
            f"{r['p95_seconds'] * 1000:.1f}",
            str(r["correlators"]),
        )
        for name, r in results.items()
    ]
    table = render_comparison_table(
        ("mode", "p50 ms", "p95 ms", "correlators"), rows
    )
    write_result("shard_speedup.txt", table)

    threads = results[f"threads-{LANES}"]["p50_seconds"]
    procs = results[f"processes-{LANES}"]["p50_seconds"]
    speedup = threads / procs
    print(f"processes over threads: {speedup:.2f}x on {os.cpu_count()} cores")
    assert speedup >= 2.0, (
        f"process sharding must halve the dense-workload refresh p50: "
        f"threads={threads * 1000:.1f}ms processes={procs * 1000:.1f}ms "
        f"({speedup:.2f}x)"
    )
