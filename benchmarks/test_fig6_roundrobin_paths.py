"""FIG6 -- Figure 6: service graphs under round-robin server selection.

Each service class now takes TWO paths (one per Tomcat/EJB branch); both
must appear in the class's service graph, with the EJB tier grey.
"""

from repro.analysis.render import render_ascii
from repro.apps.rubis import EXPECTED_ROUND_ROBIN_EDGES
from repro.core.pathmap import compute_service_graphs

from conftest import BENCH_CONFIG, write_result


def test_fig6_roundrobin_service_graphs(benchmark, rubis_roundrobin):
    window = rubis_roundrobin.window(end_time=183.0)
    result = benchmark(compute_service_graphs, window, BENCH_CONFIG, "rle")

    lines = ["Figure 6 -- service graphs, round-robin server selection"]
    for client in ("C1", "C2"):
        lines.append("")
        lines.append(render_ascii(result.graph_for(client)))
    write_result("fig6_roundrobin_paths.txt", "\n".join(lines))

    for service_class, client in (("bidding", "C1"), ("comment", "C2")):
        graph = result.graph_for(client)
        for edge in EXPECTED_ROUND_ROBIN_EDGES[service_class]:
            assert graph.has_edge(*edge), (client, edge)
    # Both branches enumerable as distinct paths.
    nodes_per_path = {p.nodes for p in result.graph_for("C1").paths()}
    assert any("TS1" in n for n in nodes_per_path)
    assert any("TS2" in n for n in nodes_per_path)
