"""Overhead guard for the always-on refresh cost ledger.

The ledger's contract is O(stages + kernel invocations) bookkeeping per
refresh -- a handful of ``perf_counter`` reads, never per-row work. This
benchmark counts the recorder operations a real many-class refresh
performs, prices each operation in isolation, and demands the product
stays under 5% of the measured refresh cost. A direct on/off A/B on the
same workload lands in ``benchmarks/results/ledger_overhead.txt``.
"""

import statistics
import time

from conftest import write_result

from repro.apps.manyclass import MANY_CLASS_CONFIG, build_many_class
from repro.core.engine import E2EProfEngine
from repro.obs.ledger import KERNEL_RLE, STAGE_INGEST, LedgerRecorder

CLASSES = 40
QUIET_FRACTION = 0.5
SEED = 7
END_TIME = 30.0


def _run(ledger_enabled, instrument=False):
    """One many-class run; returns (engine, refresh costs, op counts)."""
    deployment = build_many_class(
        classes=CLASSES, quiet_fraction=QUIET_FRACTION, seed=SEED,
        request_rate=8.0, config=MANY_CLASS_CONFIG,
    )
    engine = E2EProfEngine(MANY_CLASS_CONFIG, ledger=ledger_enabled)
    calls = {"stage": 0, "kernel": 0, "refreshes": 0}
    if instrument:
        record_stage, record_kernel = (engine.ledger.record_stage,
                                       engine.ledger.record_kernel)

        def counting_stage(*args, **kwargs):
            calls["stage"] += 1
            return record_stage(*args, **kwargs)

        def counting_kernel(*args, **kwargs):
            calls["kernel"] += 1
            return record_kernel(*args, **kwargs)

        engine.ledger.record_stage = counting_stage
        engine.ledger.record_kernel = counting_kernel
    costs = []
    engine.subscribe(
        lambda now, result: costs.append(engine.last_refresh_seconds)
    )
    engine.attach(deployment.topology)
    deployment.run_until(END_TIME)
    engine.detach()
    calls["refreshes"] = len(costs)
    assert costs
    return engine, costs, calls


def _price_op(op, *args, ops=50_000, **kwargs):
    """Per-call wall cost of one recorder operation."""
    started = time.perf_counter()
    for _ in range(ops):
        op(*args, **kwargs)
    return (time.perf_counter() - started) / ops


def test_ledger_overhead_under_five_percent():
    engine, costs, calls = _run(True, instrument=True)
    refreshes = calls["refreshes"]
    # The contract: O(stages + kernel invocations) recorder calls per
    # refresh, independent of row counts. ~40 pending blocks per refresh
    # on this workload means at most a few kernel records each.
    ops_per_refresh = (calls["stage"] + calls["kernel"]) / refreshes + 2
    assert ops_per_refresh < 16 * CLASSES  # bookkeeping stays O(blocks)

    recorder = LedgerRecorder()
    recorder.begin_refresh()
    per_stage = _price_op(recorder.record_stage, STAGE_INGEST, 1e-6, items=1)
    per_kernel = _price_op(recorder.record_kernel, KERNEL_RLE, rows=10,
                           seconds=1e-6, work_units=40.0, bytes_touched=240)
    per_op = max(per_stage, per_kernel)

    median_cost = statistics.median(costs)
    ledger_cost = ops_per_refresh * per_op
    overhead = ledger_cost / median_cost
    assert overhead < 0.05, (
        f"ledger bookkeeping {ledger_cost * 1e6:.1f}us/refresh is "
        f"{overhead:.1%} of the {median_cost * 1e3:.2f}ms median refresh"
    )

    _, baseline_costs, _ = _run(False)
    ab_ratio = statistics.median(costs) / statistics.median(baseline_costs)
    # Direct A/B is noisy on a quick run; guard only against a gross
    # regression and record the measured numbers.
    assert ab_ratio < 1.5

    write_result(
        "ledger_overhead.txt",
        "\n".join([
            f"many-class workload: {CLASSES} classes, "
            f"{QUIET_FRACTION:.0%} quiet, {refreshes} refreshes",
            f"recorder ops/refresh        {ops_per_refresh:.1f}",
            f"priced per-op cost          {per_op * 1e9:.0f} ns",
            f"ledger bookkeeping/refresh  {ledger_cost * 1e6:.2f} us",
            f"median refresh (ledger on)  {median_cost * 1e3:.3f} ms",
            f"priced overhead             {overhead:.3%} (bound 5%)",
            f"A/B median ratio (on/off)   {ab_ratio:.3f}",
        ]),
    )


def test_disabled_recorder_is_near_free():
    """ledger=False engines keep a recorder whose every call is a
    single attribute check -- price it to keep that contract honest."""
    recorder = LedgerRecorder(enabled=False)
    per_stage = _price_op(recorder.record_stage, STAGE_INGEST, 1e-6)
    per_kernel = _price_op(recorder.record_kernel, KERNEL_RLE, rows=1,
                           seconds=1e-6)
    assert per_stage < 2e-6 and per_kernel < 2e-6
    assert len(recorder) == 0
