"""ACCURACY -- self-tuning analysis vs every static config, with labels.

The paper fixes (tau, omega, T_u) per deployment and concedes (Section
4.3) that drastic traffic variation degrades the pathmaps. This bench
replays the labeled non-steady-state scenario suite -- flash crowd,
diurnal cycle, retry storm, cache stampede, canary shift, traffic
trough, a 128-node fan-out mesh and a steady baseline -- and grades
each analysis mode against the simulator's exact ground truth.

Headline claims asserted here:

* **Adaptive wins in aggregate.** The self-tuning loop's mean F1 over
  the whole suite beats every static grid resolution.
* **Steady state is not the price.** On the steady scenarios the
  adaptive loop stays within a small margin of the best static config.
* **Changes are seen.** The retry storm's injected backend slowdown is
  detected by the change detector under the adaptive loop.
* **The committed scorecard is live.** ``BENCH_scenarios.json`` at the
  repository root matches a fresh run's accuracy fields exactly --
  simulation, analysis and scoring are deterministic per seed.

Results land in ``benchmarks/results/scenario_matrix.txt``.
"""

import json
import pathlib
import sys

import pytest

from conftest import write_result

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tools"))

from bench_scenarios import ALL_MODES, score_matrix  # noqa: E402

from repro.scenarios import list_scenarios  # noqa: E402

SEED = 0
#: Adaptive may trail the best static config by at most this much F1 on
#: steady scenarios (it must not buy non-steady wins with steady losses).
STEADY_TOLERANCE = 0.05

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_scenarios.json"


@pytest.fixture(scope="module")
def matrix():
    names = [scenario.name for scenario in list_scenarios()]
    assert len(names) >= 6, "the suite must span at least six scenarios"
    return score_matrix(names, ALL_MODES, seed=SEED)


def test_adaptive_beats_every_static_aggregate(matrix):
    aggregates = matrix["aggregate_f1_by_mode"]
    adaptive = aggregates["adaptive"]
    rows = [["mode", "aggregate F1"]]
    for mode in matrix["modes"]:
        rows.append([mode, f"{aggregates[mode]:.4f}"])
    write_result(
        "scenario_matrix.txt",
        "\n".join("  ".join(str(c).ljust(10) for c in row) for row in rows),
    )
    for mode in matrix["modes"]:
        if mode == "adaptive":
            continue
        assert adaptive >= aggregates[mode], (
            f"adaptive aggregate F1 {adaptive:.4f} lost to static "
            f"{mode!r} at {aggregates[mode]:.4f}"
        )


def test_steady_scenarios_unregressed(matrix):
    steady = [r for r in matrix["scores"] if r["steady"]]
    assert steady, "the suite must contain steady scenarios"
    by_scenario = {}
    for row in steady:
        by_scenario.setdefault(row["scenario"], {})[row["mode"]] = row
    for name, modes in by_scenario.items():
        best_static = max(
            row["aggregate_f1"]
            for mode, row in modes.items()
            if mode != "adaptive"
        )
        adaptive = modes["adaptive"]["aggregate_f1"]
        assert adaptive >= best_static - STEADY_TOLERANCE, (
            f"steady scenario {name!r}: adaptive F1 {adaptive:.4f} regressed "
            f"more than {STEADY_TOLERANCE} below best static {best_static:.4f}"
        )


def test_retry_storm_change_detected(matrix):
    rows = [
        r
        for r in matrix["scores"]
        if r["scenario"] == "retry_storm" and r["mode"] == "adaptive"
    ]
    assert rows, "retry_storm must be part of the matrix"
    latencies = rows[0]["detection_latencies"]
    assert latencies and latencies[0] is not None, (
        "adaptive analysis missed the retry storm's backend slowdown"
    )


def test_committed_scorecard_matches_fresh_run(matrix):
    assert BENCH_PATH.exists(), (
        "BENCH_scenarios.json is missing: regenerate with "
        "PYTHONPATH=src python tools/bench_scenarios.py"
    )
    committed = json.loads(BENCH_PATH.read_text(encoding="utf-8"))

    def accuracy_only(doc):
        return {
            "seed": doc["seed"],
            "scenarios": doc["scenarios"],
            "modes": doc["modes"],
            "aggregate_f1_by_mode": doc["aggregate_f1_by_mode"],
            "steady_aggregate_f1_by_mode": doc["steady_aggregate_f1_by_mode"],
            "scores": [
                {k: v for k, v in row.items() if k != "elapsed_seconds"}
                for row in doc["scores"]
            ],
        }

    assert accuracy_only(committed) == accuracy_only(matrix), (
        "committed BENCH_scenarios.json is stale: regenerate with "
        "PYTHONPATH=src python tools/bench_scenarios.py"
    )
