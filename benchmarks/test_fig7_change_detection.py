"""FIG7 -- Figure 7: performance change detection.

Round-robin RUBiS; an artificial delay is injected into EJB2's request
processing and increased every 3 minutes; the online engine (W = 1 min,
as in the paper) tracks the per-edge delay. The regenerated series shows:

* the measured EJB2 delay tracking the injected staircase with a constant
  offset (EJB2's true processing time),
* the front-end average moving much less ("since more than half of the
  requests take the low latency path"),
* unperturbed edges flat.
"""

import numpy as np
import pytest

from repro import ChangeDetector, E2EProfEngine, PathmapConfig, build_rubis
from repro.analysis.render import render_comparison_table
from repro.apps.faults import staircase_delay

from conftest import write_result

CFG = PathmapConfig(
    window=60.0,
    refresh_interval=60.0,
    quantum=1e-3,
    sampling_window=50e-3,
    max_transaction_delay=2.0,
)

STEP = 0.015
INTERVAL = 180.0
START = 120.0
HORIZON = 12 * 60.0


@pytest.fixture(scope="module")
def staircase_series():
    rubis = build_rubis(dispatch="round_robin", seed=11, request_rate=10.0, config=CFG)
    rubis.ejbs["EJB2"].set_extra_delay(staircase_delay(STEP, INTERVAL, start=START))
    engine = E2EProfEngine(CFG)
    engine.attach(rubis.topology)
    detector = ChangeDetector()
    detector.subscribe_to(engine)
    rubis.run_until(HORIZON + 5)
    return rubis, detector


def test_fig7_change_detection(benchmark, staircase_series):
    rubis, detector = staircase_series
    key = ("C1", "WS")

    def extract():
        t_in, d_in = detector.delay_series(key, ("TS2", "EJB2"))
        t_out, d_out = detector.delay_series(key, ("EJB2", "DS"))
        n = min(len(d_in), len(d_out))
        return t_out[:n], d_out[:n] - d_in[:n]

    times, measured = benchmark(extract)

    client = rubis.clients["bidding"]
    rows = []
    for t, node_delay in zip(times, measured):
        window_mid = t - CFG.window / 2
        injected = 0.0 if window_mid < START else STEP * (
            1 + int((window_mid - START) // INTERVAL)
        )
        lats = client.latencies_between(t - CFG.window, t)
        front_avg = float(np.mean(lats)) * 1e3 if lats else float("nan")
        rows.append([
            f"{t:.0f}",
            f"{injected * 1e3:.0f}",
            f"{node_delay * 1e3:.1f}",
            f"{front_avg:.1f}",
        ])
    table = render_comparison_table(
        ["time (s)", "injected delay (ms)", "EJB2 delay by pathmap (ms)",
         "front-end avg latency (ms)"],
        rows,
        title="Figure 7 -- performance change detection (W = 1 min)",
    )
    write_result("fig7_change_detection.txt", table)

    # Shape assertions: measured tracks injected + constant base.
    base = measured[0]
    injected = np.array([0.0 if (t - CFG.window / 2) < START else STEP * (
        1 + int(((t - CFG.window / 2) - START) // INTERVAL)) for t in times])
    residual = measured - base - injected
    assert np.abs(residual).max() < STEP, "tracking error exceeds one step"
    # The front-end average moves less than the injected fault magnitude.
    assert injected[-1] > 0.04
