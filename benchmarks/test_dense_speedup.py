"""PERF -- dense-regime FFT batch kernel vs the direct kernels.

The direct kernels (sparse pair enumeration, RLE trapezoids) price a
correlation row by its occupancy, which explodes quadratically when a
flash crowd or batch surge fills the blocks. The FFT batch kernel's cost
is fixed by the window (``size * log2(size)`` per row, spectra cached
across rows and refreshes), so on the dense many-class workload the
density dispatch flips every row to ``fft_batch`` and the refresh must
get dramatically cheaper.

Gate: on the dense 12-class workload (every class active at 120 req/s,
messages smeared over 5 ms) the FFT-enabled refresh's median latency
beats the direct-kernels-only baseline (``fft_dispatch="off"``) by
>= 2x, and auto dispatch actually routed the rows through ``fft_batch``
(if it did not, the workload no longer qualifies and the gate skips
rather than comparing two identical configurations).

Results land in ``benchmarks/results/dense_speedup.txt``; the committed
full-scale numbers are the ``dense`` section of ``BENCH_refresh.json``.
"""

import pathlib
import sys

import pytest

from repro.analysis.render import render_comparison_table

from conftest import write_result

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tools"))

from bench_refresh import best_of, DENSE_REFRESH_CONFIG  # noqa: E402

CLASSES = 12
REQUEST_RATE = 120.0
SEED = 7
END_TIME = 16.0
REPEATS = 2

pytestmark = pytest.mark.slow


def test_fft_kernel_halves_dense_refresh_latency():
    modes = {
        "direct": dict(fft_dispatch="off"),
        "fft": dict(fft_dispatch="auto"),
    }
    results = {}
    for name, mode in modes.items():
        results[name] = best_of(
            REPEATS,
            batched=True,
            workers=1,
            classes=CLASSES,
            quiet_fraction=0.0,
            seed=SEED,
            end_time=END_TIME,
            request_rate=REQUEST_RATE,
            config=DENSE_REFRESH_CONFIG,
            **mode,
        )

    rows = [
        [
            name,
            f"{r['p50_seconds'] * 1000:.1f}",
            f"{r['p95_seconds'] * 1000:.1f}",
            str(r["correlators"]),
            str(r["kernel_rows_last_refresh"].get("fft_batch", 0)),
        ]
        for name, r in results.items()
    ]
    table = render_comparison_table(
        ["mode", "p50 (ms)", "p95 (ms)", "correlators", "fft rows/refresh"],
        rows,
        title=f"Dense refresh over {CLASSES} classes @ {REQUEST_RATE:.0f} req/s",
    )
    write_result("dense_speedup.txt", table)

    direct = results["direct"]
    fft = results["fft"]
    # Same topology, same analysis: both modes see the same correlators.
    assert fft["correlators"] == direct["correlators"]
    # The baseline must really be FFT-free.
    assert direct["kernel_rows_last_refresh"].get("fft_batch", 0) == 0
    # The workload must qualify: auto dispatch routed rows to fft_batch.
    fft_rows = fft["kernel_rows_last_refresh"].get("fft_batch", 0)
    if fft_rows == 0:
        pytest.skip(
            "dense workload no longer routes rows to fft_batch "
            f"(kernel rows: {fft['kernel_rows_last_refresh']}); "
            "the direct-vs-fft comparison would be vacuous"
        )
    # The headline: the FFT batch kernel at least halves the dense
    # refresh's median latency (the committed full-scale bench shows
    # well above 5x; 2x keeps the gate robust on slow CI machines).
    speedup = direct["p50_seconds"] / fft["p50_seconds"]
    assert speedup >= 2.0, (
        f"fft refresh only {speedup:.2f}x faster than direct kernels "
        f"(direct p50 {direct['p50_seconds'] * 1000:.1f}ms, "
        f"fft p50 {fft['p50_seconds'] * 1000:.1f}ms)"
    )
