"""TAB1 -- Table 1: average latency with different path selection methods.

Paper setup (Section 4.2): two workload classes (bidding, comment);
artificial delays on the two EJB servers redrawn uniformly in [0, 100] ms
once per minute; the E2EProf-driven scheduler routes bidding to the lower
latency path and comment to the other; latencies averaged over a 10-minute
measurement period.

Paper's rows (physical testbed):
    Round-Robin (no perturbation)    bidding  72 ms   comment  64 ms
    Round-Robin (with perturbation)  bidding 121 ms   comment 109 ms
    E2EProf (with perturbation)      bidding  97 ms   comment 139 ms

Expected *shape* here: perturbation inflates both classes under
round-robin; E2EProf-based selection lowers bidding below the
round-robin-perturbed level and penalizes comment above it.
"""

import numpy as np
import pytest

from repro import E2EProfEngine, PathmapConfig, build_rubis
from repro.analysis.render import render_comparison_table
from repro.apps.faults import RandomPerturbation
from repro.management.scheduler import PathSelector

from conftest import write_result

#: Short window / fast refresh so the scheduler can track per-minute
#: perturbation epochs (the paper's online-reaction requirement).
CFG = PathmapConfig(
    window=15.0,
    refresh_interval=5.0,
    quantum=1e-3,
    sampling_window=50e-3,
    max_transaction_delay=2.0,
)

MEASURE_FROM = 120.0
HORIZON = 12 * 60.0
SEED = 5


def run_scenario(mode, perturbed):
    rubis = build_rubis(
        dispatch=mode, seed=SEED, request_rate=10.0, config=CFG,
        service_means={"EJB1": 0.020, "EJB2": 0.020},
    )
    if perturbed:
        rng = np.random.default_rng(SEED + 100)
        for name in ("EJB1", "EJB2"):
            rubis.ejbs[name].set_extra_delay(
                RandomPerturbation(rng, 0.0, 0.100, interval=60.0)
            )
    if mode == "latency_aware":
        engine = E2EProfEngine(CFG)
        engine.attach(rubis.topology)
        PathSelector(
            rubis.dispatcher, "bidding", "comment",
            class_clients={"bidding": "C1", "comment": "C2"},
        ).attach(engine)
    rubis.run_until(HORIZON)
    return (
        rubis.clients["bidding"].mean_latency(since=MEASURE_FROM),
        rubis.clients["comment"].mean_latency(since=MEASURE_FROM),
    )


@pytest.fixture(scope="module")
def table1():
    return {
        "rr_clean": run_scenario("round_robin", perturbed=False),
        "rr_pert": run_scenario("round_robin", perturbed=True),
        "e2eprof": run_scenario("latency_aware", perturbed=True),
    }


def test_table1_sla_scheduling(benchmark, table1):
    # The benchmarked operation is one scheduling decision cycle worth of
    # latency extraction (the online cost of the approach); the scenario
    # table itself is produced once above.
    results = benchmark(lambda: dict(table1))

    rows = [
        ["Round-Robin (no perturbation)",
         f"{results['rr_clean'][0]*1e3:.0f} ms", f"{results['rr_clean'][1]*1e3:.0f} ms"],
        ["Round-Robin (with perturbation)",
         f"{results['rr_pert'][0]*1e3:.0f} ms", f"{results['rr_pert'][1]*1e3:.0f} ms"],
        ["E2EProf (with perturbation)",
         f"{results['e2eprof'][0]*1e3:.0f} ms", f"{results['e2eprof'][1]*1e3:.0f} ms"],
    ]
    table = render_comparison_table(
        ["path selection", "Bidding", "Comment"],
        rows,
        title="Table 1 -- average latency with different path selection methods",
    )
    paper = (
        "\npaper reference: RR-clean 72/64, RR-pert 121/109, E2EProf 97/139 (ms)"
    )
    write_result("table1_sla_scheduling.txt", table + paper)

    rr_clean, rr_pert, e2e = results["rr_clean"], results["rr_pert"], results["e2eprof"]
    # Shape 1: perturbation hurts round-robin badly.
    assert rr_pert[0] > 1.5 * rr_clean[0]
    assert rr_pert[1] > 1.5 * rr_clean[1]
    # Shape 2: E2EProf-based selection improves the priority class...
    assert e2e[0] < rr_pert[0]
    # ...by penalizing the background class.
    assert e2e[1] > e2e[0]
