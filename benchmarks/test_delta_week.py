"""DELTA-WEEK -- the paper's week-long trace, endurance run.

"E2EProf is used to analyse a week long trace collected from this
subsystem." Seven scaled diurnal days (hourly rate curve + the nightly
4 AM batch) are simulated, exported as an access log, and replayed with
the offline sliding analyzer sampling four windows per day. Asserts what
the paper reports: paths recovered throughout the week except around the
nightly batches, where the steady-state assumption breaks.
"""

import numpy as np
import pytest

from repro.analysis.render import render_comparison_table
from repro.apps.delta import BATCH_HOUR_SECONDS, build_delta, run_day
from repro.config import PathmapConfig
from repro.core.offline import analyze_sliding
from repro.tracing.access_log import access_log_to_captures
from repro.tracing.collector import TraceCollector

from conftest import write_result

CFG = PathmapConfig(
    window=3600.0,
    refresh_interval=600.0,
    quantum=1.0,
    sampling_window=50.0,
    max_transaction_delay=1200.0,
)
DAYS = 7
DAY = 86400.0
STEP = 6 * 3600.0  # four analyses per day


@pytest.fixture(scope="module")
def week_replay():
    deployment = build_delta(
        seed=8, num_queues=3, events_per_hour=3600.0, config=CFG
    )
    end = 0.0
    for day in range(DAYS):
        end = run_day(deployment, day_start=day * DAY,
                      batch_events=900, batch_over_seconds=60.0)
    collector = TraceCollector(client_nodes=["external"])
    collector.ingest_many(access_log_to_captures(deployment.sorted_access_log()))
    return deployment, collector, end


def full_fraction(result):
    graphs = list(result.graphs.values())
    if not graphs:
        return 0.0
    full = sum(
        1 for g in graphs
        if g.has_edge("VAL", "RDB") and g.has_edge("RDB", "ACCT")
    )
    return full / len(graphs)


def test_delta_week(benchmark, week_replay):
    deployment, collector, end = week_replay
    results = dict(analyze_sliding(collector, CFG, 0.0, end, step=STEP))
    # Add one explicit analysis per day whose window covers the batch.
    from repro.core.pathmap import compute_service_graphs

    for day in range(DAYS):
        when = day * DAY + BATCH_HOUR_SECONDS + 0.75 * 3600.0
        window = collector.window(CFG, end_time=when, start_time=when - CFG.window)
        results[when] = compute_service_graphs(window, CFG)

    rows = []
    batch_windows = []
    normal_windows = []
    for when in sorted(results):
        quality = full_fraction(results[when])
        day = int(when // DAY)
        time_of_day = when % DAY
        covers_batch = (
            time_of_day - CFG.window <= BATCH_HOUR_SECONDS + 60 and
            BATCH_HOUR_SECONDS < time_of_day
        )
        (batch_windows if covers_batch else normal_windows).append(quality)
        rows.append([
            f"day {day + 1}",
            f"{time_of_day / 3600:.2f}h",
            f"{quality:.0%}",
            "<- covers nightly batch" if covers_batch else "",
        ])
    table = render_comparison_table(
        ["day", "window end", "pipelines fully recovered", ""],
        rows,
        title=f"Section 4.3 endurance -- {DAYS} diurnal days, "
              f"{len(deployment.access_log)} log records",
    )
    write_result("delta_week.txt", table)

    # Benchmark one representative analysis window.
    benchmark(
        lambda: next(iter(analyze_sliding(collector, CFG, 3 * DAY, 3 * DAY + 3700)))
    )

    assert len(results) >= DAYS * 5 - 1
    assert normal_windows and np.mean(normal_windows) > 0.85
    # The batch windows are the weak spot, as the paper reports.
    assert batch_windows
    assert np.mean(batch_windows) < np.mean(normal_windows)
