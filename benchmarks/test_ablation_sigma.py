"""ABL-SIGMA -- ablation of the spike threshold (Section 3.3).

The paper fixes the detection threshold at ``mean + 3 * std``. This
ablation sweeps the sigma multiplier on a controlled scenario -- one true
causal edge, many unrelated edges -- and measures the trade-off the 3
encodes: lower sigma admits false edges on unrelated traffic; higher
sigma starts losing the true (diluted) spike. The measured operating
band containing sigma = 3 validates the paper's choice.
"""

import numpy as np
import pytest

from repro.analysis.render import render_comparison_table
from repro.core.correlation import cross_correlate
from repro.core.spikes import detect_spikes
from repro.core.timeseries import build_density_series

from conftest import write_result

TAU = 1e-3
OMEGA = 20
TRUE_DELAY = 0.050
DURATION = 60.0
LENGTH = int(DURATION / TAU) + 1000
MAX_LAG = 1500
UNRELATED_EDGES = 30

SIGMAS = [1.0, 2.0, 3.0, 4.0, 6.0, 10.0]


@pytest.fixture(scope="module")
def scenario():
    rng = np.random.default_rng(9)
    arrivals = np.sort(rng.uniform(0, DURATION, 500))
    ref = build_density_series(arrivals, TAU, OMEGA, 0, LENGTH)
    # The true downstream edge carries only 1/4 of the class's signal
    # (shared with other classes), plus jitter: a weak-but-real spike.
    carried = arrivals[rng.random(arrivals.size) < 0.25]
    mixed = np.concatenate([
        carried + TRUE_DELAY + rng.uniform(-0.003, 0.003, carried.size),
        np.sort(rng.uniform(0, DURATION, 1500)),  # other classes' traffic
    ])
    true_edge = build_density_series(mixed, TAU, OMEGA, 0, LENGTH)
    unrelated = [
        build_density_series(
            np.sort(rng.uniform(0, DURATION, 600)), TAU, OMEGA, 0, LENGTH
        )
        for _ in range(UNRELATED_EDGES)
    ]
    return ref, true_edge, unrelated


def test_ablation_spike_sigma(benchmark, scenario):
    ref, true_edge, unrelated = scenario
    true_corr = cross_correlate(ref, true_edge, max_lag=MAX_LAG)
    unrelated_corrs = [
        cross_correlate(ref, sig, max_lag=MAX_LAG) for sig in unrelated
    ]

    rows = []
    outcome = {}
    for sigma in SIGMAS:
        for floor in (0.0, 0.10):
            spikes = detect_spikes(true_corr, sigma=sigma,
                                   resolution_quanta=OMEGA, min_height=floor)
            hit = any(abs(s.lag * TAU - TRUE_DELAY) < 0.010 for s in spikes)
            false_edges = sum(
                1
                for corr in unrelated_corrs
                if detect_spikes(corr, sigma=sigma,
                                 resolution_quanta=OMEGA, min_height=floor)
            )
            outcome[(sigma, floor)] = (hit, false_edges)
        hit_bare, false_bare = outcome[(sigma, 0.0)]
        hit_floor, false_floor = outcome[(sigma, 0.10)]
        rows.append([
            f"{sigma:.0f}",
            "yes" if hit_bare else "NO",
            f"{false_bare}/{UNRELATED_EDGES}",
            "yes" if hit_floor else "NO",
            f"{false_floor}/{UNRELATED_EDGES}",
        ])
    table = render_comparison_table(
        ["sigma", "true found (bare)", "false (bare)",
         "true found (+0.1 floor)", "false (+0.1 floor)"],
        rows,
        title="Ablation -- spike threshold sigma (diluted true spike vs "
              f"{UNRELATED_EDGES} unrelated edges)",
    )
    write_result("ablation_sigma.txt", table)

    benchmark(detect_spikes, true_corr, 3.0, OMEGA)

    # The paper's bare sigma = 3 finds the true edge but admits false
    # positives on unrelated traffic...
    assert outcome[(3.0, 0.0)][0]
    assert outcome[(3.0, 0.0)][1] > 0
    # ...which the absolute floor removes without losing the true edge
    # (the tuned configs' min_spike_height = 0.10).
    assert outcome[(3.0, 0.10)] == (True, 0)
    # sigma = 1 floods with false edges; very high sigma loses the spike.
    assert outcome[(1.0, 0.0)][1] > UNRELATED_EDGES // 2
    assert not outcome[(10.0, 0.0)][0]
