"""PERF -- batched online refresh vs the legacy per-pair refresh.

The paper's Section 5.1 measures analysis time against trace rate for a
single analyzer; an enterprise deployment multiplies that cost by the
number of service classes, most of which are quiet at any instant. This
bench drives the engine's refresh cycle over the synthetic many-class
topology (:mod:`repro.apps.manyclass`) where 90% of the classes stop
issuing requests after warmup, and compares:

* ``serial``   -- the legacy refresh: one kernel call per (reference,
  edge) pair, every refresh, quiet or not.
* ``batched``  -- reference-grouped batch kernels plus quiet-edge
  skipping and the O(1) quiet window slide.
* ``batched+4w`` -- the same with a 4-thread refresh pool.

Asserts the headline claim: on a workload where at least half of the
pair slots are quiet per block, the batched refresh's median latency is
at least 2x better than serial. Results also land in
``benchmarks/results/refresh_throughput.txt``.
"""

import pathlib
import sys

from repro.analysis.render import render_comparison_table

from conftest import write_result

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tools"))

from bench_refresh import best_of  # noqa: E402

CLASSES = 40
QUIET_FRACTION = 0.9
SEED = 7
END_TIME = 40.0
REPEATS = 2


def test_batched_refresh_twice_as_fast():
    modes = {
        "serial": dict(batched=False, workers=1),
        "batched": dict(batched=True, workers=1),
        "batched+4w": dict(batched=True, workers=4),
    }
    results = {}
    for name, mode in modes.items():
        results[name] = best_of(
            REPEATS,
            classes=CLASSES,
            quiet_fraction=QUIET_FRACTION,
            seed=SEED,
            end_time=END_TIME,
            **mode,
        )

    rows = [
        [
            name,
            f"{r['p50_seconds'] * 1000:.1f}",
            f"{r['p95_seconds'] * 1000:.1f}",
            str(r["correlators"]),
            f"{r['skips_per_refresh']:.0f}",
        ]
        for name, r in results.items()
    ]
    table = render_comparison_table(
        ["mode", "p50 (ms)", "p95 (ms)", "correlators", "skips/refresh"],
        rows,
        title=f"Batched refresh over {CLASSES} classes, {QUIET_FRACTION:.0%} quiet",
    )
    write_result("refresh_throughput.txt", table)

    serial = results["serial"]
    batched = results["batched"]
    # Same topology, same analysis: every mode sees the same correlators.
    assert batched["correlators"] == serial["correlators"]
    # The workload qualifies: at least half of the batched mode's pair
    # slots are quiet per block (each correlator contributes reach + 1
    # slots per refresh; reach is 1 for this configuration).
    slots_per_refresh = 2 * batched["correlators"]
    assert batched["skips_per_refresh"] >= 0.5 * slots_per_refresh
    # The headline: batched + quiet-skip at least halves the median
    # refresh latency relative to the per-pair baseline.
    speedup = serial["p50_seconds"] / batched["p50_seconds"]
    assert speedup >= 2.0, (
        f"batched refresh only {speedup:.2f}x faster than serial "
        f"(serial p50 {serial['p50_seconds'] * 1000:.1f}ms, "
        f"batched p50 {batched['p50_seconds'] * 1000:.1f}ms)"
    )
