"""ACC -- Section 4.1.1 accuracy validation.

The paper instruments RUBiS to validate E2EProf: "The difference of the
processing delays computed at each server is within 10%. The latency
observed at the client is about 16% more than that obtained from
E2Eprof." This bench reproduces both comparisons against the simulator's
exact ground truth and prints the per-server table.
"""

import numpy as np

from repro.analysis.compare import compare_edge_delays
from repro.analysis.render import render_comparison_table
from repro.apps.rubis import DEFAULT_SERVICE_MEANS
from repro.management.monitor import compare_with_client

from conftest import write_result


def test_accuracy_vs_ground_truth(benchmark, rubis_affinity, affinity_result):
    graph = affinity_result.graph_for("C1")
    truth = rubis_affinity.ground_truth

    def delay_errors():
        return compare_edge_delays(graph, truth, "bidding", since=3.0, until=183.0)

    errors = benchmark(delay_errors)

    rows = []
    expected_nodes = {"WS": "WS", "TS1": "TS1", "EJB1": "EJB1"}
    for node, mean in DEFAULT_SERVICE_MEANS.items():
        measured = graph.node_delay(node)
        if measured is None:
            continue
        error = (measured - mean) / mean
        rows.append([node, f"{mean*1e3:.1f}", f"{measured*1e3:.1f}", f"{error:+.1%}"])

    comparison = compare_with_client(graph, rubis_affinity.clients["bidding"], since=3.0)
    table = render_comparison_table(
        ["server", "true mean (ms)", "pathmap (ms)", "error"],
        rows,
        title="Section 4.1.1 -- per-server processing delay accuracy (bidding)",
    )
    extra = (
        f"\ncumulative edge-label error: mean {errors.mean_relative_error:.1%}, "
        f"max {errors.max_relative_error:.1%}"
        f"\nclient-perceived latency: {comparison.client_latency*1e3:.1f} ms"
        f"\nE2EProf server-side view:  {comparison.e2eprof_latency*1e3:.1f} ms"
        f"\nclient overhead: {comparison.client_overhead:+.1%} "
        "(paper reports ~+16% on its physical testbed)"
    )
    write_result("accuracy_vs_groundtruth.txt", table + extra)

    # Paper's bound: per-server error within 10% (plus one quantum slack).
    for node, mean_ms, measured_ms, _ in rows:
        mean = float(mean_ms) / 1e3
        measured = float(measured_ms) / 1e3
        assert abs(measured - mean) <= 0.10 * mean + 2e-3, node
    assert errors.mean_relative_error < 0.12
    assert comparison.client_latency > comparison.e2eprof_latency
