"""SCALE -- Section 3.7's scalability note, measured.

"The pathmap algorithm can easily be made more scalable by parallely
computing the service graph of each client nodes (i.e., parallelizing the
inner loop of ServiceRoot). The results reported in this paper use a
single central analyser."

This bench builds a topology with eight independent service classes and
compares single-threaded analysis against the thread-pooled inner loop
(numpy kernels release the GIL). Identical results are asserted; the
speedup is reported.
"""

import time

import pytest

from repro.analysis.render import render_comparison_table
from repro.config import PathmapConfig
from repro.core.pathmap import compute_service_graphs
from repro.simulation.distributions import Erlang
from repro.simulation.nodes import StaticRouter
from repro.simulation.topology import Topology

from conftest import write_result

CFG = PathmapConfig(
    window=120.0,
    refresh_interval=60.0,
    quantum=1e-3,
    sampling_window=50e-3,
    max_transaction_delay=2.0,
    min_spike_height=0.10,
)
CLASSES = 8


@pytest.fixture(scope="module")
def many_class_window():
    topo = Topology(seed=33)
    topo.add_service_node("DB", Erlang(0.010, k=8), workers=32)
    for i in range(CLASSES):
        ap = f"AP{i}"
        ws = f"WS{i}"
        topo.add_service_node(ap, Erlang(0.006 + 0.002 * i, k=8), workers=8,
                              router=StaticRouter({}, default="DB"))
        topo.add_service_node(ws, Erlang(0.003, k=8), workers=8,
                              router=StaticRouter({}, default=ap))
        client = topo.add_client(f"C{i}", f"class-{i}", front_end=ws)
        topo.open_workload(client, rate=8.0)
    topo.run_until(125.0)
    return topo.collector.window(CFG, end_time=123.0)


def test_parallel_serviceroot(benchmark, many_class_window):
    window = many_class_window

    started = time.perf_counter()
    serial = compute_service_graphs(window, CFG, method="rle", workers=1)
    serial_time = time.perf_counter() - started

    # Fresh window so the series cache does not favour the second run.
    started = time.perf_counter()
    parallel = compute_service_graphs(window, CFG, method="rle", workers=4)
    parallel_time = time.perf_counter() - started

    table = render_comparison_table(
        ["configuration", "time (s)", "graphs", "edges"],
        [
            ["1 worker", f"{serial_time:.2f}", str(serial.stats.graphs),
             str(serial.stats.edges_discovered)],
            ["4 workers", f"{parallel_time:.2f}", str(parallel.stats.graphs),
             str(parallel.stats.edges_discovered)],
        ],
        title=f"Section 3.7 -- parallel ServiceRoot over {CLASSES} service classes",
    )
    write_result("parallel_speedup.txt", table)

    benchmark(compute_service_graphs, window, CFG, "rle", 4)

    # Identical output regardless of parallelism.
    assert set(serial.graphs) == set(parallel.graphs)
    assert len(serial.graphs) == CLASSES
    for key, graph in serial.graphs.items():
        assert parallel.graphs[key].edge_set() == graph.edge_set()
    # The pool must not be slower than serial by more than scheduling
    # noise (true speedup depends on the host's cores).
    assert parallel_time < serial_time * 1.5
