"""FIG10 -- Figure 10: time-series length under each compression.

For the connection between the web server and one of the Tomcat servers
(the paper's chosen edge), compare across window sizes:

* ``total packets``   -- raw captured packets in the window,
* ``no compression``  -- the dense series bound ``W / tau``,
* ``burst``           -- stored samples after dropping zero entries,
* ``RLE``             -- stored (t, c, n) run tuples.

Expected shape: all grow linearly in W; RLE is an order of magnitude
below burst, which is well below the dense bound; RLE is also smaller
than the raw packet count.
"""

import bisect

import pytest

from repro.analysis.render import render_comparison_table
from repro.core.rle import rle_encode
from repro.core.correlation import _as_sparse
from repro.tracing.wire import wire_sizes

from conftest import write_result
from test_fig9_analysis_time import BASE, HORIZON, RATE, WINDOWS, trace  # noqa: F401

EDGE = ("WS", "TS1")


def test_fig10_trace_size(benchmark, trace):  # noqa: F811
    rows = []
    series_by_window = {}
    for w in WINDOWS:
        cfg = BASE.with_window(w, refresh_interval=60.0)
        window = trace.collector.window(cfg, end_time=HORIZON - 2.0)
        stamps = trace.collector.edge_timestamps(*EDGE)
        lo = bisect.bisect_left(stamps, window.start_time)
        hi = bisect.bisect_left(stamps, window.end_time)
        packets = hi - lo

        sparse = _as_sparse(window.edge_series(*EDGE))
        rle = rle_encode(sparse)
        wire = wire_sizes(rle, message_count=packets)
        series_by_window[w] = (packets, cfg.window_quanta, sparse.nnz, rle.num_runs)
        rows.append([
            f"{w:.0f}",
            str(packets),
            str(cfg.window_quanta),
            str(sparse.nnz),
            str(rle.num_runs),
            str(wire["rle_wire"]),
            str(wire["raw_timestamps"]),
        ])

    table = render_comparison_table(
        ["W (s)", "total packets", "no compression (W/tau)", "burst entries",
         "RLE runs", "RLE wire bytes", "raw-timestamp bytes"],
        rows,
        title=f"Figure 10 -- time-series length for edge {EDGE[0]}->{EDGE[1]}",
    )
    write_result("fig10_trace_size.txt", table)

    # Benchmark the RLE encode step itself at the largest window.
    cfg = BASE.with_window(WINDOWS[-1], refresh_interval=60.0)
    big = _as_sparse(
        trace.collector.window(cfg, end_time=HORIZON - 2.0).edge_series(*EDGE)
    )
    benchmark(rle_encode, big)

    for w, (packets, bound, nnz, runs) in series_by_window.items():
        assert runs < nnz < bound          # each optimization shrinks
        assert runs < packets              # RLE beats raw timestamps
    # Linear growth in W, and RLE an order of magnitude under the bound.
    small = series_by_window[WINDOWS[0]]
    big_counts = series_by_window[WINDOWS[-1]]
    ratio = WINDOWS[-1] / WINDOWS[0]
    assert big_counts[2] == pytest.approx(small[2] * ratio, rel=0.5)
    assert big_counts[3] * 10 <= big_counts[1]
