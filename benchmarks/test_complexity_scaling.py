"""CPLX -- Section 3.7 complexity analysis, verified empirically.

The paper derives per-analysis costs:

* direct bounded: O(E * (T_u/tau) * (dW/(k*r))/tau) -- linear in the lag
  bound and in the (compressed) series length;
* FFT: O(E * (W/tau) log (W/tau)) -- independent of T_u.

This bench sweeps both the lag bound and the series length on synthetic
signals and checks the predicted scaling directions for every kernel.
"""

import time

import numpy as np
import pytest

from repro.analysis.render import render_comparison_table
from repro.core.correlation import (
    correlate_fft,
    correlate_rle,
    correlate_sparse,
)
from repro.core.rle import rle_encode
from repro.core.timeseries import DensityTimeSeries

from conftest import write_result


def bursty_signal(n, rng, burst_rate=0.01, burst_len=20):
    """Sparse bursty series: bursts of equal values between quiet zones."""
    dense = np.zeros(n)
    starts = np.flatnonzero(rng.random(n) < burst_rate)
    for s in starts:
        dense[s : s + burst_len] = float(rng.integers(1, 4))
    return DensityTimeSeries.from_dense(dense, 0, 1e-3)


def timed(fn, *args):
    started = time.perf_counter()
    fn(*args)
    return time.perf_counter() - started


@pytest.fixture(scope="module")
def signals():
    rng = np.random.default_rng(0)
    return {n: (bursty_signal(n, rng), bursty_signal(n, rng)) for n in
            (50_000, 100_000, 200_000, 400_000)}


def test_scaling_in_series_length(benchmark, signals):
    rows = []
    times = {}
    max_lag = 1000
    for n, (x, y) in signals.items():
        t_sparse = timed(correlate_sparse, x, y, max_lag)
        t_rle = timed(correlate_rle, rle_encode(x), rle_encode(y), max_lag)
        t_fft = timed(correlate_fft, x, y, max_lag)
        times[n] = (t_sparse, t_rle, t_fft)
        rows.append([str(n), f"{t_sparse*1e3:.1f}", f"{t_rle*1e3:.1f}", f"{t_fft*1e3:.1f}"])
    table = render_comparison_table(
        ["n (quanta)", "burst (ms)", "RLE (ms)", "FFT (ms)"],
        rows,
        title="Section 3.7 -- correlation cost vs series length (T_u fixed)",
    )

    # Lag-bound sweep at fixed n: direct methods grow with T_u; FFT does not.
    x, y = signals[200_000]
    xr, yr = rle_encode(x), rle_encode(y)
    lag_rows = []
    lag_times = {}
    for d in (500, 1000, 2000, 4000):
        t_sparse = timed(correlate_sparse, x, y, d)
        t_rle = timed(correlate_rle, xr, yr, d)
        t_fft = timed(correlate_fft, x, y, d)
        lag_times[d] = (t_sparse, t_rle, t_fft)
        lag_rows.append([str(d), f"{t_sparse*1e3:.1f}", f"{t_rle*1e3:.1f}", f"{t_fft*1e3:.1f}"])
    lag_table = render_comparison_table(
        ["T_u (quanta)", "burst (ms)", "RLE (ms)", "FFT (ms)"],
        lag_rows,
        title="correlation cost vs lag bound (n = 200k quanta)",
    )
    write_result("complexity_scaling.txt", table + "\n\n" + lag_table)

    benchmark(correlate_rle, xr, yr, 1000)

    # Linear-in-n for the direct kernels (allow generous constants).
    n_small, n_big = 50_000, 400_000
    assert times[n_big][0] > 3.0 * times[n_small][0]  # sparse grows
    assert times[n_big][0] < 32.0 * times[n_small][0]  # ...but ~linearly
    # Direct kernels grow with the lag bound; FFT is insensitive to it.
    assert lag_times[4000][0] > 2.0 * lag_times[500][0]
    assert lag_times[4000][2] < 3.0 * lag_times[500][2]
    # RLE is the cheapest direct kernel everywhere.
    for d, (t_sparse, t_rle, _) in lag_times.items():
        assert t_rle < t_sparse
