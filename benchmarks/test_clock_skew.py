"""SKEW -- Section 3.8: clock-skew estimation between service nodes.

"We can estimate time skew between two service nodes by cross-correlating
the time series T^x_{x->y} and T^y_{x->y} streamed from x and y."

Regenerates a table of injected vs estimated skews (both signs) and
benchmarks one estimation.
"""

import pytest

from repro.analysis.render import render_comparison_table
from repro.config import PathmapConfig
from repro.core.clock_skew import estimate_clock_skew
from repro.simulation.distributions import Erlang
from repro.simulation.nodes import StaticRouter
from repro.simulation.topology import Topology

from conftest import write_result

CFG = PathmapConfig(
    window=60.0,
    refresh_interval=60.0,
    quantum=1e-3,
    sampling_window=5e-3,
    max_transaction_delay=1.0,
)
LINK = 0.0002

SKEWS = [-0.200, -0.050, -0.010, 0.0, 0.010, 0.050, 0.200]


def run_with_skew(db_skew):
    topo = Topology(seed=4)
    topo.add_service_node("DB", Erlang(0.010, k=8), workers=8, clock_skew=db_skew)
    topo.add_service_node("WS", Erlang(0.004, k=8), workers=8,
                          router=StaticRouter({}, default="DB"))
    client = topo.add_client("C", "cls", front_end="WS")
    topo.open_workload(client, rate=30.0)
    topo.run_until(61.0)
    return topo


def test_clock_skew_estimation(benchmark):
    rows = []
    errors = []
    topologies = {skew: run_with_skew(skew) for skew in SKEWS}
    for skew, topo in topologies.items():
        estimate = estimate_clock_skew(
            topo.collector, "WS", "DB", CFG, end_time=60.0, network_delay=LINK
        )
        error = estimate.skew - skew
        errors.append(abs(error))
        rows.append([
            f"{skew*1e3:+.0f}",
            f"{estimate.skew*1e3:+.1f}",
            f"{error*1e3:+.2f}",
            f"{estimate.spike_height:.2f}",
        ])
    table = render_comparison_table(
        ["injected skew (ms)", "estimated (ms)", "error (ms)", "spike height"],
        rows,
        title="Section 3.8 -- clock skew estimation via two-sided correlation",
    )
    write_result("clock_skew.txt", table)

    benchmark(
        estimate_clock_skew,
        topologies[0.050].collector, "WS", "DB", CFG, 60.0, None, LINK,
    )

    # Accuracy: within a couple of quanta, as the paper predicts
    # ("will exhibit some inaccuracy equal to the amount of skew" only
    # when skew is untracked; the estimator itself resolves to ~tau).
    assert max(errors) < 0.003
