"""DELTA -- Section 4.3: the Delta Air Lines Revenue Pipeline case study.

Regenerates the section's findings on the synthetic pipeline:

1. service paths of every front-end queue recovered from application-level
   access logs (not packet captures);
2. the 4 AM paper-ticket batch floods the queues and degrades analysis --
   "the computed delays are far from accurate ... the analysis error due
   to the large queue length could not be eliminated";
3. a slow database connection is diagnosed as the bottleneck.
"""

import pytest

from repro.analysis.render import render_comparison_table
from repro.apps.delta import build_delta, inject_batch
from repro.config import PathmapConfig
from repro.core.bottleneck import find_bottlenecks
from repro.core.pathmap import compute_service_graphs
from repro.tracing.access_log import access_log_to_captures
from repro.tracing.collector import TraceCollector

CFG = PathmapConfig(
    window=3600.0,
    refresh_interval=600.0,
    quantum=1.0,
    sampling_window=50.0,
    max_transaction_delay=1200.0,
)
HORIZON = 3700.0


def build_and_collect(slow_db_factor=1.0, batch=False):
    deployment = build_delta(seed=3, num_queues=5, events_per_hour=18000.0,
                             slow_db_factor=slow_db_factor, config=CFG)
    if batch:
        inject_batch(deployment, at=1200.0, events=1500, over_seconds=60.0)
    deployment.run_until(HORIZON)
    collector = TraceCollector(client_nodes=["external"])
    collector.ingest_many(access_log_to_captures(deployment.sorted_access_log()))
    return deployment, collector


@pytest.fixture(scope="module")
def steady_case():
    return build_and_collect()


def test_delta_pipeline(benchmark, steady_case):
    deployment, collector = steady_case
    window = collector.window(CFG, end_time=HORIZON - 50.0)
    result = benchmark(compute_service_graphs, window, CFG, "rle")

    _, slow_collector = build_and_collect(slow_db_factor=2.5)
    slow_result = compute_service_graphs(
        slow_collector.window(CFG, end_time=HORIZON - 50.0), CFG
    )
    batch_dep, batch_collector = build_and_collect(batch=True)
    surge_result = compute_service_graphs(
        batch_collector.window(CFG, end_time=2400.0, start_time=400.0), CFG
    )

    def summarize(res, label):
        rows = []
        for (client, root), graph in sorted(res.graphs.items()):
            stages = "->".join(
                stage for stage in (root, "VAL", "RDB", "ACCT")
                if stage == root or any(e.dst == stage for e in graph.edges)
            )
            delays = graph.node_delays()
            dominant = (
                find_bottlenecks(graph).dominant() if delays else "-"
            )
            rows.append([label, root, stages, dominant])
        return rows

    rows = (
        summarize(result, "steady")
        + summarize(slow_result, "slow DB x2.5")
        + summarize(surge_result, "4AM batch window")
    )
    table = render_comparison_table(
        ["scenario", "queue", "recovered stages", "dominant delay"],
        rows,
        title="Section 4.3 -- Revenue Pipeline path analysis (from access logs)",
    )
    worst_queue = max(
        q.mean_queue_delay() for q in batch_dep.queues.values()
    )
    extra = (
        f"\nbatch surge: worst front-end queue mean delay {worst_queue:.1f} s "
        "(paper: queue length up to 4000; steady-state assumption broken)"
    )
    write_result_local(table + extra)

    # Findings.
    full = [
        g for g in result.graphs.values()
        if g.has_edge("VAL", "RDB") and g.has_edge("RDB", "ACCT")
    ]
    assert len(full) == 5  # all queues' paths recovered at steady state
    dominants = [
        find_bottlenecks(g).dominant()
        for g in slow_result.graphs.values() if g.node_delays()
    ]
    assert dominants and max(set(dominants), key=dominants.count) == "RDB"
    surge_edges = sum(len(g.edges) for g in surge_result.graphs.values())
    steady_edges = sum(len(g.edges) for g in result.graphs.values())
    assert surge_edges < steady_edges  # degradation under the batch


def write_result_local(text):
    from conftest import write_result

    write_result("delta_pipeline.txt", text)
