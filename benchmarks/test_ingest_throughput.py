"""PERF -- columnar batched ingest vs the per-record collector path.

The paper's tracers forward captures continuously; a central analyzer's
ingest rate bounds the trace rate the whole deployment can sustain
(Section 5.1 measures analysis cost against trace rate). This bench
replays a many-class capture trace (:mod:`repro.apps.manyclass`) through
the collector along both ingest paths:

* ``per_record`` -- one :class:`CaptureRecord` at a time into the legacy
  Python-list store (``columnar=False``).
* ``batched``    -- per-(edge, side) timestamp arrays per flush interval
  into the chunked columnar store, as the engine's capture-sink drain
  delivers them.

Asserts the headline claim: batched ingest sustains at least 2x the
records/second of the per-record path (the committed ``BENCH_ingest.json``
shows far more), while producing bit-identical analysis windows, and a
retention-bounded collector keeps resident records below the total
ingested. Results land in ``benchmarks/results/ingest_throughput.txt``.
"""

import pathlib
import sys

from repro.analysis.render import render_comparison_table

from conftest import write_result

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tools"))

from bench_ingest import (  # noqa: E402
    BENCH_INGEST_CONFIG,
    build_workload,
    identical_windows,
    ingest_batched,
    ingest_per_record,
    retention_soak,
    timed_rate,
)

CLASSES = 12
SEED = 7
DURATION = 12.0
REQUEST_RATE = 100.0
REPEATS = 2


def test_batched_ingest_twice_as_fast():
    records, batch_rounds = build_workload(CLASSES, SEED, DURATION, REQUEST_RATE)
    count = len(records)
    assert count > 50_000  # the workload qualifies as high-throughput

    modes = {
        "per_record": lambda: ingest_per_record(records, columnar=False),
        "batched": lambda: ingest_batched(batch_rounds),
    }
    results = {name: timed_rate(fn, count, REPEATS) for name, fn in modes.items()}
    # Tightest analysis-safe horizon (window + max delay), so the 12 s
    # trace actually crosses it and eviction provably fires.
    retention = (
        BENCH_INGEST_CONFIG.window + BENCH_INGEST_CONFIG.max_transaction_delay
    )
    soak = retention_soak(batch_rounds, retention=retention)

    rows = [
        [name, f"{r['records_per_second']:,.0f}", f"{r['best_seconds'] * 1000:.1f}"]
        for name, r in results.items()
    ]
    rows.append(
        [
            "retention soak",
            f"peak resident {soak['peak_resident_records']:,}",
            f"evicted {soak['records_evicted']:,}",
        ]
    )
    table = render_comparison_table(
        ["mode", "records/s", "best (ms)"],
        rows,
        title=f"Collector ingest of {count:,} records over {CLASSES} classes",
    )
    write_result("ingest_throughput.txt", table)

    # Identical inputs: batched and per-record ingest must yield
    # bit-identical analysis windows over the same range.
    assert identical_windows(
        ingest_per_record(records, columnar=False),
        ingest_batched(batch_rounds),
        end_time=DURATION,
    )

    # Bounded retention: the soak evicted and stayed below the total.
    assert soak["resident_bounded"]
    assert soak["peak_resident_records"] < soak["records_ingested"]
    assert (
        soak["final_resident_records"] + soak["records_evicted"]
        == soak["records_ingested"]
    )

    # The headline: batched ingest at least doubles records/second.
    speedup = (
        results["batched"]["records_per_second"]
        / results["per_record"]["records_per_second"]
    )
    assert speedup >= 2.0, (
        f"batched ingest only {speedup:.2f}x faster than per-record "
        f"({results['batched']['records_per_second']:,.0f}/s vs "
        f"{results['per_record']['records_per_second']:,.0f}/s)"
    )
