"""ABL-SQRT -- ablation of the square root in the density function.

Section 3.5 defines ``d(i) = sqrt(#messages ...)``. The square root damps
heavy bursts so they cannot dominate the correlation. This ablation
injects a large unrelated burst (a batch job) into the downstream edge's
traffic and compares delay estimation with the paper's sqrt density
against raw linear counts: with linear counts the burst swings the
correlation and degrades or displaces the spike; with sqrt the true delay
survives.
"""

import numpy as np
import pytest

from repro.analysis.render import render_comparison_table
from repro.core.correlation import cross_correlate
from repro.core.spikes import detect_spikes, strongest_spike
from repro.core.timeseries import DensityTimeSeries, build_density_series

from conftest import write_result

TAU = 1e-3
OMEGA = 50
TRUE_DELAY = 0.060
DURATION = 60.0
LENGTH = int(DURATION / TAU) + 1000
MAX_LAG = 500


def linearized(series: DensityTimeSeries) -> DensityTimeSeries:
    """Undo the square root: raw boxcar counts as the signal."""
    return DensityTimeSeries(
        series.indices.copy(), series.values ** 2,
        series.start, series.length, series.quantum,
    )


@pytest.fixture(scope="module")
def traffic():
    rng = np.random.default_rng(5)
    arrivals = np.sort(rng.uniform(0, DURATION, 600))
    downstream = arrivals + TRUE_DELAY + rng.uniform(-0.004, 0.004, arrivals.size)
    # The confounder: an unrelated 3000-message burst hits the downstream
    # edge over ~200 ms (a batch job, a replication push...).
    burst = rng.uniform(20.0, 20.2, 3000)
    downstream_all = np.concatenate([downstream, burst])
    ref = build_density_series(arrivals, TAU, OMEGA, 0, LENGTH)
    sig = build_density_series(downstream_all, TAU, OMEGA, 0, LENGTH)
    return ref, sig


def estimate(ref, sig):
    corr = cross_correlate(ref, sig, max_lag=MAX_LAG)
    spike = strongest_spike(
        detect_spikes(corr, sigma=3.0, resolution_quanta=OMEGA)
    )
    return corr, spike


def test_ablation_sqrt_density(benchmark, traffic):
    ref, sig = traffic

    corr_sqrt, spike_sqrt = estimate(ref, sig)
    corr_lin, spike_lin = estimate(linearized(ref), linearized(sig))

    def describe(spike, corr):
        if spike is None:
            return ["none", "-", f"{corr.values.max():.3f}"]
        return [f"{spike.lag} ms", f"{spike.height:.3f}", f"{corr.values.max():.3f}"]

    table = render_comparison_table(
        ["density", "strongest spike", "height", "corr max"],
        [
            ["sqrt (paper)"] + describe(spike_sqrt, corr_sqrt),
            ["linear counts"] + describe(spike_lin, corr_lin),
        ],
        title=f"Ablation -- sqrt density vs linear counts under a 3000-message "
              f"burst (true delay {TRUE_DELAY*1e3:.0f} ms)",
    )
    write_result("ablation_density.txt", table)

    benchmark(estimate, ref, sig)

    # The paper's sqrt density localizes the true delay...
    assert spike_sqrt is not None
    assert spike_sqrt.lag == pytest.approx(TRUE_DELAY / TAU, abs=8)
    # ...and resists the burst better than linear counts: either the
    # linear variant loses the spike entirely, or its correlation floor is
    # dominated by the burst (weaker contrast at the true delay).
    sqrt_contrast = spike_sqrt.height / max(
        1e-9, corr_sqrt.mean() + 3 * corr_sqrt.std()
    )
    if spike_lin is None or abs(spike_lin.lag - TRUE_DELAY / TAU) > 8:
        lin_ok = False
    else:
        lin_contrast = spike_lin.height / max(
            1e-9, corr_lin.mean() + 3 * corr_lin.std()
        )
        lin_ok = lin_contrast >= sqrt_contrast
    assert not lin_ok, "linear counts unexpectedly beat the sqrt density"
