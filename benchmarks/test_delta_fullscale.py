"""DELTA-FULL -- the Revenue Pipeline at the paper's scale.

Section 4.3's actual numbers: 25 front-end queues, ~40K events/hour.
This bench runs slightly over an hour of that traffic, analyzes the full
1-hour window from access logs, and checks path recovery across all 25
queues -- the shared back-end links now carry a 25-way class mixture, the
hardest dilution case in the reproduction.
"""

import pytest

from repro.analysis.render import render_comparison_table
from repro.apps.delta import EVENTS_PER_HOUR, build_delta
from repro.config import PathmapConfig
from repro.core.pathmap import compute_service_graphs
from repro.tracing.access_log import access_log_to_captures
from repro.tracing.collector import TraceCollector

from conftest import write_result

CFG = PathmapConfig(
    window=3600.0,
    refresh_interval=600.0,
    quantum=1.0,
    sampling_window=50.0,
    max_transaction_delay=1800.0,
)
HORIZON = 3700.0


@pytest.fixture(scope="module")
def fullscale():
    deployment = build_delta(
        seed=7, num_queues=25, events_per_hour=EVENTS_PER_HOUR, config=CFG
    )
    deployment.run_until(HORIZON)
    collector = TraceCollector(client_nodes=["external"])
    collector.ingest_many(access_log_to_captures(deployment.sorted_access_log()))
    return deployment, collector


def test_delta_full_scale(benchmark, fullscale):
    deployment, collector = fullscale
    window = collector.window(CFG, end_time=HORIZON - 50.0)
    result = benchmark(compute_service_graphs, window, CFG, "rle")

    per_queue = {}
    for (client, root), graph in result.graphs.items():
        stages = sum(
            1 for edge in (("VAL", "RDB"), ("RDB", "ACCT"))
            if graph.has_edge(*edge)
        ) + (1 if graph.has_edge(root, "VAL") else 0)
        per_queue[root] = stages
    full = sum(1 for v in per_queue.values() if v == 3)
    partial = sum(1 for v in per_queue.values() if 1 <= v < 3)

    table = render_comparison_table(
        ["metric", "value"],
        [
            ["events routed", str(deployment.topology.fabric.messages_sent)],
            ["access-log records", str(len(deployment.access_log))],
            ["queues analyzed", str(len(per_queue))],
            ["full 3-stage recovery", f"{full}/25"],
            ["partial recovery", f"{partial}/25"],
            ["analysis correlations", str(result.stats.correlations)],
            ["analysis time (s)", f"{result.stats.elapsed_seconds:.2f}"],
        ],
        title="Section 4.3 at paper scale -- 25 queues, 40K events/hour",
    )
    write_result("delta_fullscale.txt", table)

    assert len(per_queue) == 25
    # At 25-way homogeneous dilution each class contributes ~4% of the
    # shared back-end signal (normalized correlation ~1/sqrt(25) = 0.2,
    # close to the noise floor of a 1-hour window). The front-queue hop
    # is always found; a meaningful fraction of queues resolve the full
    # pipeline, and most resolve at least partially. This is the binding
    # statistical limit of the approach at the paper's scale -- see the
    # honest-deviation notes in EXPERIMENTS.md.
    assert all(v >= 1 for v in per_queue.values())
    assert full >= 6
    assert full + partial >= 20
