"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it
prints the same rows/series the paper reports and also writes them under
``benchmarks/results/`` so EXPERIMENTS.md can be checked against fresh
runs. Simulated traces are session-scoped: the *analysis* is what the
paper benchmarks, not the workload generation.
"""

from __future__ import annotations

import pathlib

import pytest

from repro import PathmapConfig, compute_service_graphs
from repro.apps.rubis import build_rubis

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: RUBiS analysis parameters for benchmarks: the paper's tau/omega, a
#: transaction bound fitting the simulated transactions.
BENCH_CONFIG = PathmapConfig(
    window=180.0,
    refresh_interval=60.0,
    quantum=1e-3,
    sampling_window=50e-3,
    max_transaction_delay=2.0,
    min_spike_height=0.10,
)


def write_result(name: str, text: str) -> pathlib.Path:
    """Persist a paper-artifact table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[written to {path}]")
    return path


@pytest.fixture(scope="session")
def rubis_affinity():
    """RUBiS, affinity dispatch, 3+ minutes of trace (Figure 5 setup)."""
    rubis = build_rubis(dispatch="affinity", seed=7, request_rate=10.0,
                        config=BENCH_CONFIG)
    rubis.run_until(185.0)
    return rubis


@pytest.fixture(scope="session")
def rubis_roundrobin():
    """RUBiS, round-robin dispatch (Figure 6 setup)."""
    rubis = build_rubis(dispatch="round_robin", seed=8, request_rate=10.0,
                        config=BENCH_CONFIG)
    rubis.run_until(185.0)
    return rubis


@pytest.fixture(scope="session")
def affinity_result(rubis_affinity):
    window = rubis_affinity.window(end_time=183.0)
    return compute_service_graphs(window, BENCH_CONFIG, method="rle")


@pytest.fixture(scope="session")
def roundrobin_result(rubis_roundrobin):
    window = rubis_roundrobin.window(end_time=183.0)
    return compute_service_graphs(window, BENCH_CONFIG, method="rle")
