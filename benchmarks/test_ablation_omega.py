"""ABL-OMEGA -- ablation of the sampling window omega (Section 3.5).

The paper: "A very small omega may produce many spikes during
cross-correlation analysis resulting in false delays/paths. On the other
hand, a large value of omega may over-generalize the result (collapsing
two spike into one, for example). For the systems we have analyzed,
omega = 50 * tau gave the best set of results."

Setup: one service class reaches an edge along two paths whose delays
differ by 60 ms, with +-8 ms per-request jitter. Sweeping omega shows the
paper's trade-off: tiny omega fragments the true spikes (extra, false
delays); huge omega merges the two true spikes into one.
"""

import numpy as np
import pytest

from repro.analysis.render import render_comparison_table
from repro.config import PathmapConfig
from repro.core.correlation import cross_correlate
from repro.core.spikes import detect_spikes
from repro.core.timeseries import build_density_series

from conftest import write_result

TAU = 1e-3
DELAY_A = 0.040
DELAY_B = 0.100  # 60 ms apart
JITTER = 0.008
DURATION = 120.0
LENGTH = int(DURATION / TAU) + 1000

OMEGAS = [1, 5, 20, 50, 100, 200]


@pytest.fixture(scope="module")
def stamps():
    rng = np.random.default_rng(2)
    arrivals = np.sort(rng.uniform(0, DURATION, 1200))
    half = rng.random(arrivals.size) < 0.5
    downstream = np.where(
        half, arrivals + DELAY_A, arrivals + DELAY_B
    ) + rng.uniform(-JITTER, JITTER, arrivals.size)
    return arrivals, downstream


def spikes_for_omega(stamps, omega_quanta):
    arrivals, downstream = stamps
    ref = build_density_series(arrivals, TAU, omega_quanta, 0, LENGTH)
    sig = build_density_series(downstream, TAU, omega_quanta, 0, LENGTH)
    corr = cross_correlate(ref, sig, max_lag=1000)
    return detect_spikes(corr, sigma=3.0, resolution_quanta=max(omega_quanta, 1))


def test_ablation_sampling_window(benchmark, stamps):
    rows = []
    counts = {}
    for omega in OMEGAS:
        spikes = spikes_for_omega(stamps, omega)
        lags = [s.lag for s in spikes]
        true_hits = sum(
            1
            for target in (DELAY_A, DELAY_B)
            if any(abs(l * TAU - target) < 0.015 for l in lags)
        )
        counts[omega] = (len(spikes), true_hits)
        rows.append([
            str(omega),
            str(len(spikes)),
            str(true_hits),
            ", ".join(f"{l}ms" for l in lags[:6]),
        ])
    table = render_comparison_table(
        ["omega (quanta)", "spikes found", "true delays hit (of 2)", "spike lags"],
        rows,
        title="Ablation -- sampling window omega vs spike quality "
              "(two true delays: 40 ms and 100 ms)",
    )
    write_result("ablation_omega.txt", table)

    benchmark(spikes_for_omega, stamps, 50)

    # The paper's recommended omega = 50*tau resolves exactly the two true
    # delays.
    assert counts[50] == (2, 2)
    # A tiny omega yields extra (false) spikes.
    assert counts[1][0] > 2
    # A huge omega collapses the two true delays into one spike.
    assert counts[200][0] < 2 or counts[200][1] < 2
