"""PERF -- materialized-summary folds vs raw trace-lake replays.

The trace lake persists per-block correlation summaries at correlator
eviction, so a long-horizon delay query ("has this edge's delay drifted
since last week?") folds a few hundred small vectors instead of
rebuilding density series over the span and re-running correlation
kernels. The raw replay's cost grows with the span (density rebuild is
O(span/quantum), the sparse kernel with the span's message count); the
fold's with the number of evicted blocks -- a constant factor of the
span measured in refresh intervals.

Gate: on a 150 s chain-topology run the summary-fold query answers the
same span >= 5x faster than the raw replay, and the two estimators'
peak-delay answers agree to within a handful of quanta (the fold's
documented boundary approximation). If the engine run materialized no
summaries, the comparison is vacuous and the gate skips with the
reason rather than failing.

Results land in ``benchmarks/results/lake_speedup.txt``; the committed
full-scale numbers are the ``query_speedup`` section of
``BENCH_lake.json``.
"""

import pathlib
import sys

import pytest

from repro.analysis.render import render_comparison_table

from conftest import write_result

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tools"))

from bench_lake import run_query_speedup  # noqa: E402

SEED = 7
DURATION = 150.0
REPEATS = 3

pytestmark = pytest.mark.slow


def test_summary_fold_beats_raw_replay_five_fold():
    result = run_query_speedup(
        duration=DURATION, rate=40.0, seed=SEED, repeats=REPEATS
    )
    if result["summary_rows"] == 0:
        pytest.skip(
            "engine run materialized no summaries (no correlator "
            "evictions?); the fold-vs-replay comparison would be vacuous"
        )

    fold = result["summary_fold"]
    raw = result["raw_replay"]
    table = render_comparison_table(
        ["path", "median (ms)", "delay (ms)"],
        [
            ["summary fold", f"{fold['median_seconds'] * 1000:.2f}",
             f"{fold['delay_seconds'] * 1000:.1f}"],
            ["raw replay", f"{raw['median_seconds'] * 1000:.2f}",
             f"{raw['delay_seconds'] * 1000:.1f}"],
        ],
        title=f"Lake query over a {DURATION:.0f}s span "
              f"({result['summary_rows']} summary rows)",
    )
    write_result("lake_speedup.txt", table)

    # Both estimators answered, and they answered the same thing (to
    # within the fold's documented boundary approximation).
    assert fold["blocks_folded"] > 0
    assert result["delay_disagreement_seconds"] <= 0.02

    # The headline: the fold is >= 5x faster (the committed full-scale
    # bench shows well above that; 5x keeps the gate robust on CI).
    assert result["speedup"] >= 5.0, (
        f"summary fold only {result['speedup']:.2f}x faster than raw "
        f"replay (fold {fold['median_seconds'] * 1000:.2f}ms, "
        f"raw {raw['median_seconds'] * 1000:.2f}ms)"
    )
