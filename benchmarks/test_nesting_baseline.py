"""NEST -- related-work baseline: Aguilera et al.'s nesting algorithm.

Not a paper figure, but an ablation the paper's Section 2 implies: on
RPC-style traffic (RUBiS) the nesting algorithm recovers the same paths
as pathmap much faster (it is per-request exact), while on unidirectional
pipelines (Delta) it produces nothing -- which is exactly why E2EProf
uses correlation.
"""

import time

import pytest

from repro.analysis.render import render_comparison_table
from repro.baselines.nesting import nesting_analysis
from repro.core.pathmap import compute_service_graphs
from repro.tracing.records import CaptureRecord

from conftest import BENCH_CONFIG, write_result


def capture_records(rubis):
    return [
        CaptureRecord(ts, src, dst, dst if dst not in ("C1", "C2") else src)
        for (src, dst) in rubis.collector.edges()
        for ts in rubis.collector.edge_timestamps(src, dst)
    ]


def test_nesting_vs_pathmap(benchmark, rubis_affinity):
    records = capture_records(rubis_affinity)

    started = time.perf_counter()
    nesting = nesting_analysis(records, client_nodes=["C1", "C2"])
    nesting_time = time.perf_counter() - started

    window = rubis_affinity.window(end_time=183.0)
    started = time.perf_counter()
    pathmap_result = compute_service_graphs(window, BENCH_CONFIG, method="rle")
    pathmap_time = time.perf_counter() - started

    benchmark(nesting_analysis, records, ["C1", "C2"])

    sequences = set(nesting.node_sequences())
    rows = [
        ["pathmap (RLE)", f"{pathmap_time:.3f}",
         str(sum(len(g.edges) for g in pathmap_result.graphs.values())), "any protocol"],
        ["nesting", f"{nesting_time:.3f}",
         str(len(sequences)), "RPC-style only"],
    ]
    table = render_comparison_table(
        ["algorithm", "time (s)", "artifacts", "applicability"],
        rows,
        title="Baseline -- nesting (Aguilera et al.) vs pathmap on RUBiS",
    )
    write_result("nesting_baseline.txt", table)

    # Both find the true bidding path.
    assert ("C1", "WS", "TS1", "EJB1", "DS") in sequences
    graph = pathmap_result.graph_for("C1")
    for edge in (("WS", "TS1"), ("TS1", "EJB1"), ("EJB1", "DS")):
        assert graph.has_edge(*edge)
    # Nesting's per-hop delay agrees with pathmap's cumulative labels.
    pattern = nesting.pattern_for(("C1", "WS", "TS1", "EJB1", "DS"))
    pathmap_delay = graph.edge("TS1", "EJB1").min_delay
    nesting_delay = pattern.mean_delays[2]
    assert nesting_delay == pytest.approx(pathmap_delay, abs=0.01)
